//! Property-based tests of the set-cover solvers, including a brute-force
//! optimality reference on small instances.

use nbiot_multicast::grouping::set_cover::{
    greedy_set_cover, greedy_set_cover_bitset, reference, WindowCover,
};
use nbiot_multicast::prelude::*;
use proptest::prelude::*;

/// Brute-force minimum window-cover size on a tiny instance: every subset
/// of candidate windows (anchored at POs) is checked.
fn brute_force_min_windows(events: &[Vec<SimInstant>], ti: SimDuration) -> Option<usize> {
    let anchors: Vec<SimInstant> = {
        let mut a: Vec<SimInstant> = events.iter().flatten().copied().collect();
        a.sort_unstable();
        a.dedup();
        a
    };
    let n = events.len();
    if anchors.is_empty() {
        return if n == 0 { Some(0) } else { None };
    }
    let covers: Vec<u32> = anchors
        .iter()
        .map(|&start| {
            let w = TimeWindow::starting_at(start, ti);
            let mut mask = 0u32;
            for (d, evs) in events.iter().enumerate() {
                if evs.iter().any(|&t| w.contains(t)) {
                    mask |= 1 << d;
                }
            }
            mask
        })
        .collect();
    let full = (1u32 << n) - 1;
    for k in 0..=anchors.len() {
        // All k-subsets via bit tricks would be heavy; recursive search.
        fn search(covers: &[u32], k: usize, acc: u32, full: u32, from: usize) -> bool {
            if acc == full {
                return true;
            }
            if k == 0 {
                return false;
            }
            (from..covers.len()).any(|i| search(covers, k - 1, acc | covers[i], full, i + 1))
        }
        if search(&covers, k, 0, full, 0) {
            return Some(k);
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn windowed_greedy_is_within_ln_n_of_optimal(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..2_000, 1..4),
            1..6
        ),
        ti_ms in 50u64..400,
    ) {
        let ti = SimDuration::from_ms(ti_ms);
        let events: Vec<Vec<SimInstant>> = raw
            .iter()
            .map(|d| {
                let mut v: Vec<SimInstant> = d.iter().map(|&m| SimInstant::from_ms(m)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let dense = vec![false; events.len()];
        let slots = WindowCover::new(ti)
            .solve(SimInstant::ZERO, &events, &dense)
            .expect("every device has events");
        let optimal = brute_force_min_windows(&events, ti).expect("coverable");
        // Chvatal bound: greedy <= H(n) * optimal; for n < 6, H(n) < 2.29.
        prop_assert!(slots.len() >= optimal);
        prop_assert!(
            (slots.len() as f64) <= 2.29 * optimal as f64 + 1e-9,
            "greedy {} vs optimal {}",
            slots.len(),
            optimal
        );
    }

    #[test]
    fn windowed_cover_partitions_devices(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..50_000, 1..6),
            1..25
        ),
        ti_ms in 100u64..2_000,
    ) {
        let events: Vec<Vec<SimInstant>> = raw
            .iter()
            .map(|d| {
                let mut v: Vec<SimInstant> = d.iter().map(|&m| SimInstant::from_ms(m)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let dense = vec![false; events.len()];
        let slots = WindowCover::new(SimDuration::from_ms(ti_ms))
            .solve(SimInstant::ZERO, &events, &dense)
            .unwrap();
        let mut seen = vec![0usize; events.len()];
        for s in &slots {
            for &d in &s.covered {
                seen[d] += 1;
                // Each covered device truly has a PO inside the window.
                prop_assert!(events[d]
                    .iter()
                    .any(|&t| t >= s.window_start && t < s.transmit_at));
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn generic_greedy_covers_or_reports_impossible(
        sets in proptest::collection::vec(
            proptest::collection::vec(0usize..12, 0..5),
            1..12
        ),
    ) {
        let n = 12usize;
        let result = greedy_set_cover(n, &sets);
        let coverable = {
            let mut covered = vec![false; n];
            for s in &sets {
                for &e in s {
                    covered[e] = true;
                }
            }
            covered.iter().all(|&c| c)
        };
        match result {
            Some(picked) => {
                prop_assert!(coverable);
                let mut covered = vec![false; n];
                for i in &picked {
                    for &e in &sets[*i] {
                        covered[e] = true;
                    }
                }
                prop_assert!(covered.iter().all(|&c| c));
                // Greedy never picks a set adding nothing.
                prop_assert!(picked.len() <= n);
            }
            None => prop_assert!(!coverable),
        }
    }

    #[test]
    fn all_greedy_solvers_are_pick_identical_to_reference(
        sets in proptest::collection::vec(
            proptest::collection::vec(0usize..40, 0..12),
            1..30
        ),
    ) {
        // Both fast paths — the incremental-gain production solver and the
        // bitset re-sweep — must reproduce the reference oracle's picks
        // exactly (same sets, same order), including the None cases.
        let oracle = reference::greedy_set_cover(40, &sets);
        prop_assert_eq!(greedy_set_cover(40, &sets), oracle.clone());
        prop_assert_eq!(greedy_set_cover_bitset(40, &sets), oracle);
    }

    #[test]
    fn incremental_greedy_survives_adversarial_tie_storms(
        n in 1usize..24,
        width in 1usize..6,
        copies in 1usize..5,
    ) {
        // Adversarial shape for lazy snapshot queues: every set duplicated
        // `copies` times (maximal ties, lowest index must win every round)
        // over a sliding overlap structure that leaves most snapshots
        // stale after each pick.
        let mut sets = Vec::new();
        for start in 0..n {
            let set: Vec<usize> = (start..(start + width).min(n)).collect();
            for _ in 0..copies {
                sets.push(set.clone());
            }
        }
        let oracle = reference::greedy_set_cover(n, &sets);
        prop_assert!(oracle.is_some());
        prop_assert_eq!(greedy_set_cover(n, &sets), oracle.clone());
        prop_assert_eq!(greedy_set_cover_bitset(n, &sets), oracle);
    }

    #[test]
    fn both_window_engines_are_slot_identical_to_reference(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..50_000, 0..6),
            1..25
        ),
        dense_bits in proptest::collection::vec(0u8..4, 1..25),
        ti_ms in 100u64..2_000,
    ) {
        let events: Vec<Vec<SimInstant>> = raw
            .iter()
            .map(|d| {
                let mut v: Vec<SimInstant> = d.iter().map(|&m| SimInstant::from_ms(m)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        // Random dense flags (aligned with events, padded with false).
        let dense: Vec<bool> = (0..events.len())
            .map(|i| dense_bits.get(i).is_some_and(|&b| b == 0))
            .collect();
        let ti = SimDuration::from_ms(ti_ms);
        let solver = WindowCover::new(ti);
        let oracle = reference::window_cover_solve(ti, SimInstant::ZERO, &events, &dense);
        // The occupancy-dispatched default plus both engines pinned.
        prop_assert_eq!(solver.solve(SimInstant::ZERO, &events, &dense), oracle.clone());
        prop_assert_eq!(
            solver.solve_incremental(SimInstant::ZERO, &events, &dense),
            oracle.clone()
        );
        prop_assert_eq!(solver.solve_sweep(SimInstant::ZERO, &events, &dense), oracle);
    }

    #[test]
    fn greedy_matches_windowed_solver_on_frame_instances(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..30, 1..4),
            1..8
        ),
    ) {
        // When TI = 1 frame-slot, each candidate window covers exactly the
        // devices of one slot: both solvers face the same instance and must
        // produce equally sized covers (both are the same greedy).
        let events: Vec<Vec<SimInstant>> = raw
            .iter()
            .map(|d| {
                let mut v: Vec<SimInstant> =
                    d.iter().map(|&m| SimInstant::from_ms(m * 10)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let dense = vec![false; events.len()];
        let slots = WindowCover::new(SimDuration::from_ms(10))
            .solve(SimInstant::ZERO, &events, &dense)
            .unwrap();

        let mut sets = vec![Vec::new(); 30];
        for (d, evs) in events.iter().enumerate() {
            for t in evs {
                sets[(t.as_ms() / 10) as usize].push(d);
            }
        }
        let picked = greedy_set_cover(events.len(), &sets).unwrap();
        prop_assert_eq!(slots.len(), picked.len());
    }
}
