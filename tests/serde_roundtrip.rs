//! Serialization round-trips for the public data types (the `serde`
//! feature is on by default): configs and results must survive
//! JSON encoding, so experiments can be archived and replayed.

use nbiot_multicast::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn timing_types_roundtrip() {
    let t = SimInstant::from_ms(123_456);
    assert_eq!(roundtrip(&t), t);
    let d = SimDuration::from_secs(20);
    assert_eq!(roundtrip(&d), d);
    let w = TimeWindow::new(SimInstant::from_ms(10), SimInstant::from_ms(99));
    assert_eq!(roundtrip(&w), w);
    for cycle in [
        PagingCycle::Drx(DrxCycle::Rf64),
        PagingCycle::edrx(EdrxCycle::Hf256),
    ] {
        assert_eq!(roundtrip(&cycle), cycle);
    }
}

#[test]
fn paging_config_roundtrips() {
    let cfg = PagingConfig::edrx(EdrxCycle::Hf128);
    assert_eq!(roundtrip(&cfg), cfg);
    let ue = UeId(987);
    assert_eq!(roundtrip(&ue), ue);
}

#[test]
fn population_roundtrips() {
    let pop = TrafficMix::ericsson_city()
        .generate(25, &mut StdRng::seed_from_u64(1))
        .unwrap();
    let back: Population = roundtrip(&pop);
    assert_eq!(back, pop);
}

#[test]
fn traffic_mix_roundtrips() {
    let mix = TrafficMix::ericsson_city();
    let back: TrafficMix = roundtrip(&mix);
    assert_eq!(back, mix);
}

#[test]
fn multicast_plan_roundtrips() {
    let pop = TrafficMix::ericsson_city()
        .generate(20, &mut StdRng::seed_from_u64(2))
        .unwrap();
    let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for kind in MechanismKind::ALL {
        let plan = kind.instantiate().plan(&input, &mut rng).unwrap();
        let back: MulticastPlan = roundtrip(&plan);
        assert_eq!(back, plan, "{kind}");
        // The deserialized plan still validates.
        back.validate(&input).unwrap();
    }
}

#[test]
fn sim_and_grouping_configs_roundtrip() {
    let sim = SimConfig::default();
    let back: SimConfig = roundtrip(&sim);
    assert_eq!(back, sim);
    let params = GroupingParams::default();
    assert_eq!(roundtrip(&params), params);
}

#[test]
fn ledgers_and_metrics_roundtrip() {
    let mut ledger = UptimeLedger::new();
    ledger.accumulate(PowerState::LightSleep, SimDuration::from_ms(42));
    ledger.pos_monitored = 7;
    assert_eq!(roundtrip(&ledger), ledger);
    let rel = RelativeUptime {
        light_sleep: 0.1,
        connected: 0.2,
    };
    let back = roundtrip(&rel);
    assert_eq!(back.light_sleep, rel.light_sleep);
    assert_eq!(back.connected, rel.connected);
}

#[test]
fn scenarios_roundtrip() {
    // Every built-in scenario — including the new clustered, bursty-alarm
    // and large-N families — must survive JSON archival exactly, so
    // experiments can be replayed from their scenario files alone.
    for name in Scenario::REGISTRY {
        let scenario = Scenario::builtin(name).expect("registered scenario");
        let back: Scenario = roundtrip(&scenario);
        assert_eq!(back, scenario, "{name}");
    }
}

#[test]
fn scenario_results_roundtrip() {
    let mut scenario = Scenario::builtin("fig6b").expect("registered scenario");
    scenario.devices = vec![12];
    scenario.runs = 2;
    scenario.threads = 1;
    let result = run_scenario(&scenario).unwrap();
    let back: ScenarioResult = roundtrip(&result);
    assert_eq!(back, result);
    assert_eq!(back.mix, "ericsson-city");
    assert_eq!(back.points.len(), 3);
}

#[test]
fn comparison_results_serialize_for_archival() {
    let config = ExperimentConfig {
        n_devices: 15,
        runs: 2,
        ..ExperimentConfig::default()
    };
    let cmp = run_comparison(&config, &[MechanismKind::DrSi]).unwrap();
    // One-way: results only need to be archivable (Summary is plain data).
    let json = serde_json::to_string_pretty(&cmp).expect("serialize");
    assert!(json.contains("DR-SI"));
    let back: ComparisonResult = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.n_devices, 15);
    assert_eq!(
        back.mechanism("DR-SI").unwrap().transmissions.mean,
        cmp.mechanism("DR-SI").unwrap().transmissions.mean
    );
}
