//! Replay-equivalence contract of the event-driven grouping service:
//!
//! * after **any** event prefix, the service's incrementally maintained
//!   fleet is bit-identical to a fresh batch `Population` built from the
//!   surviving devices;
//! * snapshot → restore → continue reproduces an uninterrupted run byte
//!   for byte, from **every** cut point;
//! * the configured thread count never changes results.
//!
//! Event logs are both synthesized from the churn process and generated
//! arbitrarily (random interleavings of registers, departures, handovers
//! and campaign requests over a growing id space), so the equivalence is
//! not an artifact of `ChurnModel`'s event ordering.

use nbiot_multicast::prelude::*;
use nbiot_multicast::service::{Applied, ServiceSnapshot};
use nbiot_multicast::traffic::FleetEvent;
use proptest::prelude::*;
use rand::{Rng as _, SeedableRng as _};

fn config(policy: RegroupPolicy, seed: u64, threads: usize) -> ServiceConfig {
    ServiceConfig {
        policy,
        seed,
        threads,
        ..ServiceConfig::default()
    }
}

fn policy_from(index: u8) -> RegroupPolicy {
    match index % 4 {
        0 => RegroupPolicy::Never,
        1 => RegroupPolicy::EveryEpoch,
        2 => RegroupPolicy::StalenessThreshold(0.3),
        _ => RegroupPolicy::Repair,
    }
}

fn synthesized(devices: usize, epochs: u32, seed: u64) -> EventLog {
    EventLog::synthesize(
        &TrafficMix::mobility_churn(),
        devices,
        &ChurnModel {
            epochs,
            departure_rate: 0.15,
            arrival_rate: 0.15,
            handover_rate: 0.25,
        },
        "dr-sc",
        seed,
    )
    .expect("synthesis succeeds")
}

/// An arbitrary (but always-valid) event log: devices register with
/// strictly increasing ids; departures and handovers target live
/// devices; at least one device always survives once any registered, so
/// campaign requests can plan. The mix is only used to sample profiles.
fn arbitrary_log(steps: &[u8], seed: u64) -> EventLog {
    let mix = TrafficMix::mobility_churn();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let template = mix.generate(1, &mut rng).expect("template population");
    let mut live: Vec<DeviceProfile> = Vec::new();
    let mut next_id = 0u32;
    let mut epoch = 0u32;
    let mut records = Vec::new();
    for &step in steps {
        let event = match step % 8 {
            // Half the steps register, so fleets actually grow.
            0..=3 => {
                let device = mix.sample_device(DeviceId(next_id), &mut rng).unwrap();
                next_id += 1;
                live.push(device);
                ServiceEvent::Fleet(FleetEvent::Register(device))
            }
            4 => match live.len() {
                0 | 1 => continue,
                n => {
                    let victim = live.remove(rng.gen_range(0..n));
                    ServiceEvent::Fleet(FleetEvent::Depart(victim.id))
                }
            },
            5 => match live.len() {
                0 => continue,
                n => {
                    let target = &mut live[rng.gen_range(0..n)];
                    target.ue = UeId(rng.gen());
                    ServiceEvent::Fleet(FleetEvent::Handover {
                        device: target.id,
                        ue: target.ue,
                    })
                }
            },
            6 if !live.is_empty() => {
                epoch += 1;
                ServiceEvent::CampaignRequest {
                    mechanism: "dr-sc".into(),
                }
            }
            _ => ServiceEvent::Snapshot,
        };
        records.push(EventRecord { epoch, event });
    }
    EventLog {
        mix_name: template.mix_name().to_string(),
        class_names: template.class_names().to_vec(),
        records,
    }
}

/// Applies a fleet event to a plain survivor vector, mirroring the
/// service's incremental state with the dumbest possible model.
fn mirror(survivors: &mut Vec<DeviceProfile>, event: &FleetEvent) {
    match *event {
        FleetEvent::Register(device) => survivors.push(device),
        FleetEvent::Depart(id) => survivors.retain(|d| d.id != id),
        FleetEvent::Handover { device, ue } => {
            survivors.iter_mut().find(|d| d.id == device).unwrap().ue = ue;
        }
    }
}

/// Replays `log` keeping a mirror of the surviving devices; at every
/// prefix, asserts the service fleet equals a batch rebuild from them.
fn assert_prefix_equivalence(log: &EventLog, cfg: ServiceConfig) {
    let mut service = GroupingService::new(cfg, log).expect("service");
    let mut survivors: Vec<DeviceProfile> = Vec::new();
    for record in &log.records {
        service.apply(record).expect("apply");
        if let ServiceEvent::Fleet(event) = &record.event {
            mirror(&mut survivors, event);
        }
        let batch = Population::new(
            log.mix_name.clone(),
            log.class_names.clone(),
            survivors.clone(),
        );
        assert_eq!(
            service.fleet(),
            &batch,
            "incremental fleet diverged from batch rebuild at record {}",
            service.next_record()
        );
    }
}

/// Runs `log` straight through and interrupted at `cut`, comparing the
/// serve transcripts, the final state, and the final snapshot bytes.
fn assert_cut_equivalence(log: &EventLog, cfg: ServiceConfig, cut: usize) {
    let mut straight = GroupingService::new(cfg, log).expect("service");
    let all = straight.replay(log).expect("straight replay");

    let mut first = GroupingService::new(cfg, log).expect("service");
    let mut summaries = Vec::new();
    for record in &log.records[..cut] {
        if let Applied::Served(s) = first.apply(record).expect("apply") {
            summaries.push(s);
        }
    }
    let json = first.snapshot().to_json_pretty();
    let snapshot = ServiceSnapshot::from_json(&json).expect("snapshot parses");
    let mut resumed = GroupingService::restore(&snapshot).expect("restore");
    summaries.extend(resumed.replay(log).expect("resumed replay"));

    assert_eq!(summaries, all, "serve transcript diverged at cut {cut}");
    assert_eq!(resumed.fleet(), straight.fleet());
    assert_eq!(resumed.plan(), straight.plan());
    assert_eq!(
        resumed.snapshot().to_json_pretty(),
        straight.snapshot().to_json_pretty(),
        "final snapshots must be byte-identical (cut {cut})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesized_prefixes_match_batch_rebuilds(
        devices in 5usize..40,
        epochs in 1u32..5,
        seed in 0u64..500,
        policy_index in 0u8..4,
    ) {
        let log = synthesized(devices, epochs, seed);
        assert_prefix_equivalence(&log, config(policy_from(policy_index), seed, 1));
    }

    #[test]
    fn arbitrary_logs_match_batch_rebuilds(
        steps in proptest::collection::vec(0u8..8, 4..80),
        seed in 0u64..500,
        policy_index in 0u8..4,
    ) {
        let log = arbitrary_log(&steps, seed);
        assert_prefix_equivalence(&log, config(policy_from(policy_index), seed, 1));
    }

    #[test]
    fn served_plans_match_from_scratch_plans(
        devices in 5usize..30,
        epochs in 1u32..4,
        seed in 0u64..300,
    ) {
        // Under EveryEpoch every churned serve re-plans, so each served
        // plan must equal a from-scratch plan over a fresh batch rebuild
        // of the surviving fleet, drawn from that serve's seed stream.
        let log = synthesized(devices, epochs, seed);
        let cfg = config(RegroupPolicy::EveryEpoch, seed, 1);
        let mut service = GroupingService::new(cfg, &log).expect("service");
        let mut survivors: Vec<DeviceProfile> = Vec::new();
        for record in &log.records {
            if let ServiceEvent::Fleet(event) = &record.event {
                mirror(&mut survivors, event);
            }
            if let Applied::Served(summary) = service.apply(record).expect("apply") {
                let batch = Population::new(
                    log.mix_name.clone(),
                    log.class_names.clone(),
                    survivors.clone(),
                );
                let input =
                    GroupingInput::from_population(&batch, cfg.params).expect("input");
                let mut rng = SeedSequence::new(cfg.seed).child(summary.serve).rng(0);
                let scratch = MechanismKind::DrSc
                    .instantiate()
                    .plan(&input, &mut rng)
                    .expect("scratch plan");
                prop_assert_eq!(service.plan().expect("cached plan"), &scratch);
            }
        }
    }

    #[test]
    fn snapshot_restore_continue_is_byte_identical(
        devices in 5usize..30,
        epochs in 1u32..4,
        seed in 0u64..300,
        policy_index in 0u8..4,
        cut_permille in 0u32..1000,
    ) {
        let log = synthesized(devices, epochs, seed);
        let cut = log.records.len() * cut_permille as usize / 1000;
        assert_cut_equivalence(&log, config(policy_from(policy_index), seed, 1), cut);
    }

    #[test]
    fn arbitrary_log_snapshots_are_cut_invariant(
        steps in proptest::collection::vec(0u8..8, 8..60),
        seed in 0u64..300,
        cut_permille in 0u32..1000,
    ) {
        let log = arbitrary_log(&steps, seed);
        let cut = log.records.len() * cut_permille as usize / 1000;
        assert_cut_equivalence(&log, config(RegroupPolicy::Repair, seed, 1), cut);
    }

    #[test]
    fn thread_counts_never_change_results(
        devices in 5usize..30,
        epochs in 1u32..4,
        seed in 0u64..300,
        policy_index in 0u8..4,
    ) {
        let log = synthesized(devices, epochs, seed);
        let policy = policy_from(policy_index);
        let mut one = GroupingService::new(config(policy, seed, 1), &log).expect("service");
        let mut eight = GroupingService::new(config(policy, seed, 8), &log).expect("service");
        let a = one.replay(&log).expect("threads=1");
        let b = eight.replay(&log).expect("threads=8");
        prop_assert_eq!(a, b);
        prop_assert_eq!(one.fleet(), eight.fleet());
        prop_assert_eq!(one.plan(), eight.plan());
        // Snapshots are portable across thread counts: the fingerprint
        // normalizes `threads`, and the stored fleets are identical.
        prop_assert_eq!(one.fingerprint(), eight.fingerprint());
        prop_assert_eq!(
            &one.snapshot().state.devices,
            &eight.snapshot().state.devices
        );
    }
}
