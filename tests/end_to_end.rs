//! Cross-crate end-to-end tests: population → grouping plan → event-driven
//! simulation → metrics, for every mechanism.

use nbiot_multicast::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn city_input(n: usize, seed: u64) -> GroupingInput {
    let pop = TrafficMix::ericsson_city()
        .generate(n, &mut StdRng::seed_from_u64(seed))
        .expect("population");
    GroupingInput::from_population(&pop, GroupingParams::default()).expect("input")
}

#[test]
fn class_filtered_campaign_runs_end_to_end() {
    // The realistic firmware-update group: one device model only. Device
    // ids inside the sub-population are non-contiguous, exercising the
    // id-to-position mapping through planning and simulation.
    let pop = TrafficMix::ericsson_city()
        .generate(300, &mut StdRng::seed_from_u64(99))
        .unwrap();
    let meters = pop.filter_by_class("electricity-meter");
    assert!(!meters.is_empty());
    assert!(meters.iter().any(|d| d.id.index() >= meters.len()));
    let input = GroupingInput::from_population(&meters, GroupingParams::default()).unwrap();
    for kind in MechanismKind::ALL {
        let mut rng = StdRng::seed_from_u64(7);
        let result = run_campaign(
            kind.instantiate().as_ref(),
            &input,
            &SimConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.device_count(), meters.len(), "{kind}");
        let transfer = result.transfer.duration;
        assert!(
            result
                .ledgers
                .iter()
                .all(|l| l.time_in(PowerState::ConnectedReceiving) >= transfer
                    || kind == MechanismKind::ScPtm),
            "{kind}"
        );
    }
}

#[test]
fn every_mechanism_serves_every_device_exactly_once() {
    let input = city_input(150, 1);
    for kind in MechanismKind::ALL {
        let mut rng = StdRng::seed_from_u64(10);
        let plan = kind
            .instantiate()
            .plan(&input, &mut rng)
            .expect("plan computes");
        plan.validate(&input).expect("plan validates");
        let served: usize = plan.transmissions.iter().map(|t| t.recipients.len()).sum();
        assert_eq!(served, 150, "{kind}");
    }
}

#[test]
fn single_transmission_mechanisms_are_single() {
    let input = city_input(100, 2);
    let mut rng = StdRng::seed_from_u64(11);
    for kind in [
        MechanismKind::DaSc,
        MechanismKind::DrSi,
        MechanismKind::ScPtm,
    ] {
        let plan = kind.instantiate().plan(&input, &mut rng).unwrap();
        assert_eq!(plan.transmission_count(), 1, "{kind}");
    }
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let input = city_input(60, 3);
    let config = SimConfig::default();
    for kind in MechanismKind::ALL {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_campaign(kind.instantiate().as_ref(), &input, &config, &mut rng).unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.ledgers, b.ledgers, "{kind} not reproducible");
        let c = run(8);
        // Different seeds change RA draws (and DR-SI wakes) but never the
        // transmission count of deterministic planners.
        if kind != MechanismKind::DrSi {
            assert_eq!(a.transmission_count, c.transmission_count, "{kind}");
        }
    }
}

#[test]
fn dr_sc_needs_more_transmissions_as_group_grows() {
    let config = SimConfig::default();
    let mut counts = Vec::new();
    for n in [50usize, 200, 400] {
        let input = city_input(n, 4);
        let mut rng = StdRng::seed_from_u64(12);
        let res = run_campaign(&DrSc::new(), &input, &config, &mut rng).unwrap();
        counts.push(res.transmission_count);
    }
    assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
}

#[test]
fn unicast_is_the_energy_floor_for_connected_uptime() {
    let input = city_input(120, 5);
    let config = SimConfig::default();
    let mut rng = StdRng::seed_from_u64(13);
    let unicast = run_campaign(&Unicast::new(), &input, &config, &mut rng).unwrap();
    for kind in [
        MechanismKind::DrSc,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
    ] {
        let res = run_campaign(kind.instantiate().as_ref(), &input, &config, &mut rng).unwrap();
        assert!(
            res.mean_connected_ms() >= unicast.mean_connected_ms(),
            "{kind} beat the unicast floor"
        );
    }
}

#[test]
fn late_joins_stay_rare_with_default_guard() {
    let input = city_input(300, 6);
    let config = SimConfig::default();
    let mut rng = StdRng::seed_from_u64(14);
    for kind in [
        MechanismKind::DrSc,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
    ] {
        let res = run_campaign(kind.instantiate().as_ref(), &input, &config, &mut rng).unwrap();
        let frac = res.late_joins as f64 / 300.0;
        assert!(frac < 0.05, "{kind}: {} late joins", res.late_joins);
    }
}

#[test]
fn bandwidth_ledger_accounts_all_traffic_kinds() {
    let input = city_input(80, 7);
    let config = SimConfig::default();
    let mut rng = StdRng::seed_from_u64(15);

    let dr_sc = run_campaign(&DrSc::new(), &input, &config, &mut rng).unwrap();
    assert!(!dr_sc.bandwidth.airtime(TrafficCategory::Paging).is_zero());
    assert!(!dr_sc
        .bandwidth
        .airtime(TrafficCategory::MulticastData)
        .is_zero());

    let da_sc = run_campaign(&DaSc::new(), &input, &config, &mut rng).unwrap();
    assert!(!da_sc
        .bandwidth
        .airtime(TrafficCategory::RrcSignalling)
        .is_zero());

    let unicast = run_campaign(&Unicast::new(), &input, &config, &mut rng).unwrap();
    assert!(!unicast
        .bandwidth
        .airtime(TrafficCategory::UnicastData)
        .is_zero());
    assert!(unicast
        .bandwidth
        .airtime(TrafficCategory::MulticastData)
        .is_zero());

    let scptm = run_campaign(&ScPtm::new(), &input, &config, &mut rng).unwrap();
    assert!(!scptm
        .bandwidth
        .airtime(TrafficCategory::ScPtmControl)
        .is_zero());
}

#[test]
fn multicast_data_airtime_beats_unicast_for_single_tx_mechanisms() {
    let input = city_input(100, 8);
    let config = SimConfig::default();
    let mut rng = StdRng::seed_from_u64(16);
    let unicast = run_campaign(&Unicast::new(), &input, &config, &mut rng).unwrap();
    let da_sc = run_campaign(&DaSc::new(), &input, &config, &mut rng).unwrap();
    assert_eq!(
        unicast.data_airtime().as_ms(),
        da_sc.data_airtime().as_ms() * 100,
        "unicast sends the payload once per device"
    );
}

#[test]
fn experiment_smoke_matches_figure_shapes() {
    // A miniature of all three figures in one cheap experiment.
    let config = ExperimentConfig {
        n_devices: 60,
        runs: 4,
        ..ExperimentConfig::default()
    };
    let cmp = run_comparison(&config, &MechanismKind::PAPER_MECHANISMS).unwrap();

    // Fig. 6(a): DR-SC zero, DR-SI negligible, DA-SC larger.
    let ls = |name: &str| cmp.mechanism(name).unwrap().rel_light_sleep.mean;
    assert!(ls("DR-SC").abs() < 1e-12);
    assert!(ls("DR-SI") > 0.0 && ls("DR-SI") < 0.01);
    assert!(ls("DA-SC") > ls("DR-SI"));

    // Fig. 6(b): all above unicast; DA-SC above DR-SI.
    let conn = |name: &str| cmp.mechanism(name).unwrap().rel_connected.mean;
    assert!(conn("DR-SC") > 0.0);
    assert!(conn("DA-SC") > conn("DR-SI"));

    // Fig. 7 proxy: DR-SC transmissions land between 1 and N.
    let tx = cmp.mechanism("DR-SC").unwrap().transmissions.mean;
    assert!(tx > 1.0 && tx < 60.0, "tx {tx}");
}

#[test]
fn payload_growth_shrinks_relative_connected_overhead() {
    // The Fig. 6(b) trend across payload sizes.
    let mut means = Vec::new();
    for payload in [DataSize::from_kb(100), DataSize::from_mb(1)] {
        let mut config = ExperimentConfig {
            n_devices: 50,
            runs: 3,
            ..ExperimentConfig::default()
        };
        config.sim = config.sim.with_payload(payload);
        let cmp = run_comparison(&config, &[MechanismKind::DaSc]).unwrap();
        means.push(cmp.mechanism("DA-SC").unwrap().rel_connected.mean);
    }
    assert!(
        means[1] < means[0] / 5.0,
        "overhead should shrink ~10x from 100kB to 1MB: {means:?}"
    );
}
