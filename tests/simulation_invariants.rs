//! Property-based tests on the *executed* campaigns: invariants that must
//! hold for the measured ledgers of every mechanism, across random
//! populations and seeds.

use nbiot_multicast::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_mix() -> impl Strategy<Value = TrafficMix> {
    prop_oneof![
        Just(TrafficMix::ericsson_city()),
        Just(TrafficMix::short_drx()),
        prop_oneof![Just(EdrxCycle::Hf8), Just(EdrxCycle::Hf256)]
            .prop_map(|c| TrafficMix::uniform(PagingCycle::edrx(c))),
    ]
}

fn campaign(
    mix: &TrafficMix,
    kind: MechanismKind,
    n: usize,
    seed: u64,
) -> (GroupingInput, CampaignResult) {
    let pop = mix.generate(n, &mut StdRng::seed_from_u64(seed)).unwrap();
    let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let result = run_campaign(
        kind.instantiate().as_ref(),
        &input,
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    (input, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_device_receives_for_at_least_the_transfer_duration(
        mix in arb_mix(),
        kind in proptest::sample::select(MechanismKind::ALL.to_vec()),
        n in 2usize..40,
        seed in 0u64..300,
    ) {
        let (_, result) = campaign(&mix, kind, n, seed);
        let transfer = result.transfer.duration;
        for ledger in &result.ledgers {
            prop_assert!(
                ledger.time_in(PowerState::ConnectedReceiving) >= transfer,
                "{kind}: device received for less than the payload airtime"
            );
        }
    }

    #[test]
    fn dr_sc_light_sleep_is_bit_identical_to_unicast(
        mix in arb_mix(),
        n in 2usize..40,
        seed in 0u64..300,
    ) {
        let (_, unicast) = campaign(&mix, MechanismKind::Unicast, n, seed);
        let (_, dr_sc) = campaign(&mix, MechanismKind::DrSc, n, seed);
        for (a, b) in dr_sc.ledgers.iter().zip(&unicast.ledgers) {
            prop_assert_eq!(a.light_sleep(), b.light_sleep());
            prop_assert_eq!(a.pos_monitored, b.pos_monitored);
            prop_assert_eq!(a.pagings_received, b.pagings_received);
        }
    }

    #[test]
    fn paging_and_ra_counts_per_mechanism(
        mix in arb_mix(),
        n in 2usize..40,
        seed in 0u64..300,
    ) {
        // Unicast and DR-SC: exactly one page, one RA per device.
        for kind in [MechanismKind::Unicast, MechanismKind::DrSc] {
            let (_, res) = campaign(&mix, kind, n, seed);
            for l in &res.ledgers {
                prop_assert_eq!(l.pagings_received, 1, "{}", kind);
                prop_assert_eq!(l.random_accesses, 1, "{}", kind);
            }
        }
        // DR-SI: one page (ordinary or extended), one RA.
        let (_, dr_si) = campaign(&mix, MechanismKind::DrSi, n, seed);
        for l in &dr_si.ledgers {
            prop_assert_eq!(l.pagings_received, 1);
            prop_assert_eq!(l.random_accesses, 1);
        }
        // DA-SC: adapted devices get two pages and two RAs, others one.
        let (_, da_sc) = campaign(&mix, MechanismKind::DaSc, n, seed);
        for l in &da_sc.ledgers {
            prop_assert!(l.pagings_received == 1 || l.pagings_received == 2);
            prop_assert_eq!(l.random_accesses, l.pagings_received);
        }
        // SC-PTM: no paging, no RA at all.
        let (_, scptm) = campaign(&mix, MechanismKind::ScPtm, n, seed);
        for l in &scptm.ledgers {
            prop_assert_eq!(l.pagings_received, 0);
            prop_assert_eq!(l.random_accesses, 0);
        }
    }

    #[test]
    fn multicast_airtime_is_transmissions_times_transfer(
        mix in arb_mix(),
        kind in proptest::sample::select(vec![
            MechanismKind::DrSc,
            MechanismKind::DaSc,
            MechanismKind::DrSi,
        ]),
        n in 2usize..40,
        seed in 0u64..300,
    ) {
        let (_, res) = campaign(&mix, kind, n, seed);
        let recorded = res.bandwidth.airtime(TrafficCategory::MulticastData)
            + res.bandwidth.airtime(TrafficCategory::UnicastData);
        prop_assert_eq!(
            recorded.as_ms(),
            res.transfer.duration.as_ms() * res.transmission_count as u64
        );
    }

    #[test]
    fn horizon_is_common_across_mechanisms(
        mix in arb_mix(),
        n in 2usize..30,
        seed in 0u64..300,
    ) {
        // The accounting horizon must not depend on the mechanism, or the
        // light-sleep comparison would be meaningless.
        let horizons: Vec<_> = MechanismKind::ALL
            .iter()
            .map(|&k| campaign(&mix, k, n, seed).1.horizon)
            .collect();
        for h in &horizons[1..] {
            prop_assert_eq!(*h, horizons[0]);
        }
    }

    #[test]
    fn analysis_estimate_is_finite_and_bounded(
        mix in arb_mix(),
        n in 2usize..80,
        seed in 0u64..300,
    ) {
        let pop = mix.generate(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let est = nbiot_multicast::grouping::analysis::estimate_dr_sc_transmissions(&input);
        prop_assert!(est.transmissions.is_finite());
        prop_assert!(est.transmissions >= 1.0);
        prop_assert!(est.transmissions <= n as f64 + 1.0);
        prop_assert_eq!(est.dense_devices + est.sparse_devices, n);
    }
}
