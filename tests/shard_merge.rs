//! Sharded execution must be a pure distribution optimization: merging
//! the complete shard set of *any* K-way partition of a scenario's
//! (point × run) item pool — through a JSON text roundtrip, in any merge
//! order — reproduces the unsharded `run_scenario` result bit for bit.

use nbiot_bench::coordinator::{self, FaultPlan, RunConfig};
use nbiot_multicast::prelude::*;
use nbiot_sim::{merge_archives, run_scenario, run_scenario_shard, ScenarioArchive, ShardSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn shard_archives(scenario: &Scenario, count: u32) -> Vec<ScenarioArchive> {
    (0..count)
        .map(|index| {
            run_scenario_shard(scenario, ShardSpec { index, count }).expect("shard execution")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_k_way_sharding_merges_bit_identically(
        k in proptest::sample::select(vec![1u32, 2, 3, 7]),
        devices in proptest::collection::vec(8usize..30, 1..3),
        runs in 1u32..5,
        seed in 0u64..1_000,
        threads in proptest::sample::select(vec![1usize, 3]),
    ) {
        // Device sweeps of 1-2 points with 1-4 runs give item pools of
        // 1..8 items: K = 7 regularly exceeds the pool (empty shards) and
        // non-divisible pools exercise uneven splits.
        let mut scenario = Scenario::builtin("fig6a").expect("builtin");
        scenario.devices = devices;
        scenario.runs = runs;
        scenario.master_seed = seed;
        scenario.threads = threads;

        let unsharded = run_scenario(&scenario).expect("unsharded run");
        let mut parts = shard_archives(&scenario, k);

        // The merge must not care about shard order.
        parts.reverse();

        // Archives travel between hosts as JSON text; the roundtrip must
        // be exact (shortest-roundtrip float formatting).
        let rehydrated: Vec<ScenarioArchive> = parts
            .iter()
            .map(|archive| {
                let text = serde_json::to_string(archive).expect("serializable");
                serde_json::from_str(&text).expect("JSON roundtrip")
            })
            .collect();

        let merged = merge_archives(&rehydrated).expect("merge");
        let result = merged.result().expect("merged archive is complete");
        prop_assert_eq!(&result, &unsharded, "k={} shards", k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn churned_scenarios_shard_and_merge_bit_identically(
        k in proptest::sample::select(vec![1u32, 3, 7]),
        threads in proptest::sample::select(vec![1usize, 8]),
        seed in 0u64..500,
    ) {
        // Churn evolution and re-planning draw from per-item RNG streams,
        // so a churned grid must survive any sharding × thread-count
        // combination bit-for-bit — including the churn summaries.
        let mut scenario = Scenario::builtin("mobility-churn").expect("builtin");
        scenario.devices = vec![15, 24];
        scenario.runs = 3;
        scenario.master_seed = seed;
        scenario.threads = threads;

        let unsharded = run_scenario(&scenario).expect("unsharded churned run");
        let merged = merge_archives(&shard_archives(&scenario, k)).expect("merge");
        let result = merged.result().expect("complete");
        prop_assert_eq!(&result, &unsharded, "k={} threads={}", k, threads);
    }
}

#[test]
fn churned_archive_records_survive_the_json_roundtrip() {
    // The new MechRun churn fields ride the same shortest-roundtrip float
    // path as every other record field.
    let mut scenario = Scenario::builtin("handover-storm").expect("builtin");
    scenario.devices = vec![18];
    scenario.runs = 3;
    scenario.threads = 2;
    let unsharded = run_scenario(&scenario).unwrap();
    let parts: Vec<ScenarioArchive> = shard_archives(&scenario, 3)
        .iter()
        .map(|archive| {
            let text = serde_json::to_string(archive).expect("serializable");
            serde_json::from_str(&text).expect("JSON roundtrip")
        })
        .collect();
    let merged = merge_archives(&parts).unwrap();
    assert_eq!(merged.result().unwrap(), unsharded);
    // The records really carry churn numbers (the storm re-plans).
    assert!(merged
        .items
        .iter()
        .flat_map(|i| i.rows.iter().flatten())
        .any(|r| r.regroups > 0.0));
}

#[test]
fn seven_way_shard_of_tiny_pool_is_bit_identical() {
    // The canonical uneven split pinned as a plain test: a 6-item pool in
    // 7 shards leaves one shard empty, and the merge still reproduces the
    // unsharded result exactly.
    let mut scenario = Scenario::builtin("fig6b").expect("builtin");
    scenario.devices = vec![10, 18];
    scenario.runs = 3;
    scenario.threads = 2;
    let unsharded = run_scenario(&scenario).unwrap();
    for k in [1u32, 2, 3, 7] {
        let merged = merge_archives(&shard_archives(&scenario, k)).unwrap();
        assert_eq!(merged.result().unwrap(), unsharded, "k={k}");
    }
}

/// A scratch run directory unique to this test case (parallel proptest
/// cases must not share checkpoint state).
fn fresh_run_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "shard_merge_resume_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn faulted_halted_campaigns_resume_to_bit_identical_merges(
        shards in 2u32..5,
        halt_after in 0u32..3,
        fault_seed in 0u64..1_000,
        intensity in proptest::sample::select(vec![0.3f64, 0.8]),
        seed in 0u64..500,
    ) {
        // The fault-tolerance contract of `coordinator::run`: under ANY
        // sampled fault plan whose shards eventually succeed within the
        // retry budget, and ANY kill point (halt after an arbitrary
        // prefix of newly completed shards) followed by a resume from the
        // same run directory, the merged archive folds to the exact
        // unsharded `run_scenario` result. Stalls are excluded only
        // because each one burns a real timeout window in debug builds —
        // crash, corrupt-write and spawn-failure paths all retry here.
        let mut scenario = Scenario::builtin("fig6a").expect("builtin");
        scenario.devices = vec![10, 16];
        scenario.runs = 2;
        scenario.master_seed = seed;
        scenario.threads = 1;
        let unsharded = run_scenario(&scenario).expect("unsharded run");

        let run_dir = fresh_run_dir();
        let mut config = RunConfig::new(scenario, shards, &run_dir);
        config.backoff_base_ms = 0;
        config.fault_plan =
            FaultPlan::sampled(fault_seed, shards, config.max_attempts, intensity, false);
        config.halt_after = Some(halt_after);

        let first = coordinator::run(&config).expect("halted campaign");
        prop_assert!(first.report.halted || first.report.failed.is_empty());
        prop_assert!(first.merged.is_none() || !first.report.halted);

        // Resume: same directory, same fault plan (checkpointed shards
        // skip their schedule entirely; the rest retry through it).
        config.halt_after = None;
        let resumed = coordinator::run(&config).expect("resumed campaign");
        prop_assert!(resumed.report.failed.is_empty(), "plan must succeed in budget");
        let merged = resumed.merged.expect("complete merge after resume");
        prop_assert!(merged.coverage.is_none());
        let result = merged.result().expect("merged archive folds");
        prop_assert_eq!(&result, &unsharded, "shards={} halt_after={}", shards, halt_after);
        let _ = std::fs::remove_dir_all(&run_dir);
    }
}

#[test]
fn shards_from_different_thread_counts_still_merge() {
    // Sharding exists to spread work across heterogeneous hosts; the
    // fingerprint must treat worker counts as irrelevant.
    let mut scenario = Scenario::builtin("fig6a").expect("builtin");
    scenario.devices = vec![12];
    scenario.runs = 4;
    scenario.threads = 1;
    let unsharded = run_scenario(&scenario).unwrap();
    let serial_half = run_scenario_shard(&scenario, ShardSpec { index: 0, count: 2 }).unwrap();
    scenario.threads = 8;
    let threaded_half = run_scenario_shard(&scenario, ShardSpec { index: 1, count: 2 }).unwrap();
    let merged = merge_archives(&[serial_half, threaded_half]).unwrap();
    assert_eq!(merged.result().unwrap(), unsharded);
}
