//! Property-based tests on the structural invariants of multicast plans,
//! across random populations, group sizes, inactivity timers and seeds.

use nbiot_multicast::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random mix choice: the calibrated city mix, short-DRX only, or a uniform
/// single-cycle population.
fn arb_mix() -> impl Strategy<Value = TrafficMix> {
    prop_oneof![
        Just(TrafficMix::ericsson_city()),
        Just(TrafficMix::short_drx()),
        prop_oneof![
            Just(EdrxCycle::Hf2),
            Just(EdrxCycle::Hf16),
            Just(EdrxCycle::Hf256),
            Just(EdrxCycle::Hf1024),
        ]
        .prop_map(|c| TrafficMix::uniform(PagingCycle::edrx(c))),
    ]
}

fn arb_params() -> impl Strategy<Value = GroupingParams> {
    (10u64..=30, 0u64..100_000).prop_map(|(ti_s, start_ms)| GroupingParams {
        start: SimInstant::from_ms(start_ms),
        ti: InactivityTimer::new(SimDuration::from_secs(ti_s)),
        transmission_time: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_mechanisms_produce_valid_plans(
        mix in arb_mix(),
        params in arb_params(),
        n in 2usize..60,
        seed in 0u64..1_000,
    ) {
        let pop = mix.generate(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        let input = GroupingInput::from_population(&pop, params).unwrap();
        for kind in MechanismKind::ALL {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let plan = kind.instantiate().plan(&input, &mut rng).unwrap();
            prop_assert!(plan.validate(&input).is_ok(), "{kind}: {:?}", plan.validate(&input));
        }
    }

    #[test]
    fn dr_si_wakes_inside_pre_transmission_window(
        params in arb_params(),
        n in 2usize..40,
        seed in 0u64..500,
    ) {
        let pop = TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let plan = DrSi::new().plan(&input, &mut rng).unwrap();
        let t = plan.single_transmission_time().unwrap();
        let w = TimeWindow::ending_at(t, params.ti.duration());
        for dp in &plan.device_plans {
            if let Some(m) = dp.mltc {
                prop_assert!(w.contains(m.wake_at));
                prop_assert!(m.po < w.start());
                prop_assert_eq!(m.time_remaining, t - m.po);
            }
        }
    }

    #[test]
    fn da_sc_adaptations_shorten_cycles_and_land_in_window(
        params in arb_params(),
        n in 2usize..40,
        seed in 0u64..500,
    ) {
        let pop = TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let plan = DaSc::new().plan(&input, &mut rng).unwrap();
        let t = plan.single_transmission_time().unwrap();
        let w = TimeWindow::ending_at(t, params.ti.duration());
        for (dp, dev) in plan.device_plans.iter().zip(input.iter()) {
            if let Some(a) = dp.adaptation {
                prop_assert!(a.new_cycle.period_frames() < dev.paging.cycle.period_frames());
                prop_assert!(w.contains(a.landing_po));
                prop_assert!(a.page_po < w.start());
                prop_assert!(a.monitored_adapted_pos >= 1);
                // The landing PO is consistent with the anchored grid.
                let gap = a.landing_po - a.page_po;
                prop_assert_eq!(gap.as_ms() % a.new_cycle.period().as_ms(), 0);
            }
        }
    }

    #[test]
    fn unicast_transmission_count_equals_group_size(
        mix in arb_mix(),
        n in 1usize..50,
        seed in 0u64..500,
    ) {
        let pop = mix.generate(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = Unicast::new().plan(&input, &mut rng).unwrap();
        prop_assert_eq!(plan.transmission_count(), n);
    }

    #[test]
    fn dr_sc_transmission_count_is_monotone_reasonable(
        params in arb_params(),
        n in 2usize..50,
        seed in 0u64..500,
    ) {
        let pop = TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        prop_assert!(plan.transmission_count() >= 1);
        prop_assert!(plan.transmission_count() <= n);
    }

    #[test]
    fn pages_happen_at_devices_own_pos(
        n in 2usize..30,
        seed in 0u64..500,
    ) {
        let pop = TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        for kind in [MechanismKind::DrSc, MechanismKind::Unicast] {
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = kind.instantiate().plan(&input, &mut rng).unwrap();
            for (dp, sched) in plan.device_plans.iter().zip(input.schedules()) {
                if let Some(p) = dp.page {
                    prop_assert_eq!(
                        sched.first_po_at_or_after(p.po), p.po,
                        "{} paged off-PO", dp.device
                    );
                }
            }
        }
    }
}
