//! The churn subsystem must be strictly additive: declaring churn with
//! all rates zero — under *any* re-grouping policy — produces summaries
//! bit-identical to the static engine, and a static scenario's classic
//! metrics are untouched by churned execution (only the new
//! `regroup_count` / `stale_miss_ratio` summaries ever move).

use nbiot_multicast::prelude::*;

fn static_scenario() -> Scenario {
    let mut s = Scenario::builtin("fig6b").expect("registered");
    s.devices = vec![15, 30];
    s.runs = 3;
    s.threads = 1;
    s
}

fn zero_churn() -> ChurnModel {
    ChurnModel {
        epochs: 5,
        departure_rate: 0.0,
        arrival_rate: 0.0,
        handover_rate: 0.0,
    }
}

#[test]
fn zero_churn_is_bit_identical_to_static_for_every_policy() {
    // The regression guard the new code path must never break: churn
    // with zero rates takes the churned code path (epochs are declared)
    // but can never observe an event, so every summary — classic and
    // churn-specific — must equal the static engine's bit for bit.
    let baseline = run_scenario(&static_scenario()).unwrap();
    for policy in [
        RegroupPolicy::Never,
        RegroupPolicy::EveryEpoch,
        RegroupPolicy::StalenessThreshold(0.0),
        RegroupPolicy::StalenessThreshold(0.5),
    ] {
        let mut churned = static_scenario();
        churned.churn = Some(zero_churn());
        churned.regroup = policy;
        assert_eq!(run_scenario(&churned).unwrap(), baseline, "{policy:?}");
    }
}

#[test]
fn zero_epochs_are_equivalent_to_no_churn() {
    let baseline = run_scenario(&static_scenario()).unwrap();
    let mut churned = static_scenario();
    churned.churn = Some(ChurnModel {
        epochs: 0,
        departure_rate: 0.5,
        arrival_rate: 0.5,
        handover_rate: 0.5,
    });
    churned.regroup = RegroupPolicy::EveryEpoch;
    assert_eq!(run_scenario(&churned).unwrap(), baseline);
}

#[test]
fn static_summaries_report_zero_churn_metrics() {
    let result = run_scenario(&static_scenario()).unwrap();
    for m in result.points.iter().flat_map(|p| &p.comparison.mechanisms) {
        assert_eq!(m.regroup_count.mean, 0.0, "{}", m.mechanism);
        assert_eq!(m.stale_miss_ratio.mean, 0.0, "{}", m.mechanism);
    }
}

#[test]
fn churn_leaves_classic_metrics_untouched() {
    // Churn epochs happen *after* the epoch-0 delivery the classic
    // metrics measure, so switching churn on moves only the two new
    // summaries; light-sleep, connected, transmissions etc. stay
    // bit-identical to the static run of the same seed.
    let baseline = run_scenario(&static_scenario()).unwrap();
    let mut churned = static_scenario();
    churned.churn = Some(ChurnModel {
        epochs: 4,
        departure_rate: 0.1,
        arrival_rate: 0.1,
        handover_rate: 0.2,
    });
    churned.regroup = RegroupPolicy::StalenessThreshold(0.3);
    let with_churn = run_scenario(&churned).unwrap();
    let mut saw_churn_motion = false;
    for (a, b) in baseline.points.iter().zip(&with_churn.points) {
        for (ma, mb) in a.comparison.mechanisms.iter().zip(&b.comparison.mechanisms) {
            assert_eq!(ma.rel_light_sleep, mb.rel_light_sleep, "{}", ma.mechanism);
            assert_eq!(ma.rel_connected, mb.rel_connected, "{}", ma.mechanism);
            assert_eq!(ma.transmissions, mb.transmissions, "{}", ma.mechanism);
            assert_eq!(ma.mean_wait_s, mb.mean_wait_s, "{}", ma.mechanism);
            assert_eq!(ma.mean_energy_mj, mb.mean_energy_mj, "{}", ma.mechanism);
            assert_eq!(ma.ra_failures, mb.ra_failures, "{}", ma.mechanism);
            saw_churn_motion |= mb.regroup_count.mean > 0.0 || mb.stale_miss_ratio.mean > 0.0;
        }
    }
    assert!(saw_churn_motion, "the churned run must register churn");
}

#[test]
fn never_policy_misses_more_as_churn_grows() {
    // Sanity on the metric's direction: a stale plan misses more of a
    // faster-churning fleet.
    let miss_ratio_at = |handover_rate: f64| {
        let mut s = static_scenario();
        s.devices = vec![40];
        s.churn = Some(ChurnModel {
            epochs: 4,
            departure_rate: 0.0,
            arrival_rate: 0.0,
            handover_rate,
        });
        s.regroup = RegroupPolicy::Never;
        let result = run_scenario(&s).unwrap();
        result.points[0].comparison.mechanisms[0]
            .stale_miss_ratio
            .mean
    };
    let slow = miss_ratio_at(0.05);
    let fast = miss_ratio_at(0.4);
    assert!(slow > 0.0, "even slow churn leaves stale devices: {slow}");
    assert!(fast > slow, "faster churn must miss more: {fast} vs {slow}");
}

#[test]
fn invalid_churn_configs_are_rejected_at_validation() {
    let mut s = static_scenario();
    s.churn = Some(ChurnModel {
        epochs: 3,
        departure_rate: 1.5,
        arrival_rate: 0.0,
        handover_rate: 0.0,
    });
    assert!(matches!(
        run_scenario(&s),
        Err(SimError::Traffic(
            nbiot_multicast::traffic::TrafficError::InvalidChurnRate { .. }
        ))
    ));
    let mut s2 = static_scenario();
    s2.churn = Some(zero_churn());
    s2.regroup = RegroupPolicy::StalenessThreshold(-0.5);
    assert!(matches!(
        run_scenario(&s2),
        Err(SimError::InvalidRegroupThreshold { .. })
    ));
    // A bad threshold is rejected even while churn is absent — it must
    // not ride dormant into serialized scenarios and archives.
    let mut s3 = static_scenario();
    s3.churn = None;
    s3.regroup = RegroupPolicy::StalenessThreshold(f64::NAN);
    assert!(matches!(
        run_scenario(&s3),
        Err(SimError::InvalidRegroupThreshold { .. })
    ));
}

#[test]
fn churn_scenarios_roundtrip_through_serde() {
    // The churn configuration is part of the scenario contract: both new
    // registry families survive JSON exactly, churn model and policy
    // included.
    for name in ["mobility-churn", "handover-storm"] {
        let s = Scenario::builtin(name).expect("registered");
        assert!(s.churn.is_some(), "{name} declares churn");
        let text = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&text).expect("deserializable");
        assert_eq!(back, s, "{name}");
    }
}
