//! Property-based tests of the TS 36.304 paging-occasion substrate.

use nbiot_multicast::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = PagingConfig> {
    prop_oneof![
        prop_oneof![
            Just(DrxCycle::Rf32),
            Just(DrxCycle::Rf64),
            Just(DrxCycle::Rf128),
            Just(DrxCycle::Rf256),
        ]
        .prop_map(PagingConfig::drx),
        prop_oneof![
            Just(EdrxCycle::Hf2),
            Just(EdrxCycle::Hf8),
            Just(EdrxCycle::Hf64),
            Just(EdrxCycle::Hf512),
            Just(EdrxCycle::Hf1024),
        ]
        .prop_map(PagingConfig::edrx),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pos_repeat_with_the_cycle_period(cfg in arb_config(), ue in 0u32..100_000) {
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let first = s.first_po_at_or_after(SimInstant::ZERO);
        let next = s.first_po_at_or_after(first + SimDuration::from_ms(1));
        prop_assert_eq!(next - first, cfg.cycle.period());
    }

    #[test]
    fn first_after_and_last_before_are_adjacent(
        cfg in arb_config(),
        ue in 0u32..100_000,
        probe_s in 1u64..50_000,
    ) {
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let t = SimInstant::from_secs(probe_s);
        let after = s.first_po_at_or_after(t);
        prop_assert!(after >= t);
        if let Some(before) = s.last_po_before(t) {
            prop_assert!(before < t);
            // No PO lies strictly between them.
            prop_assert_eq!(
                s.first_po_at_or_after(before + SimDuration::from_ms(1)),
                after
            );
        }
    }

    #[test]
    fn count_matches_iteration(
        cfg in arb_config(),
        ue in 0u32..100_000,
        from_s in 0u64..10_000,
        span_s in 1u64..40_000,
    ) {
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let from = SimInstant::from_secs(from_s);
        let to = SimInstant::from_secs(from_s + span_s);
        let counted = s.count_pos_between(from, to);
        let iterated = s.iter_from(from).take_while(|&p| p < to).count() as u64;
        prop_assert_eq!(counted, iterated);
    }

    #[test]
    fn any_window_of_one_cycle_contains_a_po(
        cfg in arb_config(),
        ue in 0u32..100_000,
        start_s in 0u64..30_000,
    ) {
        // The feasibility property DA-SC and DR-SI rely on: every span of
        // one full cycle holds at least one PO.
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let w = TimeWindow::starting_at(SimInstant::from_secs(start_s), cfg.cycle.period());
        prop_assert!(s.has_po_in(w), "no PO in {w} for {cfg:?}");
    }

    #[test]
    fn pos_are_strictly_increasing_and_on_schedule(
        cfg in arb_config(),
        ue in 0u32..100_000,
    ) {
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let pos: Vec<SimInstant> = s.iter_from(SimInstant::ZERO).take(8).collect();
        for w in pos.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for po in pos {
            prop_assert_eq!(s.first_po_at_or_after(po), po);
        }
    }

    #[test]
    fn different_ue_ids_use_admissible_po_subframes(
        cfg in arb_config(),
        ue in 0u32..100_000,
    ) {
        // With nB = T, the FDD PO subframe is always 9.
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let po = s.first_po_at_or_after(SimInstant::ZERO);
        prop_assert_eq!(po.subframe_in_frame(), 9);
    }

    #[test]
    fn ladder_next_shorter_halves_or_bridges(
        frames in prop_oneof![
            Just(64u64), Just(256), Just(2048), Just(65536), Just(1048576)
        ],
    ) {
        let cycle = CycleLadder::from_frames(frames).unwrap();
        let shorter = CycleLadder::next_shorter(cycle).unwrap();
        prop_assert!(shorter.period_frames() < frames);
        // Power-of-two ladder: the next shorter cycle divides this one.
        prop_assert_eq!(frames % shorter.period_frames(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedule_survives_hsfn_wrap(
        cfg in arb_config(),
        ue in 0u32..100_000,
    ) {
        // One full H-SFN cycle is 1024 hyperframes = 10485.76 s; the PO
        // pattern must continue seamlessly across the wrap (and across the
        // full 1024 * 1024-frame super-period).
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let wrap = SimInstant::from_ms(1024 * 1024 * 10); // H-SFN wrap
        let before = s.last_po_before(wrap).unwrap();
        let after = s.first_po_at_or_after(wrap);
        let gap = after - before;
        // Consecutive POs are never farther apart than one full cycle.
        prop_assert!(gap <= cfg.cycle.period(), "gap {gap} across wrap");
        // And the pattern one super-period later is an exact translate.
        let period = SimDuration::from_ms(1024 * 1024 * 10);
        let translated = s.first_po_at_or_after(after + period);
        prop_assert_eq!(translated - after, period);
    }

    #[test]
    fn count_is_additive_across_wraps(
        cfg in arb_config(),
        ue in 0u32..100_000,
    ) {
        let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
        let a = SimInstant::from_secs(10_400);
        let b = SimInstant::from_secs(10_500); // around one H-SFN wrap
        let c = SimInstant::from_secs(21_000); // around 2 * maxDRX
        let whole = s.count_pos_between(a, c);
        let split = s.count_pos_between(a, b) + s.count_pos_between(b, c);
        prop_assert_eq!(whole, split);
    }
}
