//! Property-based tests of the plan-improvement layer: the anytime tabu
//! pass over set covers, the budget-0 identity with plain greedy plans,
//! and the LNS churn-repair path's equivalence to never re-planning when
//! nothing churns.

use nbiot_multicast::grouping::improve::improve_cover;
use nbiot_multicast::grouping::{repair_plan, DrSc, DrScTabu};
use nbiot_multicast::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn covers(universe: usize, sets: &[Vec<usize>], picks: &[usize]) -> bool {
    let mut covered = vec![false; universe];
    for &s in picks {
        for &e in &sets[s] {
            covered[e] = true;
        }
    }
    covered.iter().all(|&c| c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accepted_moves_preserve_full_coverage(
        sets in proptest::collection::vec(
            proptest::collection::vec(0usize..20, 1..8),
            1..24
        ),
        budget in 0u32..80,
        seed in 0u64..1_000,
    ) {
        // Only coverable instances: greedy either solves or the instance
        // is discarded (improve_cover requires a feasible start).
        let universe = 20usize;
        let Some(initial) =
            nbiot_multicast::grouping::set_cover::greedy_set_cover(universe, &sets)
        else {
            return Ok(());
        };
        let (improved, stats) = improve_cover(universe, &sets, &initial, budget, seed);
        // The headline invariant: every accepted move keeps the solution
        // a full cover — the search never trades feasibility for cost.
        prop_assert!(covers(universe, &sets, &improved), "improved set must cover");
        prop_assert!(stats.final_cost <= stats.initial_cost);
        prop_assert_eq!(stats.initial_cost as usize, initial.len());
        prop_assert_eq!(stats.final_cost as usize, improved.len());
        prop_assert!(stats.budget_spent <= budget);
        // No duplicate picks survive.
        let mut dedup = improved.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), improved.len());
    }

    #[test]
    fn zero_budget_returns_the_initial_cover_byte_for_byte(
        sets in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 1..6),
            1..16
        ),
        seed in 0u64..1_000,
    ) {
        let universe = 16usize;
        let Some(initial) =
            nbiot_multicast::grouping::set_cover::greedy_set_cover(universe, &sets)
        else {
            return Ok(());
        };
        let (improved, stats) = improve_cover(universe, &sets, &initial, 0, seed);
        prop_assert_eq!(improved, initial);
        prop_assert_eq!(stats.moves_accepted, 0);
        prop_assert_eq!(stats.budget_spent, 0);
        prop_assert_eq!(stats.initial_cost, stats.final_cost);
    }

    #[test]
    fn budget_zero_tabu_plan_is_the_greedy_plan_relabelled(
        n_devices in 2usize..40,
        pop_seed in 0u64..500,
    ) {
        // DR-SC-tabu(0) must be DR-SC bit for bit: same transmissions,
        // same device plans, same horizon — only the label and the
        // zero-work improvement record differ, and no RNG is consumed.
        let mut rng = rand::rngs::StdRng::seed_from_u64(pop_seed);
        let pop = TrafficMix::ericsson_city()
            .generate(n_devices, &mut rng)
            .expect("population");
        let input =
            GroupingInput::from_population(&pop, GroupingParams::default()).expect("input");
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(42);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(42);
        let greedy = DrSc::default().plan(&input, &mut rng_a).expect("plan");
        let tabu0 = DrScTabu::new(0).plan(&input, &mut rng_b).expect("plan");
        prop_assert_eq!(&tabu0.transmissions, &greedy.transmissions);
        prop_assert_eq!(&tabu0.device_plans, &greedy.device_plans);
        prop_assert_eq!(tabu0.horizon, greedy.horizon);
        prop_assert_eq!(tabu0.mechanism.as_str(), "DR-SC-tabu(0)");
        let stats = tabu0.improvement.expect("tabu plans carry stats");
        prop_assert_eq!(stats.moves_accepted, 0);
        prop_assert_eq!(stats.budget_spent, 0);
        prop_assert_eq!(stats.initial_cost, stats.final_cost);
        // Neither path may have consumed RNG differently: both streams
        // must now produce the same next draw.
        prop_assert_eq!(
            rand::Rng::gen::<u64>(&mut rng_a),
            rand::Rng::gen::<u64>(&mut rng_b)
        );
    }

    #[test]
    fn repairing_an_unchurned_fleet_is_the_identity(
        n_devices in 2usize..40,
        pop_seed in 0u64..500,
    ) {
        // The LNS repair of a plan against the very fleet it was built
        // for keeps every survivor transmission and attaches nobody:
        // the repaired plan equals the stale plan (modulo the repair's
        // improvement record).
        let mut rng = rand::rngs::StdRng::seed_from_u64(pop_seed);
        let pop = TrafficMix::ericsson_city()
            .generate(n_devices, &mut rng)
            .expect("population");
        let input =
            GroupingInput::from_population(&pop, GroupingParams::default()).expect("input");
        let plan = DrSc::default().plan(&input, &mut rng).expect("plan");
        let repaired = repair_plan(&plan, &input)
            .expect("DR-SC plans are repairable")
            .expect("repair succeeds");
        prop_assert_eq!(&repaired.transmissions, &plan.transmissions);
        prop_assert_eq!(&repaired.device_plans, &plan.device_plans);
        let stats = repaired.improvement.expect("repairs carry stats");
        prop_assert_eq!(stats.initial_cost, stats.final_cost);
        repaired.validate(&input).expect("repaired plan validates");
    }

}

proptest! {
    // Scenario executions are orders of magnitude heavier than kernel
    // calls; a handful of cases still sweeps seeds and sizes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn repair_under_zero_churn_equals_never_replanning(
        devices in 5usize..25,
        seed_lo in 0u64..200,
    ) {
        // `RegroupPolicy::Repair` over churn epochs that can never move a
        // device must land on the exact summaries of never re-planning at
        // all (which in turn equal the static engine's — the existing
        // zero-churn invariant).
        let mut base = Scenario::builtin("fig6b").expect("registered");
        base.devices = vec![devices];
        base.runs = 2;
        base.threads = 1;
        base.master_seed = 0x5EED_0000 + seed_lo;
        base.churn = Some(ChurnModel {
            epochs: 4,
            departure_rate: 0.0,
            arrival_rate: 0.0,
            handover_rate: 0.0,
        });
        let mut never = base.clone();
        never.regroup = RegroupPolicy::Never;
        let mut repair = base;
        repair.regroup = RegroupPolicy::Repair;
        let a = run_scenario(&never).expect("never");
        let b = run_scenario(&repair).expect("repair");
        prop_assert_eq!(a, b);
    }
}
