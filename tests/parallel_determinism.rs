//! The parallel experiment harness must be a pure wall-clock optimization:
//! every `ComparisonResult`/`SweepPoint` field bit-identical for every
//! thread count, and errors surfaced identically. The same contract holds
//! one layer down: the SoA `Population` columns must reproduce the
//! historical AoS device stream bit-for-bit, and the parallel set-cover
//! index build must be pick-identical to the serial build at every
//! thread count.

use nbiot_multicast::grouping::set_cover::{
    build_cover_index, greedy_set_cover, greedy_set_cover_with, KernelArena,
};
use nbiot_multicast::prelude::*;
use nbiot_sim::sweep_devices;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        n_devices: 30,
        runs: 8,
        ..ExperimentConfig::default()
    }
}

#[test]
fn comparison_threads_1_vs_8_bit_identical() {
    let serial = run_comparison(&base_config(), &MechanismKind::ALL).unwrap();
    let parallel = run_comparison(
        &ExperimentConfig {
            threads: 8,
            ..base_config()
        },
        &MechanismKind::ALL,
    )
    .unwrap();
    // PartialEq over ComparisonResult covers every Summary field (n, mean,
    // std_dev, ci95, min, max) of every metric of every mechanism.
    assert_eq!(serial, parallel);
}

#[test]
fn comparison_auto_threads_bit_identical() {
    let serial = run_comparison(&base_config(), &MechanismKind::PAPER_MECHANISMS).unwrap();
    let auto = run_comparison(
        &ExperimentConfig {
            threads: 0,
            ..base_config()
        },
        &MechanismKind::PAPER_MECHANISMS,
    )
    .unwrap();
    assert_eq!(serial, auto);
}

#[test]
fn sweep_threads_1_vs_8_bit_identical() {
    let cfg = base_config();
    let serial = sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20, 35]).unwrap();
    let parallel = sweep_devices(
        &ExperimentConfig { threads: 8, ..cfg },
        MechanismKind::DrSc,
        &[10, 20, 35],
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

fn small_scenario() -> Scenario {
    let mut s = Scenario::builtin("fig6b").expect("registered");
    s.devices = vec![15, 30];
    s.runs = 4;
    s.threads = 1;
    s
}

#[test]
fn scenario_grid_threads_1_vs_8_bit_identical() {
    // The tentpole acceptance bar: a full multi-point, multi-payload
    // scenario grid — the thread pool spans every (point × run) pair —
    // must be bit-identical between serial and parallel execution.
    // PartialEq over ScenarioResult covers every Summary field of every
    // mechanism of every grid point.
    let serial = run_scenario(&small_scenario()).unwrap();
    let mut parallel_scenario = small_scenario();
    parallel_scenario.threads = 8;
    let parallel = run_scenario(&parallel_scenario).unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn full_device_sweep_scenario_threads_bit_identical() {
    let mut sweep = Scenario::builtin("fig7").expect("registered");
    sweep.devices = vec![10, 20, 35];
    sweep.runs = 5;
    sweep.threads = 1;
    let serial = run_scenario(&sweep).unwrap();
    for threads in [8, 0] {
        sweep.threads = threads;
        assert_eq!(run_scenario(&sweep).unwrap(), serial, "threads={threads}");
    }
}

#[test]
fn shared_populations_match_per_payload_regeneration() {
    // Within a scenario, each run's population and every mechanism's plan
    // are generated once and shared across the payload columns; a
    // dedicated run_comparison per payload regenerates everything. Both
    // paths must agree bit-for-bit.
    let scenario = small_scenario();
    let result = run_scenario(&scenario).unwrap();
    for &n_devices in &scenario.devices {
        for &payload in &scenario.payloads {
            let mut config = ExperimentConfig {
                n_devices,
                runs: scenario.runs,
                master_seed: scenario.master_seed,
                ..ExperimentConfig::default()
            };
            config.sim = config.sim.with_payload(payload);
            let dedicated = run_comparison(&config, &MechanismKind::PAPER_MECHANISMS).unwrap();
            let point = result
                .points
                .iter()
                .find(|p| p.n_devices == n_devices && p.payload == payload)
                .expect("grid point");
            assert_eq!(
                point.comparison, dedicated,
                "{n_devices} devices, {payload}"
            );
        }
    }
}

fn churned_scenario() -> Scenario {
    let mut s = Scenario::builtin("mobility-churn").expect("registered");
    s.devices = vec![20, 35];
    s.runs = 4;
    s.threads = 1;
    s
}

#[test]
fn churned_scenario_threads_1_vs_8_bit_identical() {
    // The churn acceptance bar: population evolution, staleness counting
    // and re-planning all live inside the (point × run) item, so a
    // churned grid must stay bit-identical for every thread count —
    // including the new regroup_count / stale_miss_ratio summaries.
    let serial = run_scenario(&churned_scenario()).unwrap();
    let churned = serial
        .points
        .iter()
        .flat_map(|p| &p.comparison.mechanisms)
        .any(|m| m.regroup_count.mean > 0.0 || m.stale_miss_ratio.mean > 0.0);
    assert!(churned, "the churned workload must actually churn");
    for threads in [8, 0] {
        let mut parallel = churned_scenario();
        parallel.threads = threads;
        assert_eq!(
            run_scenario(&parallel).unwrap(),
            serial,
            "threads={threads}"
        );
    }
}

#[test]
fn handover_storm_threads_bit_identical() {
    let mut s = Scenario::builtin("handover-storm").expect("registered");
    s.devices = vec![25];
    s.runs = 4;
    s.threads = 1;
    let serial = run_scenario(&s).unwrap();
    s.threads = 8;
    assert_eq!(run_scenario(&s).unwrap(), serial);
    // Every-epoch policy under a 30% handover storm: every mechanism
    // re-plans every epoch and nothing is ever missed.
    for m in serial.points.iter().flat_map(|p| &p.comparison.mechanisms) {
        assert_eq!(m.regroup_count.mean, 4.0, "{}", m.mechanism);
        assert_eq!(m.stale_miss_ratio.mean, 0.0, "{}", m.mechanism);
    }
}

// ---- SoA Population vs the historical AoS device stream ----

/// The historical array-of-structs generation path: one `DeviceProfile`
/// per draw, in draw order. The SoA columns must reproduce this stream
/// bit-for-bit through every row accessor.
fn aos_generate(mix: &TrafficMix, n: usize, rng: &mut StdRng) -> Vec<DeviceProfile> {
    (0..n)
        .map(|i| mix.sample_device(DeviceId(i as u32), rng).unwrap())
        .collect()
}

/// The historical AoS churn epoch, reproducing `ChurnModel::step`'s
/// documented draw order: per survivor a departure draw then a handover
/// draw (+ fresh identity), last-device rescue on total departure, then
/// one arrival draw per `base_size` slot.
fn aos_churn_step(
    model: &ChurnModel,
    mix: &TrafficMix,
    devices: &[DeviceProfile],
    base_size: usize,
    next_id: &mut u32,
    rng: &mut StdRng,
) -> Vec<DeviceProfile> {
    let mut evolved = Vec::new();
    for &device in devices {
        if model.departure_rate > 0.0 && rng.gen_bool(model.departure_rate) {
            continue;
        }
        let mut device = device;
        if model.handover_rate > 0.0 && rng.gen_bool(model.handover_rate) {
            device.ue = UeId(rng.gen());
        }
        evolved.push(device);
    }
    if evolved.is_empty() && !devices.is_empty() {
        evolved.push(devices[devices.len() - 1]);
    }
    if model.arrival_rate > 0.0 {
        for _ in 0..base_size {
            if rng.gen_bool(model.arrival_rate) {
                evolved.push(mix.sample_device(DeviceId(*next_id), rng).unwrap());
                *next_id += 1;
            }
        }
    }
    evolved
}

/// Asserts the SoA population equals the AoS device list row by row,
/// through both the row view and every column accessor.
fn assert_population_matches_aos(pop: &Population, aos: &[DeviceProfile]) {
    assert_eq!(pop.len(), aos.len());
    for (i, want) in aos.iter().enumerate() {
        assert_eq!(pop.device(i), *want, "row {i}");
        assert_eq!(pop.id(i), want.id, "id column, row {i}");
        assert_eq!(pop.ues()[i], want.ue, "ue column, row {i}");
        assert_eq!(pop.classes()[i], want.class, "class column, row {i}");
        assert_eq!(
            pop.paging_configs()[i],
            want.paging,
            "paging column, row {i}"
        );
        assert_eq!(
            pop.report_intervals()[i],
            want.report_interval,
            "interval column, row {i}"
        );
    }
    let via_iter: Vec<DeviceProfile> = pop.iter().collect();
    assert_eq!(via_iter, aos, "iter() view");
    assert_eq!(pop.profiles(), aos, "profiles() view");
}

fn any_mix() -> impl Strategy<Value = TrafficMix> {
    (0..TrafficMix::REGISTRY.len())
        .prop_map(|i| TrafficMix::by_name(TrafficMix::REGISTRY[i]).expect("registered"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn soa_generation_matches_aos_stream(
        mix in any_mix(),
        n in 0usize..120,
        seed in 0u64..u64::MAX,
    ) {
        let aos = aos_generate(&mix, n, &mut StdRng::seed_from_u64(seed));
        let pop = mix.generate(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        assert_population_matches_aos(&pop, &aos);
    }

    #[test]
    fn soa_churn_step_matches_aos_stream(
        mix in any_mix(),
        n in 1usize..80,
        seed in 0u64..u64::MAX,
        departure_pct in 0u32..90,
        arrival_pct in 0u32..90,
        handover_pct in 0u32..90,
        epochs in 1usize..4,
    ) {
        let model = ChurnModel {
            epochs: epochs as u32,
            departure_rate: f64::from(departure_pct) / 100.0,
            arrival_rate: f64::from(arrival_pct) / 100.0,
            handover_rate: f64::from(handover_pct) / 100.0,
        };
        let mut soa_rng = StdRng::seed_from_u64(seed);
        let mut aos_rng = StdRng::seed_from_u64(seed);
        let mut pop = mix.generate(n, &mut soa_rng).unwrap();
        let mut aos = aos_generate(&mix, n, &mut aos_rng);
        let (mut soa_next, mut aos_next) = (n as u32, n as u32);
        for epoch in 0..epochs {
            let (evolved, _) = model.step(&mix, &pop, n, &mut soa_next, &mut soa_rng).unwrap();
            pop = evolved;
            aos = aos_churn_step(&model, &mix, &aos, n, &mut aos_next, &mut aos_rng);
            prop_assert_eq!(soa_next, aos_next, "id allocator, epoch {}", epoch);
            assert_population_matches_aos(&pop, &aos);
        }
    }

}

#[cfg(feature = "serde")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn soa_population_roundtrips_through_serde(
        mix in any_mix(),
        n in 0usize..60,
        seed in 0u64..u64::MAX,
        churned in 0u32..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pop = mix.generate(n, &mut rng).unwrap();
        if churned == 1 && n > 0 {
            // A churned population exercises the lazily-allocated id
            // column (arrivals diverge ids from row indices).
            let model = ChurnModel { epochs: 1, departure_rate: 0.3, arrival_rate: 0.3, handover_rate: 0.2 };
            let mut next_id = n as u32;
            pop = model.step(&mix, &pop, n, &mut next_id, &mut rng).unwrap().0;
        }
        let text = serde_json::to_string(&pop).expect("serializable");
        let back: Population = serde_json::from_str(&text).expect("parses");
        prop_assert_eq!(&back, &pop);
        // The roundtrip must also preserve the row view exactly.
        assert_population_matches_aos(&back, &pop.profiles());
    }
}

// ---- parallel vs serial set-cover index build ----

/// A frame-cover-shaped instance big enough to clear the kernel's serial
/// cutoff (> 2^14 index entries), so `threads > 1` really exercises the
/// parallel counting + scatter phases.
fn large_cover_instance(seed: u64) -> (usize, Vec<Vec<usize>>) {
    let universe = 3_000;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut sets: Vec<Vec<usize>> = (0..220)
        .map(|_| {
            let len = 60 + next() % 60;
            (0..len).map(|_| next() % universe).collect()
        })
        .collect();
    // One guaranteed-coverable tail so greedy always completes.
    sets.push((0..universe).collect());
    (universe, sets)
}

#[test]
fn index_build_threads_1_4_8_bit_identical_and_pick_identical() {
    for seed in [1u64, 7, 42] {
        let (universe, sets) = large_cover_instance(seed);
        let entries: usize = sets.iter().map(Vec::len).sum();
        assert!(entries > 1 << 14, "instance must clear the serial cutoff");
        let mut arena = KernelArena::new();
        let serial_stats = build_cover_index(universe, &sets, 1, &mut arena);
        let serial_picks = greedy_set_cover_with(universe, &sets, 1, &mut arena);
        assert!(serial_picks.is_some(), "instance is coverable");
        for threads in [4usize, 8] {
            let mut arena = KernelArena::new();
            let stats = build_cover_index(universe, &sets, threads, &mut arena);
            assert!(stats.workers > 1, "threads={threads} must fan out");
            assert_eq!(
                stats.checksum, serial_stats.checksum,
                "index checksum, threads={threads}, seed={seed}"
            );
            assert_eq!(
                greedy_set_cover_with(universe, &sets, threads, &mut arena),
                serial_picks,
                "picks, threads={threads}, seed={seed}"
            );
        }
        // The 1-thread arena path must also agree with the historical
        // public entry point.
        assert_eq!(greedy_set_cover(universe, &sets), serial_picks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn index_build_pick_identity_on_random_instances(
        sets in proptest::collection::vec(
            proptest::collection::vec(0usize..60, 0..15),
            1..40
        ),
    ) {
        // Small instances route through the serial cutoff; the contract —
        // identical stats checksum and identical picks for threads
        // {1, 4, 8} — must hold regardless of which path runs.
        let universe = 60;
        let mut arena = KernelArena::new();
        let baseline_stats = build_cover_index(universe, &sets, 1, &mut arena);
        let baseline_picks = greedy_set_cover_with(universe, &sets, 1, &mut arena);
        for threads in [4usize, 8] {
            let mut arena = KernelArena::new();
            let stats = build_cover_index(universe, &sets, threads, &mut arena);
            prop_assert_eq!(stats.checksum, baseline_stats.checksum);
            prop_assert_eq!(
                greedy_set_cover_with(universe, &sets, threads, &mut arena),
                baseline_picks.clone()
            );
        }
        prop_assert_eq!(greedy_set_cover(universe, &sets), baseline_picks);
    }
}

#[test]
fn thread_counts_beyond_runs_still_identical() {
    // More workers than runs: the fan-out clamps and stays correct.
    let cfg = ExperimentConfig {
        runs: 3,
        threads: 64,
        ..base_config()
    };
    let wide = run_comparison(&cfg, &[MechanismKind::DaSc]).unwrap();
    let narrow = run_comparison(
        &ExperimentConfig {
            threads: 1,
            ..cfg.clone()
        },
        &[MechanismKind::DaSc],
    )
    .unwrap();
    assert_eq!(wide, narrow);
}
