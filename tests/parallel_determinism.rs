//! The parallel experiment harness must be a pure wall-clock optimization:
//! every `ComparisonResult`/`SweepPoint` field bit-identical for every
//! thread count, and errors surfaced identically.

use nbiot_multicast::prelude::*;
use nbiot_sim::sweep_devices;

fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        n_devices: 30,
        runs: 8,
        ..ExperimentConfig::default()
    }
}

#[test]
fn comparison_threads_1_vs_8_bit_identical() {
    let serial = run_comparison(&base_config(), &MechanismKind::ALL).unwrap();
    let parallel = run_comparison(
        &ExperimentConfig {
            threads: 8,
            ..base_config()
        },
        &MechanismKind::ALL,
    )
    .unwrap();
    // PartialEq over ComparisonResult covers every Summary field (n, mean,
    // std_dev, ci95, min, max) of every metric of every mechanism.
    assert_eq!(serial, parallel);
}

#[test]
fn comparison_auto_threads_bit_identical() {
    let serial = run_comparison(&base_config(), &MechanismKind::PAPER_MECHANISMS).unwrap();
    let auto = run_comparison(
        &ExperimentConfig {
            threads: 0,
            ..base_config()
        },
        &MechanismKind::PAPER_MECHANISMS,
    )
    .unwrap();
    assert_eq!(serial, auto);
}

#[test]
fn sweep_threads_1_vs_8_bit_identical() {
    let cfg = base_config();
    let serial = sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20, 35]).unwrap();
    let parallel = sweep_devices(
        &ExperimentConfig { threads: 8, ..cfg },
        MechanismKind::DrSc,
        &[10, 20, 35],
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn thread_counts_beyond_runs_still_identical() {
    // More workers than runs: the fan-out clamps and stays correct.
    let cfg = ExperimentConfig {
        runs: 3,
        threads: 64,
        ..base_config()
    };
    let wide = run_comparison(&cfg, &[MechanismKind::DaSc]).unwrap();
    let narrow = run_comparison(
        &ExperimentConfig {
            threads: 1,
            ..cfg.clone()
        },
        &[MechanismKind::DaSc],
    )
    .unwrap();
    assert_eq!(wide, narrow);
}
