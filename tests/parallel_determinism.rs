//! The parallel experiment harness must be a pure wall-clock optimization:
//! every `ComparisonResult`/`SweepPoint` field bit-identical for every
//! thread count, and errors surfaced identically.

use nbiot_multicast::prelude::*;
use nbiot_sim::sweep_devices;

fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        n_devices: 30,
        runs: 8,
        ..ExperimentConfig::default()
    }
}

#[test]
fn comparison_threads_1_vs_8_bit_identical() {
    let serial = run_comparison(&base_config(), &MechanismKind::ALL).unwrap();
    let parallel = run_comparison(
        &ExperimentConfig {
            threads: 8,
            ..base_config()
        },
        &MechanismKind::ALL,
    )
    .unwrap();
    // PartialEq over ComparisonResult covers every Summary field (n, mean,
    // std_dev, ci95, min, max) of every metric of every mechanism.
    assert_eq!(serial, parallel);
}

#[test]
fn comparison_auto_threads_bit_identical() {
    let serial = run_comparison(&base_config(), &MechanismKind::PAPER_MECHANISMS).unwrap();
    let auto = run_comparison(
        &ExperimentConfig {
            threads: 0,
            ..base_config()
        },
        &MechanismKind::PAPER_MECHANISMS,
    )
    .unwrap();
    assert_eq!(serial, auto);
}

#[test]
fn sweep_threads_1_vs_8_bit_identical() {
    let cfg = base_config();
    let serial = sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20, 35]).unwrap();
    let parallel = sweep_devices(
        &ExperimentConfig { threads: 8, ..cfg },
        MechanismKind::DrSc,
        &[10, 20, 35],
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

fn small_scenario() -> Scenario {
    let mut s = Scenario::builtin("fig6b").expect("registered");
    s.devices = vec![15, 30];
    s.runs = 4;
    s.threads = 1;
    s
}

#[test]
fn scenario_grid_threads_1_vs_8_bit_identical() {
    // The tentpole acceptance bar: a full multi-point, multi-payload
    // scenario grid — the thread pool spans every (point × run) pair —
    // must be bit-identical between serial and parallel execution.
    // PartialEq over ScenarioResult covers every Summary field of every
    // mechanism of every grid point.
    let serial = run_scenario(&small_scenario()).unwrap();
    let mut parallel_scenario = small_scenario();
    parallel_scenario.threads = 8;
    let parallel = run_scenario(&parallel_scenario).unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn full_device_sweep_scenario_threads_bit_identical() {
    let mut sweep = Scenario::builtin("fig7").expect("registered");
    sweep.devices = vec![10, 20, 35];
    sweep.runs = 5;
    sweep.threads = 1;
    let serial = run_scenario(&sweep).unwrap();
    for threads in [8, 0] {
        sweep.threads = threads;
        assert_eq!(run_scenario(&sweep).unwrap(), serial, "threads={threads}");
    }
}

#[test]
fn shared_populations_match_per_payload_regeneration() {
    // Within a scenario, each run's population and every mechanism's plan
    // are generated once and shared across the payload columns; a
    // dedicated run_comparison per payload regenerates everything. Both
    // paths must agree bit-for-bit.
    let scenario = small_scenario();
    let result = run_scenario(&scenario).unwrap();
    for &n_devices in &scenario.devices {
        for &payload in &scenario.payloads {
            let mut config = ExperimentConfig {
                n_devices,
                runs: scenario.runs,
                master_seed: scenario.master_seed,
                ..ExperimentConfig::default()
            };
            config.sim = config.sim.with_payload(payload);
            let dedicated = run_comparison(&config, &MechanismKind::PAPER_MECHANISMS).unwrap();
            let point = result
                .points
                .iter()
                .find(|p| p.n_devices == n_devices && p.payload == payload)
                .expect("grid point");
            assert_eq!(
                point.comparison, dedicated,
                "{n_devices} devices, {payload}"
            );
        }
    }
}

fn churned_scenario() -> Scenario {
    let mut s = Scenario::builtin("mobility-churn").expect("registered");
    s.devices = vec![20, 35];
    s.runs = 4;
    s.threads = 1;
    s
}

#[test]
fn churned_scenario_threads_1_vs_8_bit_identical() {
    // The churn acceptance bar: population evolution, staleness counting
    // and re-planning all live inside the (point × run) item, so a
    // churned grid must stay bit-identical for every thread count —
    // including the new regroup_count / stale_miss_ratio summaries.
    let serial = run_scenario(&churned_scenario()).unwrap();
    let churned = serial
        .points
        .iter()
        .flat_map(|p| &p.comparison.mechanisms)
        .any(|m| m.regroup_count.mean > 0.0 || m.stale_miss_ratio.mean > 0.0);
    assert!(churned, "the churned workload must actually churn");
    for threads in [8, 0] {
        let mut parallel = churned_scenario();
        parallel.threads = threads;
        assert_eq!(
            run_scenario(&parallel).unwrap(),
            serial,
            "threads={threads}"
        );
    }
}

#[test]
fn handover_storm_threads_bit_identical() {
    let mut s = Scenario::builtin("handover-storm").expect("registered");
    s.devices = vec![25];
    s.runs = 4;
    s.threads = 1;
    let serial = run_scenario(&s).unwrap();
    s.threads = 8;
    assert_eq!(run_scenario(&s).unwrap(), serial);
    // Every-epoch policy under a 30% handover storm: every mechanism
    // re-plans every epoch and nothing is ever missed.
    for m in serial.points.iter().flat_map(|p| &p.comparison.mechanisms) {
        assert_eq!(m.regroup_count.mean, 4.0, "{}", m.mechanism);
        assert_eq!(m.stale_miss_ratio.mean, 0.0, "{}", m.mechanism);
    }
}

#[test]
fn thread_counts_beyond_runs_still_identical() {
    // More workers than runs: the fan-out clamps and stays correct.
    let cfg = ExperimentConfig {
        runs: 3,
        threads: 64,
        ..base_config()
    };
    let wide = run_comparison(&cfg, &[MechanismKind::DaSc]).unwrap();
    let narrow = run_comparison(
        &ExperimentConfig {
            threads: 1,
            ..cfg.clone()
        },
        &[MechanismKind::DaSc],
    )
    .unwrap();
    assert_eq!(wide, narrow);
}
