//! # nbiot-multicast
//!
//! A Rust reproduction of **"On Device Grouping for Efficient Multicast
//! Communications in Narrowband-IoT"** (Tsoukaneri & Marina, IEEE ICDCS
//! 2018): three mechanisms for grouping and synchronizing NB-IoT devices so
//! that a firmware-sized payload can be multicast to thousands of sleeping
//! devices, together with the full substrate needed to evaluate them — 3GPP
//! paging timing, an NB-IoT downlink model, RRC procedures, an energy
//! ledger, a massive-IoT traffic model and a deterministic discrete-event
//! simulator.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates so that applications can depend on one crate.
//!
//! | Concern | Crate |
//! |---------|-------|
//! | subframe clock, (e)DRX cycles, TS 36.304 paging occasions | [`time`] (`nbiot-time`) |
//! | event queue, seeded RNG streams, statistics | [`des`] (`nbiot-des`) |
//! | TBS tables, transfer durations, bandwidth ledger | [`phy`] (`nbiot-phy`) |
//! | paging messages, random access, RRC connections | [`rrc`] (`nbiot-rrc`) |
//! | power states, uptime ledgers, relative metrics | [`energy`] (`nbiot-energy`) |
//! | device classes, population generation | [`traffic`] (`nbiot-traffic`) |
//! | **the paper's mechanisms: DR-SC, DA-SC, DR-SI (+ baselines)** | [`grouping`] (`nbiot-grouping`) |
//! | campaign/experiment execution | [`sim`] (`nbiot-sim`) |
//! | event-driven grouping service: replayable logs, snapshots | [`service`] (`nbiot-service`, with the `serde` feature) |
//!
//! # Quickstart
//!
//! ```
//! use nbiot_multicast::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. A city-scale NB-IoT population.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let population = TrafficMix::ericsson_city().generate(100, &mut rng)?;
//!
//! // 2. The grouping problem: deliver one payload to all of them.
//! let input = GroupingInput::from_population(&population, GroupingParams::default())?;
//!
//! // 3. Plan with the paper's recommended mechanism (DA-SC) and simulate.
//! let result = run_campaign(&DaSc::new(), &input, &SimConfig::default(), &mut rng)?;
//! assert_eq!(result.transmission_count, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nbiot_des as des;
pub use nbiot_energy as energy;
pub use nbiot_grouping as grouping;
pub use nbiot_phy as phy;
pub use nbiot_rrc as rrc;
#[cfg(feature = "serde")]
pub use nbiot_service as service;
pub use nbiot_sim as sim;
pub use nbiot_time as time;
pub use nbiot_traffic as traffic;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use nbiot_des::{EventQueue, RunningStats, SeedSequence, Summary};
    pub use nbiot_energy::{PowerProfile, PowerState, RelativeUptime, UptimeLedger};
    pub use nbiot_grouping::{
        recommend, AdaptationGrid, DaSc, DrSc, DrSi, GroupingError, GroupingInput,
        GroupingMechanism, GroupingParams, MechanismKind, MulticastPlan, NotifyPolicy,
        Recommendation, ScPtm, SelectionPolicy, Unicast,
    };
    pub use nbiot_phy::{BandwidthLedger, CoverageClass, DataSize, NpdschConfig, TrafficCategory};
    pub use nbiot_rrc::{
        DrxPhase, DrxStateMachine, EstablishmentCause, InactivityTimer, PagingMessage,
        RandomAccess, RandomAccessConfig, SignallingCosts,
    };
    #[cfg(feature = "serde")]
    pub use nbiot_service::{
        EventLog, EventRecord, GroupingService, ServeSummary, ServiceConfig, ServiceError,
        ServiceEvent, ServiceSnapshot,
    };
    pub use nbiot_sim::{
        run_campaign, run_comparison, run_scenario, sweep_devices, CampaignResult,
        ComparisonResult, ExperimentConfig, PointResult, RegroupPolicy, Scenario, ScenarioResult,
        SimConfig, SimError,
    };
    pub use nbiot_time::{
        CycleLadder, DrxCycle, EdrxCycle, PagingConfig, PagingCycle, PagingSchedule, SimDuration,
        SimInstant, TimeWindow, UeId,
    };
    pub use nbiot_traffic::{
        ChurnEvents, ChurnModel, ClassSpec, DeviceId, DeviceProfile, Population, TrafficMix,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let _ = SimInstant::ZERO;
        let _ = MechanismKind::ALL;
        let _ = SimConfig::default();
    }
}
