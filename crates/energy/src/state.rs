//! Device power states.

use core::fmt;

/// The power state of an NB-IoT device at a point in time.
///
/// The split of the connected state into *waiting* and *receiving*
/// preserves the paper's observation that synchronization overhead
/// (waiting for the multicast to start, on average `TI/2`) shrinks relative
/// to reception time as the payload grows (Fig. 6(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PowerState {
    /// RF and TX modules off; only the sleep clock runs.
    DeepSleep,
    /// Light sleep: RF briefly on to monitor a paging occasion or decode a
    /// paging message.
    LightSleep,
    /// Connected (or performing random access) but not actively receiving
    /// payload — e.g. waiting for the multicast transmission to begin.
    ConnectedWaiting,
    /// Connected and receiving payload data.
    ConnectedReceiving,
}

impl PowerState {
    /// All states, lowest power first.
    pub const ALL: [PowerState; 4] = [
        PowerState::DeepSleep,
        PowerState::LightSleep,
        PowerState::ConnectedWaiting,
        PowerState::ConnectedReceiving,
    ];

    /// Whether the state counts towards connected-mode uptime.
    #[inline]
    pub const fn is_connected(self) -> bool {
        matches!(
            self,
            PowerState::ConnectedWaiting | PowerState::ConnectedReceiving
        )
    }

    pub(crate) const fn slot(self) -> usize {
        match self {
            PowerState::DeepSleep => 0,
            PowerState::LightSleep => 1,
            PowerState::ConnectedWaiting => 2,
            PowerState::ConnectedReceiving => 3,
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PowerState::DeepSleep => "deep-sleep",
            PowerState::LightSleep => "light-sleep",
            PowerState::ConnectedWaiting => "connected-waiting",
            PowerState::ConnectedReceiving => "connected-receiving",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectedness() {
        assert!(!PowerState::DeepSleep.is_connected());
        assert!(!PowerState::LightSleep.is_connected());
        assert!(PowerState::ConnectedWaiting.is_connected());
        assert!(PowerState::ConnectedReceiving.is_connected());
    }

    #[test]
    fn slots_are_distinct() {
        let mut seen = [false; 4];
        for s in PowerState::ALL {
            assert!(!seen[s.slot()]);
            seen[s.slot()] = true;
        }
    }
}
