//! Relative-increase metrics (the Fig. 6 y-axis).

use core::fmt;

use nbiot_time::SimDuration;

use crate::UptimeLedger;

/// Relative increase of `value` over `baseline`, as a fraction
/// (`0.10` = +10 %).
///
/// Returns 0 when the baseline is zero and the value is zero too; when the
/// baseline is zero but the value is not, returns `f64::INFINITY`.
///
/// # Example
///
/// ```
/// use nbiot_energy::relative_increase;
/// use nbiot_time::SimDuration;
///
/// let inc = relative_increase(SimDuration::from_ms(110), SimDuration::from_ms(100));
/// assert!((inc - 0.10).abs() < 1e-12);
/// ```
pub fn relative_increase(value: SimDuration, baseline: SimDuration) -> f64 {
    if baseline.is_zero() {
        if value.is_zero() {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (value.as_ms() as f64 - baseline.as_ms() as f64) / baseline.as_ms() as f64
    }
}

/// The per-device Fig. 6 metric pair: relative uptime increase over the
/// unicast baseline, in light-sleep and connected mode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelativeUptime {
    /// Relative light-sleep uptime increase (Fig. 6(a)).
    pub light_sleep: f64,
    /// Relative connected-mode uptime increase (Fig. 6(b)).
    pub connected: f64,
}

impl RelativeUptime {
    /// Computes the relative increase of `mechanism` over `baseline`.
    pub fn between(mechanism: &UptimeLedger, baseline: &UptimeLedger) -> RelativeUptime {
        RelativeUptime {
            light_sleep: relative_increase(mechanism.light_sleep(), baseline.light_sleep()),
            connected: relative_increase(mechanism.connected(), baseline.connected()),
        }
    }
}

impl fmt::Display for RelativeUptime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "light-sleep {:+.2}%, connected {:+.2}%",
            self.light_sleep * 100.0,
            self.connected * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerState;

    #[test]
    fn zero_baseline_cases() {
        assert_eq!(relative_increase(SimDuration::ZERO, SimDuration::ZERO), 0.0);
        assert_eq!(
            relative_increase(SimDuration::from_ms(1), SimDuration::ZERO),
            f64::INFINITY
        );
    }

    #[test]
    fn decrease_is_negative() {
        let inc = relative_increase(SimDuration::from_ms(80), SimDuration::from_ms(100));
        assert!((inc + 0.2).abs() < 1e-12);
    }

    #[test]
    fn between_ledgers() {
        let mut base = UptimeLedger::new();
        base.accumulate(PowerState::LightSleep, SimDuration::from_ms(100));
        base.accumulate(PowerState::ConnectedReceiving, SimDuration::from_ms(1000));
        let mut mech = UptimeLedger::new();
        mech.accumulate(PowerState::LightSleep, SimDuration::from_ms(100));
        mech.accumulate(PowerState::ConnectedReceiving, SimDuration::from_ms(1000));
        mech.accumulate(PowerState::ConnectedWaiting, SimDuration::from_ms(500));
        let rel = RelativeUptime::between(&mech, &base);
        assert_eq!(rel.light_sleep, 0.0); // DR-SC-like: identical light sleep
        assert!((rel.connected - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats_percentages() {
        let r = RelativeUptime {
            light_sleep: 0.015,
            connected: 0.30,
        };
        let text = r.to_string();
        assert!(text.contains("+1.50%"));
        assert!(text.contains("+30.00%"));
    }
}
