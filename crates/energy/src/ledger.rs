//! Per-device uptime ledger.

use core::fmt;

use nbiot_time::SimDuration;

use crate::PowerState;

/// Accumulated time per power state for one device, plus event counters.
///
/// The simulator writes one ledger per device per campaign; Fig. 6 compares
/// ledgers of the same device population under different grouping
/// mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UptimeLedger {
    ms: [u64; 4],
    /// Number of paging occasions monitored.
    pub pos_monitored: u64,
    /// Number of paging messages decoded.
    pub pagings_received: u64,
    /// Number of random-access procedures performed.
    pub random_accesses: u64,
}

impl UptimeLedger {
    /// Creates an empty ledger.
    pub fn new() -> UptimeLedger {
        UptimeLedger::default()
    }

    /// Adds `d` of time spent in `state`.
    pub fn accumulate(&mut self, state: PowerState, d: SimDuration) {
        self.ms[state.slot()] += d.as_ms();
    }

    /// Time spent in one state.
    pub fn time_in(&self, state: PowerState) -> SimDuration {
        SimDuration::from_ms(self.ms[state.slot()])
    }

    /// Light-sleep uptime: PO monitoring plus paging decoding
    /// (Fig. 6(a) metric).
    pub fn light_sleep(&self) -> SimDuration {
        self.time_in(PowerState::LightSleep)
    }

    /// Connected-mode uptime: random access + waiting + receiving
    /// (Fig. 6(b) metric).
    pub fn connected(&self) -> SimDuration {
        self.time_in(PowerState::ConnectedWaiting) + self.time_in(PowerState::ConnectedReceiving)
    }

    /// Total uptime (everything except deep sleep).
    pub fn total_uptime(&self) -> SimDuration {
        self.light_sleep() + self.connected()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &UptimeLedger) {
        for (a, b) in self.ms.iter_mut().zip(other.ms.iter()) {
            *a += b;
        }
        self.pos_monitored += other.pos_monitored;
        self.pagings_received += other.pagings_received;
        self.random_accesses += other.random_accesses;
    }
}

impl fmt::Display for UptimeLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "light-sleep {}, connected {} (wait {}, rx {}), {} POs, {} pagings, {} RAs",
            self.light_sleep(),
            self.connected(),
            self.time_in(PowerState::ConnectedWaiting),
            self.time_in(PowerState::ConnectedReceiving),
            self.pos_monitored,
            self.pagings_received,
            self.random_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_by_state() {
        let mut l = UptimeLedger::new();
        l.accumulate(PowerState::LightSleep, SimDuration::from_ms(4));
        l.accumulate(PowerState::LightSleep, SimDuration::from_ms(4));
        l.accumulate(PowerState::ConnectedWaiting, SimDuration::from_ms(100));
        l.accumulate(PowerState::ConnectedReceiving, SimDuration::from_ms(300));
        assert_eq!(l.light_sleep().as_ms(), 8);
        assert_eq!(l.connected().as_ms(), 400);
        assert_eq!(l.total_uptime().as_ms(), 408);
        assert_eq!(l.time_in(PowerState::DeepSleep).as_ms(), 0);
    }

    #[test]
    fn deep_sleep_not_in_uptime() {
        let mut l = UptimeLedger::new();
        l.accumulate(PowerState::DeepSleep, SimDuration::from_secs(1000));
        assert_eq!(l.total_uptime(), SimDuration::ZERO);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = UptimeLedger::new();
        a.accumulate(PowerState::LightSleep, SimDuration::from_ms(1));
        a.pos_monitored = 3;
        let mut b = UptimeLedger::new();
        b.accumulate(PowerState::LightSleep, SimDuration::from_ms(2));
        b.pos_monitored = 4;
        b.random_accesses = 1;
        a.merge(&b);
        assert_eq!(a.light_sleep().as_ms(), 3);
        assert_eq!(a.pos_monitored, 7);
        assert_eq!(a.random_accesses, 1);
    }

    #[test]
    fn display_mentions_counters() {
        let mut l = UptimeLedger::new();
        l.pagings_received = 2;
        assert!(l.to_string().contains("2 pagings"));
    }
}
