//! Power model: uptime to Joules.

use core::fmt;

use crate::{PowerState, UptimeLedger};

/// Average power draw per state, in milliwatts.
///
/// The paper deliberately avoids absolute energy numbers ("specific energy
/// consumption values are hard to estimate, as they are device specific");
/// this profile exists for completeness and ablations, with defaults in the
/// range of published NB-IoT module measurements: µW-scale deep sleep,
/// mW-scale idle monitoring, and an order of magnitude more when connected
/// (the ×10 relation the paper cites between light sleep and connected
/// mode).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerProfile {
    /// Deep-sleep draw (mW).
    pub deep_sleep_mw: f64,
    /// Light-sleep / PO-monitoring draw (mW).
    pub light_sleep_mw: f64,
    /// Connected, idle/waiting draw (mW).
    pub connected_waiting_mw: f64,
    /// Connected, actively receiving draw (mW).
    pub connected_receiving_mw: f64,
}

impl Default for PowerProfile {
    fn default() -> Self {
        PowerProfile {
            deep_sleep_mw: 0.015,
            light_sleep_mw: 21.0,
            connected_waiting_mw: 210.0,
            connected_receiving_mw: 240.0,
        }
    }
}

impl PowerProfile {
    /// Power draw in `state`, in milliwatts.
    pub fn draw_mw(&self, state: PowerState) -> f64 {
        match state {
            PowerState::DeepSleep => self.deep_sleep_mw,
            PowerState::LightSleep => self.light_sleep_mw,
            PowerState::ConnectedWaiting => self.connected_waiting_mw,
            PowerState::ConnectedReceiving => self.connected_receiving_mw,
        }
    }

    /// Energy consumed by a ledger, in millijoules.
    ///
    /// Only the states recorded in the ledger contribute; deep-sleep time
    /// must have been recorded explicitly to be counted.
    pub fn energy_mj(&self, ledger: &UptimeLedger) -> f64 {
        PowerState::ALL
            .iter()
            .map(|&s| self.draw_mw(s) * ledger.time_in(s).as_secs_f64())
            .sum()
    }
}

impl fmt::Display for PowerProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deep {}mW, light {}mW, wait {}mW, rx {}mW",
            self.deep_sleep_mw,
            self.light_sleep_mw,
            self.connected_waiting_mw,
            self.connected_receiving_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_time::SimDuration;

    #[test]
    fn connected_draw_is_order_of_magnitude_above_light_sleep() {
        // The relation the paper cites from the Nokia 3GPP contributions.
        let p = PowerProfile::default();
        assert!(p.connected_waiting_mw >= 9.0 * p.light_sleep_mw);
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let p = PowerProfile {
            deep_sleep_mw: 0.0,
            light_sleep_mw: 10.0,
            connected_waiting_mw: 100.0,
            connected_receiving_mw: 200.0,
        };
        let mut l = UptimeLedger::new();
        l.accumulate(PowerState::LightSleep, SimDuration::from_secs(2));
        l.accumulate(PowerState::ConnectedReceiving, SimDuration::from_secs(1));
        // 10 mW * 2 s + 200 mW * 1 s = 220 mJ.
        assert!((p.energy_mj(&l) - 220.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_consumes_nothing() {
        assert_eq!(PowerProfile::default().energy_mj(&UptimeLedger::new()), 0.0);
    }
}
