//! Device uptime and energy accounting.
//!
//! The paper's energy metric (Sec. IV-A) is *relative uptime increase over
//! unicast*, split into:
//!
//! * **light-sleep uptime** — time spent monitoring paging occasions and
//!   decoding paging messages, and
//! * **connected-mode uptime** — random access, waiting for the multicast
//!   transmission to begin, and receiving data (an order of magnitude more
//!   power-hungry than light sleep, per the Nokia 3GPP contributions the
//!   paper cites).
//!
//! [`UptimeLedger`] accumulates per-device time in each [`PowerState`];
//! [`PowerProfile`] optionally converts a ledger into Joules;
//! [`relative_increase`] computes the Fig. 6 metric.
//!
//! # Example
//!
//! ```
//! use nbiot_energy::{PowerState, UptimeLedger};
//! use nbiot_time::SimDuration;
//!
//! let mut ledger = UptimeLedger::new();
//! ledger.accumulate(PowerState::LightSleep, SimDuration::from_ms(40));
//! ledger.accumulate(PowerState::ConnectedWaiting, SimDuration::from_secs(10));
//! ledger.accumulate(PowerState::ConnectedReceiving, SimDuration::from_secs(9));
//! assert_eq!(ledger.connected().as_secs_f64(), 19.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ledger;
mod model;
mod relative;
mod state;

pub use ledger::UptimeLedger;
pub use model::PowerProfile;
pub use relative::{relative_increase, RelativeUptime};
pub use state::PowerState;
