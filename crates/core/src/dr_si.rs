//! DR-SI: DRX Respecting, Standards Incompliant (paper Sec. III-C).

use rand::{Rng, RngCore};

use nbiot_time::{SimInstant, TimeWindow};

use crate::{
    DevicePlan, GroupingError, GroupingInput, GroupingMechanism, MltcDirective, MulticastPlan,
    PageDirective, Transmission,
};

/// At which of its paging occasions a device is notified in advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NotifyPolicy {
    /// Notify at the device's last natural PO before `t − TI` — the timer
    /// is held armed for the shortest possible time. Default.
    #[default]
    LastBeforeWindow,
    /// Notify at the device's first natural PO after the content arrives —
    /// the earliest opportunity (ablation).
    FirstAfterStart,
}

/// The DR-SI mechanism: devices keep their DRX cycles (like DR-SC) and one
/// transmission suffices (like DA-SC), at the price of a protocol change.
///
/// The eNB sends an *extended* paging message carrying the non-critical
/// `mltc-transmission` extension — the device identity plus the time
/// remaining until the multicast instant `t`. The identity appears only in
/// the extension, not in the `PagingRecordList`, so the device knows it
/// does **not** need to connect now. It draws a uniformly random instant in
/// `[t − TI, t)`, arms timer T322, and at expiry connects with the
/// (non-standard) establishment cause `multicastReception` to receive the
/// data. Devices that happen to have a natural PO inside `[t − TI, t)` are
/// simply paged there with an ordinary record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrSi {
    /// When the advance notification is delivered.
    pub notify: NotifyPolicy,
}

impl DrSi {
    /// Creates the mechanism with the default notification policy.
    pub fn new() -> DrSi {
        DrSi::default()
    }

    /// Creates the mechanism with an explicit notification policy.
    pub fn with_policy(notify: NotifyPolicy) -> DrSi {
        DrSi { notify }
    }
}

impl GroupingMechanism for DrSi {
    fn name(&self) -> String {
        "DR-SI".to_string()
    }

    fn is_standards_compliant(&self) -> bool {
        false
    }

    fn plan(
        &self,
        input: &GroupingInput,
        rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let params = input.params();
        let t = input.transmission_time()?;
        let ti = params.ti.duration();
        // Clamp at the campaign start (see DaSc): TI can exceed 2 * maxDRX
        // for short-cycle groups.
        let window = TimeWindow::new(t.saturating_sub(ti).max(params.start), t);

        let mut device_plans = Vec::with_capacity(input.len());
        let mut any_mltc = false;
        for (&id, sched) in input.ids().iter().zip(input.schedules()) {
            if sched.has_po_in(window) {
                // Natural PO inside the window: ordinary page, no extension.
                let po = sched.first_po_at_or_after(window.start());
                device_plans.push(DevicePlan {
                    device: id,
                    page: Some(PageDirective { po }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(po),
                    receives_at: t,
                });
                continue;
            }
            let po = match self.notify {
                NotifyPolicy::LastBeforeWindow => sched
                    .last_po_before(window.start())
                    .filter(|&po| po >= params.start),
                NotifyPolicy::FirstAfterStart => {
                    let po = sched.first_po_at_or_after(params.start);
                    (po < window.start()).then_some(po)
                }
            }
            .ok_or(GroupingError::NoUsablePo { device: id, t })?;
            let wake_at =
                SimInstant::from_ms(rng.gen_range(window.start().as_ms()..window.end().as_ms()));
            any_mltc = true;
            device_plans.push(DevicePlan {
                device: id,
                page: None,
                mltc: Some(MltcDirective {
                    po,
                    wake_at,
                    time_remaining: t - po,
                }),
                adaptation: None,
                connect_at: Some(wake_at),
                receives_at: t,
            });
        }

        let recipients = device_plans.iter().map(|p| p.device).collect();
        Ok(MulticastPlan {
            mechanism: self.name(),
            // The flag reflects the signalling actually used: a group whose
            // POs all fall inside the window needs no extension.
            standards_compliant: !any_mltc,
            requires_connection: true,
            transmissions: vec![Transmission { at: t, recipients }],
            device_plans,
            horizon: TimeWindow::new(params.start, t),
            control_monitoring: None,
            improvement: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_time::{EdrxCycle, PagingCycle, SimDuration};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(mix: TrafficMix, n: usize, seed: u64) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrSi::new().plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn single_transmission_and_valid() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 120, 1);
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
        assert!(!plan.standards_compliant);
    }

    #[test]
    fn wake_times_are_inside_window() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 200, 2);
        let t = input.transmission_time().unwrap();
        let w = TimeWindow::new(t - input.params().ti.duration(), t);
        for dp in &plan.device_plans {
            if let Some(m) = dp.mltc {
                assert!(w.contains(m.wake_at), "{} outside {w}", m.wake_at);
                assert!(m.po < w.start());
                assert_eq!(m.time_remaining, t - m.po);
            }
        }
    }

    #[test]
    fn wake_times_are_spread() {
        // The uniform draw should not collapse to a single instant
        // (that is the whole point: avoiding a RACH stampede at t - TI).
        let (_, plan) = plan_for(TrafficMix::ericsson_city(), 200, 3);
        let wakes: std::collections::HashSet<u64> = plan
            .device_plans
            .iter()
            .filter_map(|p| p.mltc.map(|m| m.wake_at.as_ms()))
            .collect();
        assert!(
            wakes.len() > 100,
            "only {} distinct wake times",
            wakes.len()
        );
    }

    #[test]
    fn devices_with_po_in_window_get_ordinary_page() {
        let (input, plan) = plan_for(TrafficMix::short_drx(), 40, 4);
        // Short cycles: every device has a PO in [t - TI, t).
        plan.validate(&input).unwrap();
        assert!(plan.device_plans.iter().all(|p| p.mltc.is_none()));
        // No extension used -> the emitted plan is de facto compliant.
        assert!(plan.standards_compliant);
    }

    #[test]
    fn first_after_start_policy_notifies_early() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf256))
            .generate(50, &mut rng)
            .unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let early = DrSi::with_policy(NotifyPolicy::FirstAfterStart)
            .plan(&input, &mut rng)
            .unwrap();
        let late = DrSi::with_policy(NotifyPolicy::LastBeforeWindow)
            .plan(&input, &mut rng)
            .unwrap();
        early.validate(&input).unwrap();
        late.validate(&input).unwrap();
        for (e, l) in early.device_plans.iter().zip(&late.device_plans) {
            if let (Some(me), Some(ml)) = (e.mltc, l.mltc) {
                assert!(me.po <= ml.po);
            }
        }
    }

    #[test]
    fn rng_changes_wakes_but_not_structure() {
        let mut rng_a = StdRng::seed_from_u64(100);
        let mut rng_b = StdRng::seed_from_u64(200);
        let pop = TrafficMix::ericsson_city()
            .generate(80, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let a = DrSi::new().plan(&input, &mut rng_a).unwrap();
        let b = DrSi::new().plan(&input, &mut rng_b).unwrap();
        assert_eq!(a.transmissions, b.transmissions);
        let structural = |p: &MulticastPlan| -> Vec<Option<SimInstant>> {
            p.device_plans
                .iter()
                .map(|d| d.mltc.map(|m| m.po))
                .collect()
        };
        assert_eq!(structural(&a), structural(&b));
        assert_ne!(a.device_plans, b.device_plans); // wake draws differ
    }

    #[test]
    fn mean_wait_is_about_half_ti() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 400, 7);
        let ti = input.params().ti.duration();
        let wait = plan.mean_wait();
        // Paper: devices wait TI/2 on average for the multicast to start.
        assert!(
            wait > ti / 3 && wait < ti * 2 / 3,
            "mean wait {wait} vs TI {ti}"
        );
    }

    #[test]
    fn respects_ti_override() {
        let mut rng = StdRng::seed_from_u64(8);
        let pop = TrafficMix::ericsson_city().generate(60, &mut rng).unwrap();
        let params = GroupingParams {
            ti: nbiot_rrc::InactivityTimer::new(SimDuration::from_secs(30)),
            ..GroupingParams::default()
        };
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let plan = DrSi::new().plan(&input, &mut rng).unwrap();
        plan.validate(&input).unwrap();
    }
}
