//! DA-SC: DRX Adjusting, Standards Compliant (paper Sec. III-B).
//!
//! Unlike DR-SC, DA-SC needs no set cover: it fixes a single transmission
//! instant and walks the standard cycle ladder per device instead (the
//! per-mechanism cost comparison lives in `docs/ARCHITECTURE.md`).

use rand::RngCore;

use nbiot_time::{CycleLadder, PagingConfig, PagingSchedule, SimDuration, SimInstant, TimeWindow};

use crate::{
    AdaptationDirective, DevicePlan, GroupingError, GroupingInput, GroupingMechanism,
    MulticastPlan, PageDirective, Transmission,
};

/// How the adapted DRX grid is phased after the reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AdaptationGrid {
    /// The new cycle is anchored at the adaptation PO: subsequent POs fall
    /// at `page_po + k·newCycle`. This matches the paper's Fig. 5
    /// illustration and is the default.
    #[default]
    AnchoredAtAdaptation,
    /// The new cycle follows the standard TS 36.304 PF/PO formula with the
    /// new `T` (phase derived from the UE identity) — the behaviour of an
    /// unmodified stack. Exposed as an ablation.
    StandardFormula,
}

/// The DA-SC mechanism: pick a single transmission instant
/// `t = start + 2·maxDRX` (so every device has at least one PO before `t`)
/// and, for every device without a natural PO in `[t − TI, t)`, shrink its
/// DRX cycle at its *last natural PO before `t − TI`* to the **largest**
/// standard cycle that lands a PO inside the window. After the multicast
/// the original cycle is restored with a second reconfiguration.
///
/// One transmission, standards-compliant, at the cost of extra paging
/// occasions and one extra connection (page → random access →
/// reconfiguration → immediate release) per adapted device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaSc {
    /// Adapted-grid phasing (paper illustration vs standard formula).
    pub grid: AdaptationGrid,
}

impl DaSc {
    /// Creates the mechanism with the paper's anchored grid.
    pub fn new() -> DaSc {
        DaSc::default()
    }

    /// Creates the mechanism with an explicit grid mode.
    pub fn with_grid(grid: AdaptationGrid) -> DaSc {
        DaSc { grid }
    }

    /// Finds the adaptation for one device: the largest standard cycle
    /// shorter than the device's own that creates a PO inside `window`
    /// when applied at `page_po`.
    fn adapt(
        &self,
        device_cycle_frames: u64,
        schedule: &PagingSchedule,
        ue: nbiot_time::UeId,
        nb: nbiot_time::NbParam,
        page_po: SimInstant,
        window: TimeWindow,
    ) -> Option<(nbiot_time::PagingCycle, SimInstant, u64)> {
        let _ = schedule;
        for cycle in CycleLadder::cycles().rev() {
            if cycle.period_frames() >= device_cycle_frames {
                continue;
            }
            match self.grid {
                AdaptationGrid::AnchoredAtAdaptation => {
                    let c = cycle.period().as_ms();
                    let gap = window.start().as_ms().saturating_sub(page_po.as_ms());
                    let k = gap.div_ceil(c).max(1);
                    let landing = SimInstant::from_ms(page_po.as_ms() + k * c);
                    if window.contains(landing) {
                        return Some((cycle, landing, k));
                    }
                }
                AdaptationGrid::StandardFormula => {
                    let cfg = PagingConfig { cycle, nb };
                    let Ok(adapted) = PagingSchedule::new(&cfg, ue) else {
                        continue;
                    };
                    let landing = adapted.first_po_at_or_after(window.start());
                    if window.contains(landing) {
                        let monitored = adapted.count_pos_between(
                            page_po + SimDuration::from_ms(1),
                            landing + SimDuration::from_ms(1),
                        );
                        return Some((cycle, landing, monitored));
                    }
                }
            }
        }
        None
    }
}

impl GroupingMechanism for DaSc {
    fn name(&self) -> String {
        "DA-SC".to_string()
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        _rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let params = input.params();
        let t = input.transmission_time()?;
        let ti = params.ti.duration();
        // The coverage window never extends before the campaign start:
        // with short-cycle groups TI can exceed 2 * maxDRX, in which case
        // [t - TI, t) would reach back before the content even arrived.
        let window = TimeWindow::new(t.saturating_sub(ti).max(params.start), t);

        let mut device_plans = Vec::with_capacity(input.len());
        for (dev, sched) in input.iter().zip(input.schedules()) {
            if sched.has_po_in(window) {
                // Fig. 5, device (c): no adaptation needed.
                let po = sched.first_po_at_or_after(window.start());
                device_plans.push(DevicePlan {
                    device: dev.id,
                    page: Some(PageDirective { po }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(po),
                    receives_at: t,
                });
                continue;
            }
            let page_po = sched
                .last_po_before(window.start())
                .filter(|&po| po >= params.start)
                .ok_or(GroupingError::NoUsablePo { device: dev.id, t })?;
            let (new_cycle, landing_po, monitored) = self
                .adapt(
                    dev.paging.cycle.period_frames(),
                    sched,
                    dev.ue,
                    dev.paging.nb,
                    page_po,
                    window,
                )
                .ok_or(GroupingError::NoUsablePo { device: dev.id, t })?;
            device_plans.push(DevicePlan {
                device: dev.id,
                page: Some(PageDirective { po: landing_po }),
                mltc: None,
                adaptation: Some(AdaptationDirective {
                    page_po,
                    new_cycle,
                    landing_po,
                    monitored_adapted_pos: monitored,
                }),
                connect_at: Some(landing_po),
                receives_at: t,
            });
        }

        let recipients = device_plans.iter().map(|p| p.device).collect();
        Ok(MulticastPlan {
            mechanism: self.name(),
            standards_compliant: true,
            requires_connection: true,
            transmissions: vec![Transmission { at: t, recipients }],
            device_plans,
            horizon: TimeWindow::new(params.start, t),
            control_monitoring: None,
            improvement: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_time::{EdrxCycle, PagingCycle};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(
        mix: TrafficMix,
        n: usize,
        seed: u64,
        grid: AdaptationGrid,
    ) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DaSc::with_grid(grid).plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn single_transmission_by_design() {
        for grid in [
            AdaptationGrid::AnchoredAtAdaptation,
            AdaptationGrid::StandardFormula,
        ] {
            let (input, plan) = plan_for(TrafficMix::ericsson_city(), 100, 1, grid);
            plan.validate(&input).unwrap();
            assert_eq!(plan.transmission_count(), 1);
            assert_eq!(
                plan.single_transmission_time(),
                Some(input.transmission_time().unwrap())
            );
        }
    }

    #[test]
    fn adapted_devices_land_inside_window() {
        let (input, plan) = plan_for(
            TrafficMix::ericsson_city(),
            150,
            2,
            AdaptationGrid::default(),
        );
        let t = input.transmission_time().unwrap();
        let w = TimeWindow::new(t - input.params().ti.duration(), t);
        let mut adapted = 0;
        for dp in &plan.device_plans {
            if let Some(a) = dp.adaptation {
                adapted += 1;
                assert!(w.contains(a.landing_po));
                assert!(a.page_po < w.start());
                assert!(a.monitored_adapted_pos >= 1);
            }
        }
        // With multi-hour cycles and a 20 s window, most devices need
        // adaptation.
        assert!(adapted > 100, "only {adapted} adapted");
    }

    #[test]
    fn adaptation_decreases_cycle() {
        let (input, plan) = plan_for(
            TrafficMix::ericsson_city(),
            150,
            3,
            AdaptationGrid::default(),
        );
        for (dp, dev) in plan.device_plans.iter().zip(input.iter()) {
            if let Some(a) = dp.adaptation {
                assert!(
                    a.new_cycle.period_frames() < dev.paging.cycle.period_frames(),
                    "{}: {} not shorter than {}",
                    dev.id,
                    a.new_cycle,
                    dev.paging.cycle
                );
            }
        }
    }

    #[test]
    fn adaptation_uses_largest_feasible_cycle_anchored() {
        // Anchored grid: the landing is page_po + k * c; verify no longer
        // ladder cycle (still shorter than the device's) would also land.
        let (input, plan) = plan_for(
            TrafficMix::ericsson_city(),
            80,
            4,
            AdaptationGrid::default(),
        );
        let t = input.transmission_time().unwrap();
        let w = TimeWindow::new(t - input.params().ti.duration(), t);
        for (dp, dev) in plan.device_plans.iter().zip(input.iter()) {
            let Some(a) = dp.adaptation else { continue };
            for longer in CycleLadder::cycles().rev() {
                if longer.period_frames() >= dev.paging.cycle.period_frames() {
                    continue;
                }
                if longer.period_frames() <= a.new_cycle.period_frames() {
                    break;
                }
                let c = longer.period().as_ms();
                let gap = w.start().as_ms().saturating_sub(a.page_po.as_ms());
                let k = gap.div_ceil(c).max(1);
                let landing = SimInstant::from_ms(a.page_po.as_ms() + k * c);
                assert!(
                    !w.contains(landing),
                    "{}: cycle {} would land too",
                    dev.id,
                    longer
                );
            }
        }
    }

    #[test]
    fn standard_formula_grid_is_also_valid() {
        let (input, plan) = plan_for(
            TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf64)),
            60,
            5,
            AdaptationGrid::StandardFormula,
        );
        plan.validate(&input).unwrap();
    }

    #[test]
    fn short_drx_devices_need_no_adaptation() {
        let (input, plan) = plan_for(TrafficMix::short_drx(), 40, 6, AdaptationGrid::default());
        plan.validate(&input).unwrap();
        assert!(plan.device_plans.iter().all(|p| p.adaptation.is_none()));
    }

    #[test]
    fn deterministic_plan() {
        let (_, a) = plan_for(
            TrafficMix::ericsson_city(),
            90,
            7,
            AdaptationGrid::default(),
        );
        let (_, b) = plan_for(
            TrafficMix::ericsson_city(),
            90,
            7,
            AdaptationGrid::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn respects_transmission_time_override() {
        let mut rng = StdRng::seed_from_u64(8);
        let pop = TrafficMix::ericsson_city().generate(50, &mut rng).unwrap();
        let base = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let later = base.default_transmission_time() + SimDuration::from_secs(120);
        let params = GroupingParams {
            transmission_time: Some(later),
            ..GroupingParams::default()
        };
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let plan = DaSc::new().plan(&input, &mut rng).unwrap();
        plan.validate(&input).unwrap();
        assert_eq!(plan.single_transmission_time(), Some(later));
    }
}
