//! Anytime plan improvement: tabu local search over set-cover solutions.
//!
//! The greedy cover ([`crate::set_cover`]) is a one-shot constructive
//! heuristic; this module treats the result as a *starting point* and
//! spends a caller-chosen **budget** of destroy-and-repair iterations
//! trying to shrink it. The discipline is classic tabu search:
//!
//! * **Move** — one iteration removes a seeded-random picked set (the
//!   *victim*), then greedily re-covers the elements it alone covered
//!   using non-tabu sets (max gain, lowest set index on ties), and
//!   finally strips sets made fully redundant by the repair.
//! * **Tabu tenure** — the victim may not re-enter the solution for a
//!   fixed number of iterations, forcing the search off local plateaus.
//! * **Aspiration** — a tabu set is admitted anyway when re-adding it
//!   would still leave the candidate strictly smaller than the best
//!   solution seen so far (and as a failsafe whenever no non-tabu set
//!   can cover an uncovered element, so coverage is never lost).
//! * **Anytime** — the budget is a deterministic iteration count (no
//!   wall-clock anywhere), the RNG is seeded, and the iteration sequence
//!   never looks at the total budget. A run with budget `B₂ > B₁`
//!   therefore replays the first `B₁` iterations bit-identically and the
//!   returned **best-found** solution is monotone non-increasing in the
//!   budget — the property `ci.sh --stage anytime-smoke` locks.
//!
//! Sideways moves (equal cost) are accepted to let the search drift
//! across plateaus; worsening candidates are rolled back. `budget == 0`
//! returns the input picks byte-for-byte (locked by proptest), which is
//! what makes `DR-SC-tabu(0)` bit-identical to plain DR-SC.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The anytime knob: how much work one improvement run may spend.
///
/// [`Budget::Iterations`] is the deterministic mode every golden and
/// bit-identity contract uses. [`Budget::WallClock`] trades that away for
/// a real-time bound: the search runs destroy-and-repair iterations until
/// the deadline passes, so the iteration count — and therefore the result
/// — depends on the host's speed and load. **Wall-clock runs are
/// non-deterministic by design and must never feed goldens, archives or
/// regression baselines**; they exist for interactive/service callers
/// that want "the best plan you can find in 50 ms".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Budget {
    /// A fixed number of destroy-and-repair iterations. `Iterations(0)`
    /// returns the initial solution byte-for-byte; results are
    /// bit-identical across hosts, threads and repeated runs.
    Iterations(u32),
    /// Iterate until this many milliseconds of wall-clock time have
    /// elapsed (checked before each iteration; `WallClock(0)` returns the
    /// initial solution). Non-deterministic — see the type docs.
    WallClock(u64),
}

impl Budget {
    /// Whether this budget allows no work at all (the identity run).
    pub fn is_zero(&self) -> bool {
        matches!(self, Budget::Iterations(0) | Budget::WallClock(0))
    }
}

/// How many iterations a removed set stays tabu.
///
/// Fixed and deterministic: tenure participates in the bit-identity
/// contract, so it must not depend on thread count, wall-clock or budget.
pub const TABU_TENURE: u32 = 8;

/// Outcome metrics of one [`improve_cover`] run, surfaced through
/// `MulticastPlan::improvement` into `MechanismSummary`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImprovementStats {
    /// Sets in the initial (greedy) solution.
    pub initial_cost: u32,
    /// Sets in the best solution found (never above `initial_cost`).
    pub final_cost: u32,
    /// Accepted moves (improving or sideways).
    pub moves_accepted: u32,
    /// Iterations actually executed (≤ budget; the search stops early
    /// when the solution reaches a single set).
    pub budget_spent: u32,
}

/// Improves a feasible set-cover solution by tabu local search.
///
/// * `universe_size`, `sets` — the same instance the initial solution was
///   computed on (every element `< universe_size`).
/// * `initial` — indices into `sets` that jointly cover the universe.
/// * `budget` — maximum destroy-and-repair iterations; `0` returns
///   `initial` unchanged.
/// * `seed` — seeds the victim-selection RNG; identical seeds replay the
///   identical search at every thread count.
///
/// Returns the best cover found (in first-added order) plus the run's
/// [`ImprovementStats`]. Every returned solution covers the full
/// universe — accepted moves preserve feasibility by construction (the
/// repair loop only terminates once nothing is uncovered).
///
/// # Panics
///
/// Panics (debug builds) when `initial` does not cover the universe.
pub fn improve_cover(
    universe_size: usize,
    sets: &[Vec<usize>],
    initial: &[usize],
    budget: u32,
    seed: u64,
) -> (Vec<usize>, ImprovementStats) {
    improve_cover_with(
        universe_size,
        sets,
        initial,
        Budget::Iterations(budget),
        seed,
    )
}

/// [`improve_cover`] with an explicit [`Budget`] mode.
///
/// `Budget::Iterations(n)` is byte-identical to `improve_cover(..., n,
/// ...)` (locked by unit test); `Budget::WallClock(ms)` runs until the
/// deadline and is non-deterministic — see the [`Budget`] docs for what
/// that excludes it from.
///
/// # Panics
///
/// Panics (debug builds) when `initial` does not cover the universe.
pub fn improve_cover_with(
    universe_size: usize,
    sets: &[Vec<usize>],
    initial: &[usize],
    budget: Budget,
    seed: u64,
) -> (Vec<usize>, ImprovementStats) {
    let initial_cost = initial.len() as u32;
    let mut stats = ImprovementStats {
        initial_cost,
        final_cost: initial_cost,
        moves_accepted: 0,
        budget_spent: 0,
    };
    if budget.is_zero() || initial.len() <= 1 || universe_size == 0 {
        return (initial.to_vec(), stats);
    }
    let iter_limit = match budget {
        Budget::Iterations(n) => n,
        Budget::WallClock(_) => u32::MAX,
    };
    let deadline = match budget {
        Budget::Iterations(_) => None,
        Budget::WallClock(ms) => Some(Instant::now() + Duration::from_millis(ms)),
    };

    // Normalize away duplicate elements within a set: the solution state
    // below counts cover *multiplicity*, and a set listing an element
    // twice would read as "covered twice" on its own — enough for the
    // redundancy pass to strip the sole covering set and silently lose
    // the element. Real window instances are duplicate-free, so this is
    // a no-op there.
    let sets: Vec<Vec<usize>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let sets = &sets[..];

    // Element -> covering sets (CSR), built once.
    let mut elem_off = vec![0usize; universe_size + 1];
    for set in sets {
        for &e in set {
            assert!(e < universe_size, "element {e} outside universe");
            elem_off[e + 1] += 1;
        }
    }
    for e in 0..universe_size {
        elem_off[e + 1] += elem_off[e];
    }
    let mut cursor = elem_off[..universe_size].to_vec();
    let mut elem_sets = vec![0u32; elem_off[universe_size]];
    for (s, set) in sets.iter().enumerate() {
        for &e in set {
            elem_sets[cursor[e]] = s as u32;
            cursor[e] += 1;
        }
    }

    // Current solution state: picks (stable order), membership flag and
    // per-element cover multiplicity.
    let mut picks: Vec<usize> = initial.to_vec();
    let mut in_solution = vec![false; sets.len()];
    let mut cover = vec![0u32; universe_size];
    for &s in &picks {
        debug_assert!(!in_solution[s], "duplicate pick {s}");
        in_solution[s] = true;
        for &e in &sets[s] {
            cover[e] += 1;
        }
    }
    debug_assert!(
        cover.iter().all(|&c| c > 0),
        "initial solution does not cover the universe"
    );

    let mut best = picks.clone();
    // Iteration number each set stays tabu through (exclusive).
    let mut tabu_until = vec![0u32; sets.len()];
    // Per-repair scratch: candidate gain per set, stamped by repair pass
    // (each pass of the repair loop recomputes gains from scratch).
    let mut gain = vec![0u32; sets.len()];
    let mut gain_stamp = vec![0u32; sets.len()];
    let mut pass = 0u32;
    let mut rng = StdRng::seed_from_u64(seed);

    // The loop over `iter` is shaped exactly like the historical
    // `for iter in 0..budget`: iteration mode must replay it
    // byte-for-byte, wall-clock mode merely adds the deadline check
    // before each iteration.
    for iter in 0..iter_limit {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break;
            }
        }
        stats.budget_spent = iter + 1;
        // Destroy: seeded victim choice among current picks.
        let victim_pos = (rng.next_u64() % picks.len() as u64) as usize;
        let snapshot_picks = picks.clone();
        let snapshot_cover = cover.clone();
        let victim = picks.remove(victim_pos);
        in_solution[victim] = false;
        tabu_until[victim] = iter + 1 + TABU_TENURE;
        let mut uncovered: Vec<usize> = Vec::new();
        for &e in &sets[victim] {
            cover[e] -= 1;
            if cover[e] == 0 {
                uncovered.push(e);
            }
        }

        // Repair: greedy max-gain over the uncovered elements, non-tabu
        // sets first, lowest index on ties.
        while !uncovered.is_empty() {
            pass += 1;
            let mut best_set = usize::MAX;
            let mut best_gain = 0u32;
            let mut fallback_set = usize::MAX; // best among tabu sets
            let mut fallback_gain = 0u32;
            for &e in &uncovered {
                for &s in &elem_sets[elem_off[e]..elem_off[e + 1]] {
                    let s = s as usize;
                    if in_solution[s] {
                        continue;
                    }
                    if gain_stamp[s] != pass {
                        gain_stamp[s] = pass;
                        gain[s] = 0;
                    }
                    gain[s] += 1;
                    let g = gain[s];
                    if tabu_until[s] <= iter {
                        if g > best_gain || (g == best_gain && s < best_set) {
                            best_gain = g;
                            best_set = s;
                        }
                    } else if g > fallback_gain || (g == fallback_gain && s < fallback_set) {
                        fallback_gain = g;
                        fallback_set = s;
                    }
                }
            }
            // Aspiration: admit the tabu candidate when the finished
            // candidate would still beat the best solution found, or
            // (failsafe) when only tabu sets can restore coverage.
            let chosen = if best_set != usize::MAX
                && !(fallback_set != usize::MAX
                    && fallback_gain > best_gain
                    && picks.len() + 1 < best.len())
            {
                best_set
            } else if fallback_set != usize::MAX {
                fallback_set
            } else {
                best_set
            };
            debug_assert_ne!(chosen, usize::MAX, "victim itself restores coverage");
            picks.push(chosen);
            in_solution[chosen] = true;
            for &e in &sets[chosen] {
                cover[e] += 1;
            }
            uncovered.retain(|&e| cover[e] == 0);
        }

        // Strip sets the repair made fully redundant (every element
        // covered at least twice), scanning in stable pick order.
        let mut p = 0usize;
        while p < picks.len() {
            let s = picks[p];
            if sets[s].iter().all(|&e| cover[e] >= 2) {
                for &e in &sets[s] {
                    cover[e] -= 1;
                }
                in_solution[s] = false;
                picks.remove(p);
            } else {
                p += 1;
            }
        }

        // Accept improving and sideways candidates; roll back the rest.
        if picks.len() <= snapshot_picks.len() {
            stats.moves_accepted += 1;
            if picks.len() < best.len() {
                best = picks.clone();
            }
        } else {
            for &s in &picks {
                in_solution[s] = false;
            }
            picks = snapshot_picks;
            cover = snapshot_cover;
            for &s in &picks {
                in_solution[s] = true;
            }
        }
        if picks.len() <= 1 {
            break;
        }
    }

    stats.final_cost = best.len() as u32;
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(universe_size: usize, sets: &[Vec<usize>], picks: &[usize]) -> bool {
        let mut covered = vec![false; universe_size];
        for &s in picks {
            for &e in &sets[s] {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// A redundancy-laden instance where greedy overshoots: singleton
    /// sets picked first trap greedy into 4 sets while 2 suffice.
    fn trap_instance() -> (usize, Vec<Vec<usize>>, Vec<usize>) {
        let sets = vec![
            vec![0, 1, 2],    // 0
            vec![3, 4, 5],    // 1
            vec![0, 3],       // 2
            vec![1, 4],       // 3
            vec![2, 5],       // 4
            vec![0, 1, 2, 6], // 5
            vec![3, 4, 5, 7], // 6
            vec![6, 7],       // 7
        ];
        // A feasible but wasteful start: pairwise sets + the tail.
        let initial = vec![2, 3, 4, 7];
        (8, sets, initial)
    }

    #[test]
    fn budget_zero_is_identity() {
        let (n, sets, initial) = trap_instance();
        let (picks, stats) = improve_cover(n, &sets, &initial, 0, 42);
        assert_eq!(picks, initial);
        assert_eq!(stats.initial_cost, 4);
        assert_eq!(stats.final_cost, 4);
        assert_eq!(stats.moves_accepted, 0);
        assert_eq!(stats.budget_spent, 0);
    }

    #[test]
    fn finds_the_two_set_optimum() {
        let (n, sets, initial) = trap_instance();
        let (picks, stats) = improve_cover(n, &sets, &initial, 64, 42);
        assert!(covers(n, &sets, &picks));
        assert_eq!(picks.len(), 2, "{picks:?}");
        assert_eq!(stats.final_cost, 2);
        assert!(stats.final_cost < stats.initial_cost);
    }

    #[test]
    fn monotone_in_budget() {
        let (n, sets, initial) = trap_instance();
        let mut last = u32::MAX;
        for budget in [0u32, 1, 2, 4, 8, 16, 32, 64] {
            let (picks, stats) = improve_cover(n, &sets, &initial, budget, 7);
            assert!(covers(n, &sets, &picks));
            assert!(
                stats.final_cost <= last,
                "budget {budget}: {} > {last}",
                stats.final_cost
            );
            last = stats.final_cost;
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (n, sets, initial) = trap_instance();
        let a = improve_cover(n, &sets, &initial, 32, 9);
        let b = improve_cover(n, &sets, &initial, 32, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_elements_within_a_set_cannot_lose_coverage() {
        // A set listing an element twice must not read as "covered
        // twice" to the redundancy pass: set 0 is element 0's only
        // cover, and every budget must keep it.
        let sets = vec![vec![0, 0], vec![1, 2], vec![2]];
        let initial = vec![0, 1, 2];
        for budget in [1u32, 4, 16, 64] {
            let (picks, _) = improve_cover(3, &sets, &initial, budget, 11);
            assert!(covers(3, &sets, &picks), "budget {budget}: {picks:?}");
        }
    }

    #[test]
    fn single_set_start_short_circuits() {
        let sets = vec![vec![0, 1]];
        let (picks, stats) = improve_cover(2, &sets, &[0], 16, 1);
        assert_eq!(picks, vec![0]);
        assert_eq!(stats.budget_spent, 0);
    }

    #[test]
    fn iteration_budget_mode_is_byte_identical_to_the_plain_entry() {
        let (n, sets, initial) = trap_instance();
        for budget in [0u32, 1, 3, 8, 32, 64] {
            for seed in [7u64, 42, 9] {
                let plain = improve_cover(n, &sets, &initial, budget, seed);
                let via_enum =
                    improve_cover_with(n, &sets, &initial, Budget::Iterations(budget), seed);
                assert_eq!(plain, via_enum, "budget {budget} seed {seed}");
            }
        }
    }

    #[test]
    fn wall_clock_zero_is_identity() {
        let (n, sets, initial) = trap_instance();
        let (picks, stats) = improve_cover_with(n, &sets, &initial, Budget::WallClock(0), 42);
        assert_eq!(picks, initial);
        assert_eq!(stats.budget_spent, 0);
        assert!(Budget::WallClock(0).is_zero());
        assert!(Budget::Iterations(0).is_zero());
        assert!(!Budget::WallClock(1).is_zero());
        assert!(!Budget::Iterations(1).is_zero());
    }

    #[test]
    fn wall_clock_budget_keeps_feasibility_and_never_worsens() {
        // Wall-clock results are host-dependent, so assert only the
        // invariants: full coverage, final cost ≤ initial cost, and a
        // consistent stats block.
        let (n, sets, initial) = trap_instance();
        let (picks, stats) = improve_cover_with(n, &sets, &initial, Budget::WallClock(20), 42);
        assert!(covers(n, &sets, &picks));
        assert!(stats.final_cost <= stats.initial_cost);
        assert_eq!(picks.len() as u32, stats.final_cost);
        assert!(
            stats.budget_spent >= 1,
            "20ms allows at least one iteration"
        );
    }
}
