//! Set-cover solvers for the DR-SC mechanism.
//!
//! The paper (Sec. III-A, Fig. 3) formulates DR-SC as a set cover: the
//! universe is the device group, and each candidate transmission window of
//! inactivity-timer length `TI` covers the devices with a paging occasion
//! inside it. Exact minimum set cover is NP-hard; following the paper we
//! use Chvátal's greedy heuristic (pick the window covering the most
//! still-uncovered devices, repeat), which guarantees an `H(n)`
//! approximation factor.
//!
//! Two solvers are provided:
//!
//! * [`greedy_set_cover`] — the greedy over explicit sets (used for the
//!   Fig. 3 bipartite instance and for cross-checking),
//! * [`WindowCover`] — the specialized timeline solver: it slides a
//!   `TI`-length window over the merged PO event list, exploiting two
//!   structural facts: (a) an optimal window can always be anchored to
//!   start at some PO, and (b) a device whose cycle is at most `TI` has a
//!   PO in *every* window, so it never influences the argmax and can be
//!   attached to the first selected transmission.
//!
//! # Performance
//!
//! Three implementation tiers exist, all **pick- and slot-identical** (not
//! merely equally sized covers) — the full story, with complexity notes
//! and the staleness argument behind the identity guarantee, is in
//! `docs/KERNELS.md` at the repository root:
//!
//! 1. **Incremental gain maintenance** (the production path): instead of
//!    re-scanning every candidate each round, exact marginal gains are
//!    kept current through an element→sets inverted index — covering a
//!    round's winner decrements only the sets that intersect the newly
//!    covered elements — and the next winner is popped from a lazy
//!    max-gain snapshot heap (`GainQueue` internally). Total work is
//!    `O(L log L)` over the whole solve, where `L` is the summed set
//!    size, independent of the round count. [`greedy_set_cover`] is this
//!    solver; [`WindowCover::solve`] dispatches to it when the window
//!    occupancy is low (see [`WindowCover::solve_incremental`]).
//! 2. **Eager re-sweep fast paths** (the PR-1 kernels):
//!    [`greedy_set_cover_bitset`] packs each set into `u64` bitset rows so
//!    a round's gain is a `popcount(set & !covered)` sweep;
//!    [`WindowCover::solve_sweep`] re-runs a self-cleaning two-pointer
//!    sweep per round over hoisted scratch buffers. `O(rounds × L/w)`
//!    shapes that win when rounds are few and windows are crowded.
//! 3. **Reference oracles**: the original straightforward implementations,
//!    retained verbatim in [`reference`] for the equivalence tests
//!    (`tests/setcover_properties.rs`).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nbiot_time::{SimDuration, SimInstant};

/// Lazy max-gain priority queue over `(gain, Reverse(candidate))`
/// snapshots — the priority structure of the incremental solvers.
///
/// Gains of a greedy cover only ever *decrease* as coverage grows
/// (coverage gain is submodular), so a snapshot taken earlier is an upper
/// bound on the candidate's current gain. Every gain change pushes a fresh
/// snapshot; [`GainQueue::pop_current`] discards stale entries until the
/// top snapshot matches the candidate's live gain. The first current entry
/// popped is exactly the eager greedy's argmax with ties broken towards
/// the lowest index: any entry ordered above `(gain[s*], s*)` either
/// carries a stale (higher) gain or would itself be a lower-index argmax.
struct GainQueue {
    // u32 keys keep the snapshots at 8 bytes: gains are device counts and
    // candidates are set/anchor indices, both far below 2^32 for any
    // instance that fits in memory.
    heap: BinaryHeap<(u32, Reverse<u32>)>,
}

impl GainQueue {
    /// Seeds the queue with a snapshot of every candidate with a positive
    /// gain.
    fn new(gains: &[u32]) -> GainQueue {
        let mut queue = GainQueue {
            heap: BinaryHeap::new(),
        };
        Self::seed(&mut queue.heap, gains);
        queue
    }

    /// Re-seeds `heap` (retaining its capacity) with a snapshot of every
    /// candidate with a positive gain — the arena-backed entry point.
    fn seed(heap: &mut BinaryHeap<(u32, Reverse<u32>)>, gains: &[u32]) {
        heap.clear();
        heap.extend(
            gains
                .iter()
                .enumerate()
                .filter(|&(_, &g)| g > 0)
                .map(|(i, &g)| (g, Reverse(i as u32))),
        );
    }

    /// Pushes a fresh snapshot (no-op for exhausted candidates).
    fn push(&mut self, gain: u32, candidate: usize) {
        Self::push_to(&mut self.heap, gain, candidate);
    }

    fn push_to(heap: &mut BinaryHeap<(u32, Reverse<u32>)>, gain: u32, candidate: usize) {
        if gain > 0 {
            heap.push((gain, Reverse(candidate as u32)));
        }
    }

    /// Pops snapshots until one is current (`gains[c]` unchanged and `c`
    /// not dead) and returns that candidate, or `None` when every
    /// remaining candidate has gain zero.
    fn pop_current(&mut self, gains: &[u32], dead: impl Fn(usize) -> bool) -> Option<usize> {
        Self::pop_current_from(&mut self.heap, gains, dead)
    }

    fn pop_current_from(
        heap: &mut BinaryHeap<(u32, Reverse<u32>)>,
        gains: &[u32],
        dead: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        while let Some((gain, Reverse(candidate))) = heap.pop() {
            let candidate = candidate as usize;
            if !dead(candidate) && gains[candidate] == gain {
                return Some(candidate);
            }
        }
        None
    }
}

/// Lazy max-*ratio* priority queue — [`GainQueue`]'s weighted sibling,
/// keyed on the deterministic fixed-point ratio `(gain << 32) / cost`.
///
/// Costs are static over a solve and gains only decrease, so the ratio is
/// monotone non-increasing and the same lazy-snapshot argument applies.
/// One gain decrement moves the key by `2^32 / cost >= 1` (costs are
/// `u32`, so the quotient never truncates to zero), hence a snapshot key
/// equals the live key **iff** the gain is unchanged — the staleness test
/// needs no separate gain comparison. The fixed-point key *is* the ratio
/// law: two candidates tie exactly when their truncated keys agree, and
/// ties break towards the lowest index via `Reverse(candidate)`. With unit
/// costs the key degenerates to `gain << 32`, strictly monotone in the
/// gain, so the pick sequence is bit-identical to [`GainQueue`]'s
/// (proptest-locked in `tests/setcover_properties.rs`).
struct RatioQueue;

impl RatioQueue {
    /// The deterministic fixed-point ratio key. `cost` must be nonzero
    /// (asserted by the solver entry points).
    #[inline]
    fn key(gain: u32, cost: u32) -> u64 {
        ((gain as u64) << 32) / cost as u64
    }

    /// Re-seeds `heap` (retaining its capacity) with a snapshot of every
    /// candidate with a positive gain.
    fn seed(heap: &mut BinaryHeap<(u64, Reverse<u32>)>, gains: &[u32], costs: &[u32]) {
        heap.clear();
        heap.extend(
            gains
                .iter()
                .zip(costs)
                .enumerate()
                .filter(|&(_, (&g, _))| g > 0)
                .map(|(i, (&g, &c))| (Self::key(g, c), Reverse(i as u32))),
        );
    }

    /// Pushes a fresh snapshot (no-op for exhausted candidates).
    fn push_to(heap: &mut BinaryHeap<(u64, Reverse<u32>)>, gain: u32, cost: u32, candidate: usize) {
        if gain > 0 {
            heap.push((Self::key(gain, cost), Reverse(candidate as u32)));
        }
    }

    /// Pops snapshots until one carries the candidate's live key and
    /// returns that candidate, or `None` when every remaining candidate
    /// has gain zero.
    fn pop_current_from(
        heap: &mut BinaryHeap<(u64, Reverse<u32>)>,
        gains: &[u32],
        costs: &[u32],
    ) -> Option<usize> {
        while let Some((key, Reverse(candidate))) = heap.pop() {
            let candidate = candidate as usize;
            if gains[candidate] > 0 && Self::key(gains[candidate], costs[candidate]) == key {
                return Some(candidate);
            }
        }
        None
    }
}

/// Reusable scratch for the incremental set-cover kernel: the dedup CSR,
/// the element→sets inverted index, the per-worker build buffers, and the
/// solve-phase scratch (gains, coverage tombstones, queue storage).
///
/// Every buffer keeps its capacity across calls, so repeated plans within
/// a run — the per-round re-planning of a churned campaign, or a figure
/// sweep's device-count ladder — stop allocating once the largest
/// instance has been seen. Construct one with [`KernelArena::new`] and
/// thread it through [`greedy_set_cover_with`] / [`build_cover_index`];
/// [`greedy_set_cover`] uses a thread-local arena internally.
#[derive(Debug, Default)]
pub struct KernelArena {
    // Dedup CSR over the input sets.
    set_off: Vec<usize>,
    set_elems: Vec<u32>,
    // Element → sets inverted index (CSR).
    elem_off: Vec<u32>,
    elem_sets: Vec<u32>,
    // Build scratch: dedup stamps, scatter cursors, per-worker buffers.
    seen: Vec<u32>,
    cursor: Vec<u32>,
    worker_seen: Vec<Vec<u32>>,
    worker_elems: Vec<Vec<u32>>,
    worker_lens: Vec<Vec<u32>>,
    worker_counts: Vec<Vec<u32>>,
    // Solve scratch.
    gains: Vec<u32>,
    covered: Vec<bool>,
    last_touch: Vec<u32>,
    touched: Vec<u32>,
    heap: BinaryHeap<(u32, Reverse<u32>)>,
    // Weighted-solve scratch: the u64 ratio-keyed heap (the unweighted
    // heap stays u32-keyed — see `GainQueue`'s size note) and the
    // per-anchor cost column of the window front-end.
    wheap: BinaryHeap<(u64, Reverse<u32>)>,
    wcosts: Vec<u32>,
    // Window-cover front-end scratch: the flat time-sorted event list and
    // the per-device coverage flags behind [`WindowCover::solve_in`], so a
    // long-lived caller (the grouping service's repair path) stops
    // allocating them once the largest instance has been seen.
    wc_flat: Vec<(SimInstant, usize)>,
    wc_covered: Vec<bool>,
    wc_count: Vec<u32>,
}

impl KernelArena {
    /// An empty arena; buffers grow on first use and are retained after.
    pub fn new() -> KernelArena {
        KernelArena::default()
    }
}

/// Clears and refills `buf` to `len` copies of `value`, retaining
/// capacity.
fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// `bounds[k]..bounds[k+1]` item ranges for `workers` contiguous chunks,
/// balanced by per-item `mass` (empty trailing ranges when there are more
/// workers than mass). Deterministic in its inputs only.
fn balanced_bounds(
    n: usize,
    workers: usize,
    total: usize,
    mass: impl Fn(usize) -> usize,
) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0);
    let mut acc = 0usize;
    for i in 0..n {
        if bounds.len() > workers {
            break;
        }
        acc += mass(i);
        while bounds.len() <= workers && acc * workers >= total * bounds.len() {
            bounds.push(i + 1);
        }
    }
    while bounds.len() <= workers {
        bounds.push(n);
    }
    bounds[workers] = n;
    bounds
}

/// Resolves the worker count for an index build: `0` = the machine's
/// available parallelism (capped at 8 — the counting buffers are
/// universe-sized per worker), any other value is taken as-is; small
/// instances always build serially (spawn overhead would dominate).
fn effective_workers(threads: usize, input_entries: usize) -> usize {
    const SERIAL_CUTOFF: usize = 1 << 14;
    if input_entries < SERIAL_CUTOFF {
        return 1;
    }
    match threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        t => t.min(8),
    }
    .max(1)
}

/// Statistics of one [`build_cover_index`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexBuildStats {
    /// Number of input sets.
    pub sets: usize,
    /// Deduped CSR entries (= inverted-index entries).
    pub entries: usize,
    /// Workers the build actually ran on (small instances build
    /// serially regardless of the requested thread count).
    pub workers: usize,
    /// FNV-1a digest over `set_off`/`set_elems`/`elem_off`/`elem_sets` —
    /// the bit-identity witness for parallel-vs-serial build tests.
    pub checksum: u64,
}

/// Builds the dedup CSR and the element→sets inverted index into `arena`
/// and returns build statistics, including a checksum over all four index
/// arrays. The build is **bit-identical at every thread count** (see
/// [`greedy_set_cover_with`] for why); `threads` follows
/// [`greedy_set_cover_with`]'s convention (`0` = auto).
///
/// This is the benchmarking/testing entry point for the index build in
/// isolation; [`greedy_set_cover_with`] runs the same build and then the
/// greedy rounds.
///
/// # Panics
///
/// Panics when a set contains an element `>= universe_size`.
pub fn build_cover_index(
    universe_size: usize,
    sets: &[Vec<usize>],
    threads: usize,
    arena: &mut KernelArena,
) -> IndexBuildStats {
    let workers = build_index_into(universe_size, sets, threads, arena);
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| h = (h ^ v).wrapping_mul(FNV_PRIME);
    for &o in &arena.set_off {
        mix(o as u64);
    }
    for &e in &arena.set_elems {
        mix(e as u64);
    }
    for &o in &arena.elem_off {
        mix(o as u64);
    }
    for &s in &arena.elem_sets {
        mix(s as u64);
    }
    IndexBuildStats {
        sets: sets.len(),
        entries: arena.set_elems.len(),
        workers,
        checksum: h,
    }
}

/// The index-build core: dedup CSR, then the counting pass, then the
/// exclusive-prefix-sum scatter. Returns the worker count used.
///
/// Parallelization is by **contiguous partitioning** in both directions —
/// set ranges for dedup/counting, element ranges for the scatter — so the
/// output arrays are byte-for-byte what the serial build writes: the
/// partition only changes *which worker* writes an entry, never its
/// position or value.
fn build_index_into(
    universe_size: usize,
    sets: &[Vec<usize>],
    threads: usize,
    arena: &mut KernelArena,
) -> usize {
    assert!(
        universe_size < u32::MAX as usize && sets.len() < u32::MAX as usize,
        "index build uses u32 entries"
    );
    let input_entries: usize = sets.iter().map(|s| s.len()).sum();
    let workers = effective_workers(threads, input_entries);

    // --- Phase A: dedup each set into a CSR row (repeated elements count
    // once — the unique-gain semantics of the reference solver). The
    // index arrays are u32: the CSR is the memory-bandwidth hot spot of
    // the whole solver, and halving the entry width measurably moves the
    // build. ---
    arena.set_off.clear();
    arena.set_off.reserve(sets.len() + 1);
    arena.set_off.push(0);
    arena.set_elems.clear();
    if workers == 1 {
        reset(&mut arena.seen, universe_size, u32::MAX);
        for (i, set) in sets.iter().enumerate() {
            for &e in set {
                assert!(
                    e < universe_size,
                    "set {i} contains element {e} outside universe 0..{universe_size}"
                );
                if arena.seen[e] != i as u32 {
                    arena.seen[e] = i as u32;
                    arena.set_elems.push(e as u32);
                }
            }
            arena.set_off.push(arena.set_elems.len());
        }
    } else {
        // Per-worker dedup over contiguous set ranges (balanced by input
        // mass), each with its own stamp array, then an order-preserving
        // concatenation: identical CSR to the serial pass.
        let set_bounds =
            balanced_bounds(sets.len(), workers, input_entries, |i| sets[i].len().max(1));
        arena.worker_seen.resize_with(workers, Vec::new);
        arena.worker_elems.resize_with(workers, Vec::new);
        arena.worker_lens.resize_with(workers, Vec::new);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, ((seen, elems), lens)) in arena
                .worker_seen
                .iter_mut()
                .zip(arena.worker_elems.iter_mut())
                .zip(arena.worker_lens.iter_mut())
                .enumerate()
            {
                let range = set_bounds[w]..set_bounds[w + 1];
                handles.push(scope.spawn(move || {
                    reset(seen, universe_size, u32::MAX);
                    elems.clear();
                    lens.clear();
                    for i in range {
                        let before = elems.len();
                        for &e in &sets[i] {
                            assert!(
                                e < universe_size,
                                "set {i} contains element {e} outside universe 0..{universe_size}"
                            );
                            if seen[e] != i as u32 {
                                seen[e] = i as u32;
                                elems.push(e as u32);
                            }
                        }
                        lens.push((elems.len() - before) as u32);
                    }
                }));
            }
            for h in handles {
                h.join().expect("index-build worker");
            }
        });
        for w in 0..workers {
            for &len in &arena.worker_lens[w] {
                arena
                    .set_off
                    .push(arena.set_off.last().unwrap() + len as usize);
            }
        }
        let total: usize = arena.worker_elems.iter().map(|v| v.len()).sum();
        arena.set_elems.reserve(total);
        for w in 0..workers {
            let part = &arena.worker_elems[w];
            arena.set_elems.extend_from_slice(part);
        }
    }
    let entries = arena.set_elems.len();

    // --- Phase B: per-worker counting pass over the deduped entries,
    // folded into the element-offset array. ---
    reset(&mut arena.elem_off, universe_size + 1, 0u32);
    if workers == 1 {
        for &e in &arena.set_elems {
            arena.elem_off[e as usize + 1] += 1;
        }
    } else {
        arena.worker_counts.resize_with(workers, Vec::new);
        let chunk = entries.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, counts) in arena.worker_counts.iter_mut().enumerate() {
                let slice =
                    &arena.set_elems[(w * chunk).min(entries)..((w + 1) * chunk).min(entries)];
                handles.push(scope.spawn(move || {
                    reset(counts, universe_size, 0u32);
                    for &e in slice {
                        counts[e as usize] += 1;
                    }
                }));
            }
            for h in handles {
                h.join().expect("index-build worker");
            }
        });
        for counts in &arena.worker_counts {
            for (e, &c) in counts.iter().enumerate() {
                arena.elem_off[e + 1] += c;
            }
        }
    }
    // Exclusive prefix sum: elem_off[e] is where element e's set list
    // starts in elem_sets.
    for i in 0..universe_size {
        arena.elem_off[i + 1] += arena.elem_off[i];
    }

    // --- Phase C: scatter set indices to their prefix-sum positions. ---
    arena.cursor.clear();
    arena
        .cursor
        .extend_from_slice(&arena.elem_off[..universe_size]);
    reset(&mut arena.elem_sets, entries, 0u32);
    if workers == 1 {
        for (i, w) in arena.set_off.windows(2).enumerate() {
            for &e in &arena.set_elems[w[0]..w[1]] {
                let c = &mut arena.cursor[e as usize];
                arena.elem_sets[*c as usize] = i as u32;
                *c += 1;
            }
        }
    } else {
        // Contiguous element ranges (balanced by entry mass): each worker
        // owns a disjoint slice of `elem_sets`/`cursor` and scans the CSR
        // in set order, scattering only its own elements — exactly the
        // positions and values the serial scatter writes.
        let elem_bounds = balanced_bounds(universe_size, workers, entries, |e| {
            (arena.elem_off[e + 1] - arena.elem_off[e]) as usize
        });
        let set_off = &arena.set_off;
        let set_elems = &arena.set_elems;
        let elem_off = &arena.elem_off;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut elems_rest: &mut [u32] = &mut arena.elem_sets;
            let mut cursor_rest: &mut [u32] = &mut arena.cursor;
            let mut entry_base = 0usize;
            let mut elem_base = 0usize;
            for w in 0..workers {
                let e_lo = elem_bounds[w];
                let e_hi = elem_bounds[w + 1];
                let entry_hi = elem_off[e_hi] as usize;
                let (out, rest) = elems_rest.split_at_mut(entry_hi - entry_base);
                elems_rest = rest;
                let (cur, rest) = cursor_rest.split_at_mut(e_hi - elem_base);
                cursor_rest = rest;
                let base = entry_base as u32;
                entry_base = entry_hi;
                elem_base = e_hi;
                handles.push(scope.spawn(move || {
                    let lo = e_lo as u32;
                    let hi = e_hi as u32;
                    for (i, win) in set_off.windows(2).enumerate() {
                        for &e in &set_elems[win[0]..win[1]] {
                            if e >= lo && e < hi {
                                let c = &mut cur[(e - lo) as usize];
                                out[(*c - base) as usize] = i as u32;
                                *c += 1;
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("index-build worker");
            }
        });
    }
    workers
}

thread_local! {
    /// The default arena behind [`greedy_set_cover`] (and
    /// [`crate::repair_plan`]): repeated solves on one thread (a figure
    /// sweep, a churn campaign's re-plans) reuse capacity without the
    /// caller holding an arena.
    pub(crate) static DEFAULT_ARENA: RefCell<KernelArena> = RefCell::new(KernelArena::new());
}

/// Greedy (Chvátal) set cover over explicit sets — the incremental-gain
/// production solver.
///
/// `universe_size` elements are labelled `0..universe_size`; `sets[i]`
/// lists the elements covered by set `i`. Returns the indices of the
/// selected sets in selection order, or `None` when the union of all sets
/// does not cover the universe. Ties are broken towards the lowest set
/// index, making the result deterministic — and **bit-identical** to both
/// [`greedy_set_cover_bitset`] and [`reference::greedy_set_cover`]
/// (enforced by `tests/setcover_properties.rs`).
///
/// Instead of re-scanning every set each round, exact marginal gains are
/// maintained through an element→sets inverted index: covering a round's
/// winner decrements only the sets intersecting the newly covered
/// elements, and winners are popped from a lazy max-gain snapshot heap.
/// Total work is `O(L log L)` for summed set size `L`, independent of the
/// number of rounds (see `docs/KERNELS.md`).
///
/// # Panics
///
/// Panics when a set contains an element `>= universe_size`.
///
/// # Example
///
/// The paper's Fig. 3 instance: the optimal solution is frames 4 and 5.
///
/// ```
/// use nbiot_grouping::set_cover::greedy_set_cover;
///
/// // frames 1..=6 as sets of devices 0..5
/// let frames = vec![
///     vec![0],       // frame 1: device 1
///     vec![1],       // frame 2: device 2
///     vec![3],       // frame 3: device 4
///     vec![0, 1, 2], // frame 4: devices 1,2,3
///     vec![3, 4],    // frame 5: devices 4,5
///     vec![2],       // frame 6: device 3
/// ];
/// let picked = greedy_set_cover(5, &frames).expect("coverable");
/// assert_eq!(picked, vec![3, 4]); // frames 4 and 5
/// ```
pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
    DEFAULT_ARENA
        .with(|arena| greedy_set_cover_with(universe_size, sets, 1, &mut arena.borrow_mut()))
}

/// [`greedy_set_cover`] with explicit scratch and an index-build thread
/// count — the scale-tier entry point.
///
/// `threads` controls only the CSR/inverted-index **build**: `0` picks the
/// machine's available parallelism (capped at 8), `n >= 1` requests
/// exactly `n` workers, and small instances always build serially. The
/// greedy rounds themselves are inherently sequential (each pick depends
/// on the previous round's gain updates) and always run on one thread.
/// The picks are **bit-identical at every thread count**: the parallel
/// build partitions work contiguously (set ranges for dedup/counting,
/// element ranges for the scatter), so the four index arrays — and hence
/// every downstream gain and tie-break — are byte-for-byte the serial
/// build's output (locked by `tests/parallel_determinism.rs`).
///
/// All allocations live in `arena` and are reused across calls; see
/// [`KernelArena`].
///
/// # Panics
///
/// Panics when a set contains an element `>= universe_size`.
pub fn greedy_set_cover_with(
    universe_size: usize,
    sets: &[Vec<usize>],
    threads: usize,
    arena: &mut KernelArena,
) -> Option<Vec<usize>> {
    if universe_size == 0 {
        return Some(Vec::new());
    }
    build_index_into(universe_size, sets, threads, arena);

    let KernelArena {
        set_off,
        set_elems,
        elem_off,
        elem_sets,
        gains,
        covered,
        last_touch,
        touched,
        heap,
        ..
    } = arena;
    gains.clear();
    gains.extend(set_off.windows(2).map(|w| (w[1] - w[0]) as u32));
    GainQueue::seed(heap, gains);
    reset(covered, universe_size, false);
    let mut remaining = universe_size;
    let mut picked = Vec::new();
    // Per-round dedup of gain-changed sets, stamped by round number
    // (rounds never reach the u32::MAX sentinel: there are at most
    // `universe_size < u32::MAX` of them).
    reset(last_touch, sets.len(), u32::MAX);
    touched.clear();
    let mut round = 0u32;
    while remaining > 0 {
        let best = GainQueue::pop_current_from(heap, gains, |_| false)?;
        picked.push(best);
        touched.clear();
        for &e in &set_elems[set_off[best]..set_off[best + 1]] {
            let e = e as usize;
            if !covered[e] {
                covered[e] = true;
                remaining -= 1;
                for &s in &elem_sets[elem_off[e] as usize..elem_off[e + 1] as usize] {
                    let s = s as usize;
                    gains[s] -= 1;
                    if last_touch[s] != round {
                        last_touch[s] = round;
                        touched.push(s as u32);
                    }
                }
            }
        }
        // One fresh snapshot per changed set, after all of the round's
        // decrements (the winner itself drops to gain zero and is never
        // re-enqueued).
        for &s in touched.iter() {
            GainQueue::push_to(heap, gains[s as usize], s as usize);
        }
        round += 1;
    }
    Some(picked)
}

/// Weighted-gain greedy set cover: each round picks the set maximizing
/// `gain / cost` — Chvátal's cost-aware rule, the `H(n)`-approximate
/// greedy for *minimum-cost* set cover — instead of the raw gain.
///
/// `costs[i]` is the static, positive cost of picking set `i` (for DR-SC
/// anchor windows: the coverage-class block airtime of the window's
/// deepest device). Ratios are compared through the deterministic
/// fixed-point key `(gain << 32) / cost`; candidates whose truncated keys
/// agree tie, and ties break towards the lowest set index. Gains are
/// maintained exactly through the same inverted-index machinery as
/// [`greedy_set_cover_with`], and winners pop from a lazy max-ratio
/// snapshot heap (costs are static and gains only decrease, so stale
/// snapshots are upper bounds — the same argument as the unweighted
/// queue). Total work is `O(L log L)` for summed set size `L`.
///
/// **Unit costs reproduce [`greedy_set_cover`]'s pick sequence
/// bit-identically**: with `cost == 1` the key is `gain << 32`, strictly
/// monotone in the gain, so every argmax and tie-break coincides
/// (proptest-locked in `tests/setcover_properties.rs` and pinned in the
/// bench crate's `kernel_regression.rs`).
///
/// Returns the picked set indices in selection order, or `None` when the
/// union of all sets does not cover the universe.
///
/// # Panics
///
/// Panics when `costs.len() != sets.len()`, when any cost is zero, or
/// when a set contains an element `>= universe_size`.
pub fn greedy_set_cover_weighted(
    universe_size: usize,
    sets: &[Vec<usize>],
    costs: &[u32],
    threads: usize,
    arena: &mut KernelArena,
) -> Option<Vec<usize>> {
    assert_eq!(
        costs.len(),
        sets.len(),
        "one cost per candidate set required"
    );
    assert!(
        costs.iter().all(|&c| c > 0),
        "set costs must be positive (a zero cost breaks the ratio key)"
    );
    if universe_size == 0 {
        return Some(Vec::new());
    }
    build_index_into(universe_size, sets, threads, arena);

    let KernelArena {
        set_off,
        set_elems,
        elem_off,
        elem_sets,
        gains,
        covered,
        last_touch,
        touched,
        wheap,
        ..
    } = arena;
    gains.clear();
    gains.extend(set_off.windows(2).map(|w| (w[1] - w[0]) as u32));
    RatioQueue::seed(wheap, gains, costs);
    reset(covered, universe_size, false);
    let mut remaining = universe_size;
    let mut picked = Vec::new();
    reset(last_touch, sets.len(), u32::MAX);
    touched.clear();
    let mut round = 0u32;
    while remaining > 0 {
        let best = RatioQueue::pop_current_from(wheap, gains, costs)?;
        picked.push(best);
        touched.clear();
        for &e in &set_elems[set_off[best]..set_off[best + 1]] {
            let e = e as usize;
            if !covered[e] {
                covered[e] = true;
                remaining -= 1;
                for &s in &elem_sets[elem_off[e] as usize..elem_off[e + 1] as usize] {
                    let s = s as usize;
                    gains[s] -= 1;
                    if last_touch[s] != round {
                        last_touch[s] = round;
                        touched.push(s as u32);
                    }
                }
            }
        }
        for &s in touched.iter() {
            let s = s as usize;
            RatioQueue::push_to(wheap, gains[s], costs[s], s);
        }
        round += 1;
    }
    Some(picked)
}

/// Greedy (Chvátal) set cover over packed-`u64` bitset rows — the eager
/// per-round re-sweep kernel (the PR-1 fast path), retained for
/// benchmarking against [`greedy_set_cover`] and as a second independent
/// implementation in the equivalence tests.
///
/// Same contract, same deterministic lowest-index tie-breaking, and
/// bit-identical picks as [`greedy_set_cover`]; each round costs one
/// `popcount(set & !covered)` sweep over every set.
///
/// # Panics
///
/// Panics when a set contains an element `>= universe_size`.
pub fn greedy_set_cover_bitset(universe_size: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
    if universe_size == 0 {
        return Some(Vec::new());
    }
    let words = universe_size.div_ceil(64);
    // Pack each set into a bitset row once; duplicates collapse for free,
    // which is exactly the unique-gain semantics of the reference solver.
    let mut rows = vec![0u64; sets.len() * words];
    for (i, set) in sets.iter().enumerate() {
        let row = &mut rows[i * words..(i + 1) * words];
        for &e in set {
            assert!(
                e < universe_size,
                "set {i} contains element {e} outside universe 0..{universe_size}"
            );
            row[e / 64] |= 1 << (e % 64);
        }
    }
    let mut covered = vec![0u64; words];
    let mut remaining = universe_size;
    let mut picked = Vec::new();
    while remaining > 0 {
        let mut best_gain = 0usize;
        let mut best_idx = usize::MAX;
        for (i, row) in rows.chunks_exact(words).enumerate() {
            let gain = row
                .iter()
                .zip(&covered)
                .map(|(r, c)| (r & !c).count_ones() as usize)
                .sum::<usize>();
            if gain > best_gain {
                best_gain = gain;
                best_idx = i;
            }
        }
        if best_idx == usize::MAX {
            return None; // no set adds anything, yet elements remain
        }
        picked.push(best_idx);
        for (c, r) in covered
            .iter_mut()
            .zip(&rows[best_idx * words..(best_idx + 1) * words])
        {
            *c |= r;
        }
        remaining -= best_gain;
    }
    Some(picked)
}

/// One selected transmission window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverSlot {
    /// Window start (anchored at a PO).
    pub window_start: SimInstant,
    /// Transmission instant: the end of the window (`start + TI`), the
    /// "last frame of t_o" in the paper.
    pub transmit_at: SimInstant,
    /// Indices (into the solver's device list) newly covered by this
    /// transmission.
    pub covered: Vec<usize>,
}

/// The greedy timeline solver for DR-SC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCover {
    ti: SimDuration,
}

/// Which greedy engine [`WindowCover::solve`] runs the rounds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Pick by measured window occupancy (the production default).
    Auto,
    /// Force the per-round two-pointer re-sweep (the PR-1 kernel).
    Sweep,
    /// Force incremental gain maintenance.
    Incremental,
}

impl WindowCover {
    /// Creates a solver for windows of inactivity-timer length `ti`.
    pub fn new(ti: SimDuration) -> WindowCover {
        WindowCover { ti }
    }

    /// Solves the cover.
    ///
    /// * `horizon_start` — the beginning of the search horizon (used to
    ///   anchor the single window when *every* device is dense),
    /// * `events` — per-device sorted PO instants within the search
    ///   horizon; devices with an empty list are only coverable when
    ///   `dense` (see below),
    /// * `dense` — per-device flag: `true` when the device's paging cycle
    ///   is at most `TI`, meaning every window contains one of its POs.
    ///
    /// Returns the selected transmissions in selection order, or `None`
    /// when some non-dense device has no PO events (it could never be
    /// covered).
    ///
    /// The greedy rounds run on one of two engines — incremental gain
    /// maintenance ([`WindowCover::solve_incremental`]) or the per-round
    /// re-sweep ([`WindowCover::solve_sweep`]) — chosen by measured window
    /// occupancy; both produce **identical slots** (see `docs/KERNELS.md`
    /// for the crossover analysis), so the choice only trades wall-clock.
    ///
    /// # Panics
    ///
    /// Panics when `events` and `dense` have different lengths.
    pub fn solve(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
    ) -> Option<Vec<CoverSlot>> {
        self.solve_with(horizon_start, events, dense, Strategy::Auto, None)
    }

    /// [`WindowCover::solve`] with caller-owned scratch: the flat event
    /// list, coverage flags and sweep counters live in `arena` and keep
    /// their capacity across calls, so a long-lived caller (the grouping
    /// service patching plans request after request) stops allocating the
    /// front-end buffers once the largest fleet has been seen. Output is
    /// **bit-identical** to [`WindowCover::solve`] (locked by unit test).
    ///
    /// # Panics
    ///
    /// Panics when `events` and `dense` have different lengths.
    pub fn solve_in(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
        arena: &mut KernelArena,
    ) -> Option<Vec<CoverSlot>> {
        self.solve_with(horizon_start, events, dense, Strategy::Auto, Some(arena))
    }

    /// [`WindowCover::solve`] forced onto the per-round two-pointer
    /// re-sweep engine (the PR-1 kernel) — exposed so equivalence tests
    /// and benchmarks can pin the engine regardless of the occupancy
    /// heuristic. Identical output to [`WindowCover::solve`].
    ///
    /// # Panics
    ///
    /// Panics when `events` and `dense` have different lengths.
    pub fn solve_sweep(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
    ) -> Option<Vec<CoverSlot>> {
        self.solve_with(horizon_start, events, dense, Strategy::Sweep, None)
    }

    /// [`WindowCover::solve`] forced onto the incremental-gain engine —
    /// exposed so equivalence tests and benchmarks can pin the engine
    /// regardless of the occupancy heuristic. Identical output to
    /// [`WindowCover::solve`].
    ///
    /// # Panics
    ///
    /// Panics when `events` and `dense` have different lengths.
    pub fn solve_incremental(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
    ) -> Option<Vec<CoverSlot>> {
        self.solve_with(horizon_start, events, dense, Strategy::Incremental, None)
    }

    /// Cost-aware cover: anchors every candidate window at a distinct
    /// sparse PO (the same anchor-window instance the tabu improver
    /// searches), prices each window through `window_cost`, and solves
    /// with [`greedy_set_cover_weighted`] — each round picks the window
    /// maximizing newly-covered devices *per unit cost* instead of the
    /// raw count.
    ///
    /// `window_cost` receives the window's member devices as indices into
    /// `events` (sparse members only, in PO-time order) and must return a
    /// positive cost; for DR-SC it returns the coverage-class block
    /// airtime of the deepest member. Dense devices ride the first
    /// selected transmission exactly as in [`WindowCover::solve`] — their
    /// cost contribution is constant across any cover, so they never
    /// influence the argmax and are excluded from the priced instance.
    ///
    /// Returns the selected transmissions in selection (greedy) order, or
    /// `None` when some non-dense device has no PO events. The candidate
    /// instance is the *static* anchor-window instance — the same one
    /// [`crate::DrScTabu`] materializes and searches — so with a constant
    /// `window_cost` the pick sequence is bit-identical to running the
    /// unweighted kernel on that instance (the ratio key degenerates to
    /// `gain << 32`). It is *not* slot-for-slot identical to
    /// [`WindowCover::solve`]: the unweighted engines drop covered
    /// devices' events between rounds and therefore re-anchor
    /// gain-tied windows at a surviving (uncovered) PO, while the static
    /// instance keeps every anchor alive. The covered POs are the same;
    /// only tie-round `window_start`s can differ.
    ///
    /// # Panics
    ///
    /// Panics when `events` and `dense` have different lengths, or when
    /// `window_cost` returns zero.
    pub fn solve_weighted(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
        mut window_cost: impl FnMut(&[usize]) -> u32,
        arena: &mut KernelArena,
    ) -> Option<Vec<CoverSlot>> {
        assert_eq!(events.len(), dense.len(), "events/dense length mismatch");
        let n = events.len();
        if n == 0 {
            return Some(Vec::new());
        }
        for (evs, &is_dense) in events.iter().zip(dense) {
            if evs.is_empty() && !is_dense {
                return None;
            }
        }

        // Materialize the anchor-window instance over sparse devices:
        // every distinct sparse PO instant anchors a candidate window
        // covering the sparse devices with a PO in `[a, a + TI)`.
        let mut orig_of: Vec<usize> = Vec::new();
        let mut sparse_of = vec![usize::MAX; n];
        for (d, &is_dense) in dense.iter().enumerate() {
            if !is_dense {
                sparse_of[d] = orig_of.len();
                orig_of.push(d);
            }
        }
        let n_sparse = orig_of.len();
        let mut covered = vec![false; n];
        let mut slots: Vec<CoverSlot> = Vec::new();
        if n_sparse > 0 {
            let mut flat: Vec<(SimInstant, usize)> = Vec::new();
            for (d, evs) in events.iter().enumerate() {
                if !dense[d] {
                    flat.extend(evs.iter().map(|&t| (t, sparse_of[d])));
                }
            }
            flat.sort_unstable();
            let mut anchors: Vec<SimInstant> = flat.iter().map(|&(t, _)| t).collect();
            anchors.dedup();
            let mut sets: Vec<Vec<usize>> = Vec::with_capacity(anchors.len());
            let mut costs = std::mem::take(&mut arena.wcosts);
            costs.clear();
            let mut members_orig: Vec<usize> = Vec::new();
            let mut seen = vec![usize::MAX; n_sparse];
            let (mut lo, mut hi) = (0usize, 0usize);
            for (i, &a) in anchors.iter().enumerate() {
                let end = a + self.ti;
                while flat[lo].0 < a {
                    lo += 1;
                }
                hi = hi.max(lo);
                while hi < flat.len() && flat[hi].0 < end {
                    hi += 1;
                }
                let mut set = Vec::new();
                members_orig.clear();
                for &(_, d) in &flat[lo..hi] {
                    if seen[d] != i {
                        seen[d] = i;
                        set.push(d);
                        members_orig.push(orig_of[d]);
                    }
                }
                let cost = window_cost(&members_orig);
                assert!(cost > 0, "window cost must be positive");
                costs.push(cost);
                sets.push(set);
            }
            let picks = greedy_set_cover_weighted(n_sparse, &sets, &costs, 1, arena);
            arena.wcosts = costs;
            for pick in picks? {
                let window_start = anchors[pick];
                let mut newly: Vec<usize> = sets[pick]
                    .iter()
                    .map(|&d| orig_of[d])
                    .filter(|&d| !covered[d])
                    .collect();
                newly.sort_unstable();
                debug_assert!(!newly.is_empty(), "weighted pick covers nothing");
                for &d in &newly {
                    covered[d] = true;
                }
                slots.push(CoverSlot {
                    window_start,
                    transmit_at: window_start + self.ti,
                    covered: newly,
                });
            }
        }

        // Dense devices ride the first transmission; if there is none
        // (everyone is dense), create one window at the earliest possible
        // position — identical to [`WindowCover::solve`].
        let dense_devices: Vec<usize> = (0..n).filter(|&d| dense[d] && !covered[d]).collect();
        if !dense_devices.is_empty() {
            for &d in &dense_devices {
                covered[d] = true;
            }
            if let Some(first) = slots.first_mut() {
                first.covered.extend(dense_devices);
                first.covered.sort_unstable();
            } else {
                let window_start = horizon_start;
                slots.push(CoverSlot {
                    window_start,
                    transmit_at: window_start + self.ti,
                    covered: dense_devices,
                });
            }
        }
        debug_assert!(covered.iter().all(|&c| c));
        Some(slots)
    }

    fn solve_with(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
        strategy: Strategy,
        arena: Option<&mut KernelArena>,
    ) -> Option<Vec<CoverSlot>> {
        assert_eq!(events.len(), dense.len(), "events/dense length mismatch");
        let n = events.len();
        if n == 0 {
            return Some(Vec::new());
        }
        for (evs, &is_dense) in events.iter().zip(dense) {
            if evs.is_empty() && !is_dense {
                return None;
            }
        }

        // Front-end buffers: borrowed from the arena when the caller holds
        // one, call-local otherwise. Both paths clear and refill, so the
        // solve is bit-identical either way.
        let mut local_flat: Vec<(SimInstant, usize)> = Vec::new();
        let mut local_covered: Vec<bool> = Vec::new();
        let mut local_count: Vec<u32> = Vec::new();
        let (flat, covered, count) = match arena {
            Some(a) => (&mut a.wc_flat, &mut a.wc_covered, &mut a.wc_count),
            None => (&mut local_flat, &mut local_covered, &mut local_count),
        };

        // Flat, time-sorted (po, device) list over sparse devices only.
        flat.clear();
        flat.reserve(
            events
                .iter()
                .zip(dense)
                .filter(|(_, &d)| !d)
                .map(|(e, _)| e.len())
                .sum(),
        );
        for (d, evs) in events.iter().enumerate() {
            if !dense[d] {
                flat.extend(evs.iter().map(|&t| (t, d)));
            }
        }
        flat.sort_unstable();

        let uncovered_sparse = dense.iter().filter(|&&d| !d).count();
        reset(covered, n, false);
        let mut slots: Vec<CoverSlot> = if uncovered_sparse == 0 {
            Vec::new()
        } else {
            // The incremental engine needs the per-anchor window ends;
            // the Auto crossover test is a cheap fold over the same
            // array, so compute it once and hand it down.
            let ends = match strategy {
                Strategy::Sweep => None,
                Strategy::Incremental => Some(self.window_ends(flat)),
                Strategy::Auto => {
                    let ends = self.window_ends(flat);
                    self.incremental_pays_off(&ends, uncovered_sparse)
                        .then_some(ends)
                }
            };
            match ends {
                Some(ends) => self.rounds_incremental(flat, ends, covered, uncovered_sparse),
                None => self.rounds_sweep(flat, count, covered, uncovered_sparse),
            }
        };

        // Dense devices ride the first transmission; if there is none
        // (everyone is dense), create one window at the earliest possible
        // position.
        let dense_devices: Vec<usize> = (0..n).filter(|&d| dense[d] && !covered[d]).collect();
        if !dense_devices.is_empty() {
            for &d in &dense_devices {
                covered[d] = true;
            }
            if let Some(first) = slots.first_mut() {
                first.covered.extend(dense_devices);
                first.covered.sort_unstable();
            } else {
                let window_start = horizon_start;
                slots.push(CoverSlot {
                    window_start,
                    transmit_at: window_start + self.ti,
                    covered: dense_devices,
                });
            }
        }
        debug_assert!(covered.iter().all(|&c| c));
        Some(slots)
    }

    /// One two-pointer pass over the flat event list: `ends[i]` is the
    /// exclusive end of the index range `[i, ends[i])` of events inside
    /// the window anchored at event `i` (`ends` is non-decreasing because
    /// the anchors are time-sorted).
    fn window_ends(&self, flat: &[(SimInstant, usize)]) -> Vec<usize> {
        let e = flat.len();
        let mut ends = vec![0usize; e];
        let mut k = 0usize;
        for (i, &(start, _)) in flat.iter().enumerate() {
            let end = start + self.ti;
            if k < i {
                k = i;
            }
            while k < e && flat[k].0 < end {
                k += 1;
            }
            ends[i] = k;
        }
        ends
    }

    /// The engine crossover: the incremental path's total decrement work
    /// is bounded by the summed window occupancy `mass = Σᵢ (jᵢ − i)`
    /// (every (anchor, covered-device-in-window) pair is decremented at
    /// most once over the whole solve), while the re-sweep pays
    /// `rounds × events` with `rounds ≳ n/w̄` for mean occupancy
    /// `w̄ = mass/events`. The curves cross near `w̄ ≈ √n`; below it the
    /// incremental engine wins (few devices per window ⇒ many cheap
    /// rounds), above it the sweep does (crowded windows ⇒ few expensive
    /// rounds). See `docs/KERNELS.md`.
    fn incremental_pays_off(&self, ends: &[usize], n_sparse: usize) -> bool {
        let e = ends.len();
        let mass: u64 = ends.iter().enumerate().map(|(i, &k)| (k - i) as u64).sum();
        (mass as f64) <= (e as f64) * (n_sparse as f64).sqrt()
    }

    /// Greedy rounds on incremental gain maintenance: per-anchor gains are
    /// seeded with one self-cleaning sweep, then kept exact through the
    /// device→positions index — covering a device decrements precisely the
    /// alive anchors whose window sees one of its POs (merged position
    /// ranges count a device once per window) and tombstones the device's
    /// own events as anchors (the sweep engine compacts them away
    /// instead). Winners pop from the same lazy snapshot queue as
    /// [`greedy_set_cover`].
    ///
    /// The anchor index set of a window is the *lexicographic* range
    /// `[i, j_i)` of the original flat array, which is invariant under the
    /// reference solver's compaction — the root fact behind slot-identity.
    fn rounds_incremental(
        &self,
        flat: &[(SimInstant, usize)],
        j: Vec<usize>,
        covered: &mut [bool],
        mut uncovered_sparse: usize,
    ) -> Vec<CoverSlot> {
        let e = flat.len();
        let n = covered.len();
        // j[i]: exclusive end of the index range [i, j[i]) of events
        // inside the window anchored at event i (see `window_ends`).
        debug_assert_eq!(j.len(), e);
        // lo[p]: first anchor whose window still contains position p
        // (j is non-decreasing, so {a : j[a] > p} is a suffix).
        let mut lo = vec![0usize; e];
        {
            let mut a = 0usize;
            for (p, slot) in lo.iter_mut().enumerate() {
                while a < e && j[a] <= p {
                    a += 1;
                }
                *slot = a;
            }
        }
        // Device → its event positions in flat (CSR, ascending).
        let mut pos_off = vec![0usize; n + 1];
        for &(_, d) in flat {
            pos_off[d + 1] += 1;
        }
        for d in 0..n {
            pos_off[d + 1] += pos_off[d];
        }
        let mut cursor = pos_off[..n].to_vec();
        let mut positions = vec![0usize; e];
        for (p, &(_, d)) in flat.iter().enumerate() {
            positions[cursor[d]] = p;
            cursor[d] += 1;
        }
        // Initial gains: one self-cleaning two-pointer sweep (each event
        // is counted once as a window member, discounted once as the
        // anchor).
        let mut count = vec![0u32; n];
        let mut gains = vec![0u32; e];
        {
            let mut distinct = 0u32;
            let mut k = 0usize;
            for i in 0..e {
                while k < j[i] {
                    let d = flat[k].1;
                    if count[d] == 0 {
                        distinct += 1;
                    }
                    count[d] += 1;
                    k += 1;
                }
                gains[i] = distinct;
                let d = flat[i].1;
                count[d] -= 1;
                if count[d] == 0 {
                    distinct -= 1;
                }
            }
        }

        let mut dead = vec![false; e];
        let mut queue = GainQueue::new(&gains);
        let mut last_touch = vec![usize::MAX; e];
        let mut touched: Vec<usize> = Vec::new();
        let mut slots = Vec::new();
        let mut round = 0usize;
        while uncovered_sparse > 0 {
            let a = queue
                .pop_current(&gains, |i| dead[i])
                .expect("uncovered sparse device without events");
            let window_start = flat[a].0;
            let transmit_at = window_start + self.ti;
            let mut newly: Vec<usize> = flat[a..j[a]]
                .iter()
                .filter(|&&(_, d)| !covered[d])
                .map(|&(_, d)| d)
                .collect();
            newly.sort_unstable();
            newly.dedup();
            debug_assert!(!newly.is_empty(), "selected window covers nothing");
            touched.clear();
            for &d in &newly {
                covered[d] = true;
                // Anchors seeing >= 1 PO of d: the union of [lo[p], p]
                // over d's positions; the ranges are sorted on both ends,
                // so a running start merges overlaps and each anchor is
                // decremented once for d.
                let mut next_start = 0usize;
                for &p in &positions[pos_off[d]..pos_off[d + 1]] {
                    dead[p] = true;
                    for anchor in lo[p].max(next_start)..=p {
                        if !dead[anchor] {
                            gains[anchor] -= 1;
                            if last_touch[anchor] != round {
                                last_touch[anchor] = round;
                                touched.push(anchor);
                            }
                        }
                    }
                    next_start = p + 1;
                }
            }
            uncovered_sparse -= newly.len();
            for &anchor in &touched {
                if !dead[anchor] {
                    queue.push(gains[anchor], anchor);
                }
            }
            round += 1;
            slots.push(CoverSlot {
                window_start,
                transmit_at,
                covered: newly,
            });
        }
        slots
    }

    /// Greedy rounds on the per-round re-sweep engine (the PR-1 kernel):
    /// hoisted scratch buffers, one self-cleaning two-pointer sweep per
    /// round, spent events compacted away.
    fn rounds_sweep(
        &self,
        flat: &mut Vec<(SimInstant, usize)>,
        count: &mut Vec<u32>,
        covered: &mut [bool],
        mut uncovered_sparse: usize,
    ) -> Vec<CoverSlot> {
        reset(count, covered.len(), 0);
        let mut slots = Vec::new();
        while uncovered_sparse > 0 {
            let slot = self.greedy_round(flat, count, covered);
            uncovered_sparse -= slot.covered.len();
            slots.push(slot);
        }
        slots
    }

    /// One greedy round: a single two-pointer sweep over the remaining
    /// events picks the best window anchor, then the newly covered devices
    /// are extracted and their events compacted away. Allocates only the
    /// returned slot's `covered` list.
    fn greedy_round(
        &self,
        flat: &mut Vec<(SimInstant, usize)>,
        count: &mut [u32],
        covered: &mut [bool],
    ) -> CoverSlot {
        // The sweep below is self-cleaning: every event is counted once
        // when the right pointer passes it and discounted once when it
        // becomes the anchor, so `count` is all-zero between rounds.
        debug_assert!(count.iter().all(|&c| c == 0));

        // For each window anchored at event i, count distinct uncovered
        // devices with a PO in [flat[i].0, flat[i].0 + TI).
        let mut distinct = 0usize;
        let mut best_gain = 0usize;
        let mut best_anchor = 0usize;
        let mut j = 0usize;
        for i in 0..flat.len() {
            let (start, _) = flat[i];
            let end = start + self.ti;
            while j < flat.len() && flat[j].0 < end {
                let d = flat[j].1;
                if !covered[d] {
                    if count[d] == 0 {
                        distinct += 1;
                    }
                    count[d] += 1;
                }
                j += 1;
            }
            if distinct > best_gain {
                best_gain = distinct;
                best_anchor = i;
            }
            // Remove the anchor event before moving on.
            let d = flat[i].1;
            if !covered[d] {
                count[d] -= 1;
                if count[d] == 0 {
                    distinct -= 1;
                }
            }
        }
        debug_assert!(best_gain > 0, "uncovered sparse device without events");
        let window_start = flat[best_anchor].0;
        let transmit_at = window_start + self.ti;
        let mut newly: Vec<usize> = flat
            .iter()
            .skip(best_anchor)
            .take_while(|(t, _)| *t < transmit_at)
            .filter(|(_, d)| !covered[*d])
            .map(|&(_, d)| d)
            .collect();
        newly.sort_unstable();
        newly.dedup();
        for &d in &newly {
            covered[d] = true;
        }
        // Compact spent events in place so later sweeps stay cheap.
        flat.retain(|&(_, d)| !covered[d]);
        CoverSlot {
            window_start,
            transmit_at,
            covered: newly,
        }
    }
}

/// The original straightforward solvers, retained verbatim as the oracle
/// for equivalence testing of the bitset/scratch fast paths.
pub mod reference {
    use super::{CoverSlot, SimDuration, SimInstant};

    /// Reference greedy set cover: boolean coverage vector plus a tag
    /// array for unique-gain counting (the pre-bitset implementation).
    pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
        let mut covered = vec![false; universe_size];
        let mut remaining = universe_size;
        let mut picked = Vec::new();
        // Gains must count *unique* uncovered elements, or sets with
        // repeated entries would corrupt the bookkeeping.
        let mut seen = vec![usize::MAX; universe_size];
        let mut unique_gain = |set: &[usize], covered: &[bool], tag: usize| {
            let mut gain = 0;
            for &e in set {
                if !covered[e] && seen[e] != tag {
                    seen[e] = tag;
                    gain += 1;
                }
            }
            gain
        };
        let mut round = 0usize;
        while remaining > 0 {
            let mut best: Option<(usize, usize)> = None; // (gain, set index)
            for (i, set) in sets.iter().enumerate() {
                let gain = unique_gain(set, &covered, round * sets.len() + i);
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, i));
                }
            }
            let (gain, idx) = best?;
            picked.push(idx);
            for &e in &sets[idx] {
                covered[e] = true;
            }
            remaining -= gain;
            round += 1;
        }
        Some(picked)
    }

    /// Reference weighted-gain greedy set cover: a full re-scan of every
    /// set per round, picking the maximum fixed-point ratio key
    /// `(gain << 32) / cost` with ties towards the lowest index — the
    /// oracle for [`super::greedy_set_cover_weighted`]'s incremental
    /// maintenance. The truncated key *is* the tie law; a rational
    /// comparison would order some pairs differently and is deliberately
    /// not used.
    ///
    /// # Panics
    ///
    /// Panics when `costs.len() != sets.len()` or any cost is zero.
    pub fn greedy_set_cover_weighted(
        universe_size: usize,
        sets: &[Vec<usize>],
        costs: &[u32],
    ) -> Option<Vec<usize>> {
        assert_eq!(costs.len(), sets.len());
        assert!(costs.iter().all(|&c| c > 0));
        let mut covered = vec![false; universe_size];
        let mut remaining = universe_size;
        let mut picked = Vec::new();
        let mut seen = vec![usize::MAX; universe_size];
        let mut unique_gain = |set: &[usize], covered: &[bool], tag: usize| {
            let mut gain: u32 = 0;
            for &e in set {
                if !covered[e] && seen[e] != tag {
                    seen[e] = tag;
                    gain += 1;
                }
            }
            gain
        };
        let mut round = 0usize;
        while remaining > 0 {
            let mut best: Option<(u64, u32, usize)> = None; // (key, gain, set)
            for (i, set) in sets.iter().enumerate() {
                let gain = unique_gain(set, &covered, round * sets.len() + i);
                if gain == 0 {
                    continue;
                }
                let key = ((gain as u64) << 32) / costs[i] as u64;
                if best.is_none_or(|(bk, _, _)| key > bk) {
                    best = Some((key, gain, i));
                }
            }
            let (_, gain, idx) = best?;
            picked.push(idx);
            for &e in &sets[idx] {
                covered[e] = true;
            }
            remaining -= gain as usize;
            round += 1;
        }
        Some(picked)
    }

    /// Reference timeline solver: allocates its counting buffer afresh
    /// every round (the pre-scratch implementation). Same greedy, same
    /// tie-breaking, same output.
    pub fn window_cover_solve(
        ti: SimDuration,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
    ) -> Option<Vec<CoverSlot>> {
        assert_eq!(events.len(), dense.len(), "events/dense length mismatch");
        let n = events.len();
        if n == 0 {
            return Some(Vec::new());
        }
        for (evs, &is_dense) in events.iter().zip(dense) {
            if evs.is_empty() && !is_dense {
                return None;
            }
        }

        // Flat, time-sorted (po, device) list over sparse devices only.
        let mut flat: Vec<(SimInstant, usize)> = events
            .iter()
            .enumerate()
            .filter(|(d, _)| !dense[*d])
            .flat_map(|(d, evs)| evs.iter().map(move |&t| (t, d)))
            .collect();
        flat.sort_unstable();

        let mut covered = vec![false; n];
        let mut uncovered_sparse = dense.iter().filter(|&&d| !d).count();
        let mut slots: Vec<CoverSlot> = Vec::new();

        while uncovered_sparse > 0 {
            // One two-pointer sweep: for each window anchored at event i,
            // count distinct uncovered devices with a PO in
            // [flat[i].0, flat[i].0 + TI).
            let mut count = vec![0u32; n];
            let mut distinct = 0usize;
            let mut best_gain = 0usize;
            let mut best_anchor = 0usize;
            let mut j = 0usize;
            for i in 0..flat.len() {
                let (start, _) = flat[i];
                let end = start + ti;
                while j < flat.len() && flat[j].0 < end {
                    let d = flat[j].1;
                    if !covered[d] {
                        if count[d] == 0 {
                            distinct += 1;
                        }
                        count[d] += 1;
                    }
                    j += 1;
                }
                if distinct > best_gain {
                    best_gain = distinct;
                    best_anchor = i;
                }
                // Remove the anchor event before moving on.
                let d = flat[i].1;
                if !covered[d] {
                    count[d] -= 1;
                    if count[d] == 0 {
                        distinct -= 1;
                    }
                }
            }
            debug_assert!(best_gain > 0, "uncovered sparse device without events");
            let window_start = flat[best_anchor].0;
            let transmit_at = window_start + ti;
            let mut newly: Vec<usize> = flat
                .iter()
                .skip(best_anchor)
                .take_while(|(t, _)| *t < transmit_at)
                .filter(|(_, d)| !covered[*d])
                .map(|&(_, d)| d)
                .collect();
            newly.sort_unstable();
            newly.dedup();
            for &d in &newly {
                covered[d] = true;
            }
            uncovered_sparse -= newly.len();
            flat.retain(|&(_, d)| !covered[d]);
            slots.push(CoverSlot {
                window_start,
                transmit_at,
                covered: newly,
            });
        }

        // Dense devices ride the first transmission; if there is none
        // (everyone is dense), create one window at the earliest possible
        // position.
        let dense_devices: Vec<usize> = (0..n).filter(|&d| dense[d] && !covered[d]).collect();
        if !dense_devices.is_empty() {
            if let Some(first) = slots.first_mut() {
                first.covered.extend(dense_devices.iter().copied());
                first.covered.sort_unstable();
            } else {
                let window_start = horizon_start;
                slots.push(CoverSlot {
                    window_start,
                    transmit_at: window_start + ti,
                    covered: dense_devices.clone(),
                });
            }
            for d in dense_devices {
                covered[d] = true;
            }
        }
        debug_assert!(covered.iter().all(|&c| c));
        Some(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimInstant {
        SimInstant::from_ms(v)
    }

    #[test]
    fn fig3_instance_optimal() {
        // Paper Fig. 3: greedy finds the optimal cover {frame 4, frame 5}.
        let frames = vec![
            vec![0],
            vec![1],
            vec![3],
            vec![0, 1, 2],
            vec![3, 4],
            vec![2],
        ];
        assert_eq!(greedy_set_cover(5, &frames), Some(vec![3, 4]));
    }

    #[test]
    fn generic_greedy_reports_uncoverable() {
        assert_eq!(greedy_set_cover(2, &[vec![0]]), None);
        assert_eq!(greedy_set_cover(0, &[]), Some(vec![]));
        assert_eq!(greedy_set_cover_bitset(2, &[vec![0]]), None);
        assert_eq!(greedy_set_cover_bitset(0, &[]), Some(vec![]));
    }

    #[test]
    fn incremental_single_set_covers_in_one_pick() {
        let sets = vec![vec![2, 0, 1]];
        assert_eq!(greedy_set_cover(3, &sets), Some(vec![0]));
        assert_eq!(
            greedy_set_cover(3, &sets),
            greedy_set_cover_bitset(3, &sets)
        );
    }

    #[test]
    fn incremental_breaks_ties_towards_lowest_index() {
        // Identical sets: the greedy oracle picks the lowest index.
        let sets = vec![vec![0, 1], vec![0, 1], vec![2]];
        assert_eq!(greedy_set_cover(3, &sets), Some(vec![0, 2]));
        // Later rounds tie too: after set 0 wins, sets 2 and 3 tie at
        // gain 1 and the lower index must win again.
        let sets = vec![vec![0, 1], vec![1], vec![2], vec![2]];
        assert_eq!(greedy_set_cover(3, &sets), Some(vec![0, 2]));
        for sets in [
            vec![vec![0, 1], vec![0, 1], vec![2]],
            vec![vec![0, 1], vec![1], vec![2], vec![2]],
        ] {
            assert_eq!(
                greedy_set_cover(3, &sets),
                reference::greedy_set_cover(3, &sets)
            );
        }
    }

    #[test]
    fn incremental_handles_empty_sets_and_stale_snapshots() {
        // Set 0 looks best but overlaps set 1 entirely; after set 1 wins
        // round one, set 0's cached snapshot is stale and must be
        // discarded, not trusted.
        let sets = vec![vec![0, 1, 2], vec![0, 1, 2, 3], vec![], vec![4]];
        let picked = greedy_set_cover(5, &sets).unwrap();
        assert_eq!(picked, reference::greedy_set_cover(5, &sets).unwrap());
        assert_eq!(picked, vec![1, 3]);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Classic greedy trap: optimal is 2 sets, greedy takes 3.
        let sets = vec![
            vec![0, 1, 2, 3],          // greedy grabs this (size 4)
            vec![0, 1, 2, 3, 4, 5, 6], // hmm — make a real trap below
        ];
        let picked = greedy_set_cover(7, &sets).unwrap();
        // Whatever greedy does, the result must cover everything.
        let mut covered = [false; 7];
        for i in &picked {
            for &e in &sets[*i] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn duplicate_elements_count_once() {
        // A set listing one element many times must not beat a genuine
        // two-element set.
        let sets = vec![vec![0, 0, 0, 0], vec![1, 2]];
        let picked = greedy_set_cover(3, &sets).unwrap();
        assert_eq!(picked, vec![1, 0]);
    }

    #[test]
    fn wide_universe_crosses_word_boundaries() {
        // 200 elements span four u64 words; cover with overlapping strides.
        let sets: Vec<Vec<usize>> = (0..20)
            .map(|k| (k * 10..k * 10 + 15).filter(|&e| e < 200).collect())
            .collect();
        let picked = greedy_set_cover(200, &sets).unwrap();
        let mut covered = [false; 200];
        for i in &picked {
            for &e in &sets[*i] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(picked, reference::greedy_set_cover(200, &sets).unwrap());
    }

    #[test]
    fn all_three_greedy_solvers_match_exactly() {
        // Deterministic pseudo-random instances, compared pick-for-pick
        // across the incremental, bitset and reference implementations.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..50 {
            let n = 1 + next() % 80;
            let n_sets = 1 + next() % 40;
            let mut sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| (0..1 + next() % 10).map(|_| next() % n).collect())
                .collect();
            if trial % 2 == 0 {
                sets.push((0..n).collect()); // force coverability half the time
            }
            let oracle = reference::greedy_set_cover(n, &sets);
            assert_eq!(
                greedy_set_cover(n, &sets),
                oracle,
                "incremental, trial {trial}: n={n} sets={sets:?}"
            );
            assert_eq!(
                greedy_set_cover_bitset(n, &sets),
                oracle,
                "bitset, trial {trial}: n={n} sets={sets:?}"
            );
        }
    }

    /// A deterministic instance big enough to clear the serial cutoff and
    /// genuinely exercise the parallel build phases.
    fn large_instance(seed: u64) -> (usize, Vec<Vec<usize>>) {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let n = 2_000;
        let mut sets: Vec<Vec<usize>> = (0..250)
            .map(|_| (0..80 + next() % 40).map(|_| next() % n).collect())
            .collect();
        sets.push((0..n).collect()); // guarantee coverability
        (n, sets)
    }

    #[test]
    fn parallel_index_build_is_bit_identical() {
        let (n, sets) = large_instance(0x9E37_79B9);
        let mut serial = KernelArena::new();
        let base = build_cover_index(n, &sets, 1, &mut serial);
        assert_eq!(base.workers, 1);
        assert_eq!(base.sets, sets.len());
        assert!(
            base.entries > 1 << 14,
            "instance too small: {}",
            base.entries
        );
        for threads in [2, 3, 4, 8] {
            let mut arena = KernelArena::new();
            let stats = build_cover_index(n, &sets, threads, &mut arena);
            assert_eq!(stats.workers, threads, "requested workers honoured");
            assert_eq!(stats.checksum, base.checksum, "{threads} workers");
            assert_eq!(arena.set_off, serial.set_off, "{threads} workers");
            assert_eq!(arena.set_elems, serial.set_elems, "{threads} workers");
            assert_eq!(arena.elem_off, serial.elem_off, "{threads} workers");
            assert_eq!(arena.elem_sets, serial.elem_sets, "{threads} workers");
        }
    }

    #[test]
    fn small_instances_build_serially_regardless_of_threads() {
        let sets = vec![vec![0, 1], vec![2]];
        let mut arena = KernelArena::new();
        let stats = build_cover_index(3, &sets, 8, &mut arena);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn greedy_with_matches_default_at_every_thread_count() {
        let (n, sets) = large_instance(0xDEAD_BEEF);
        let expect = greedy_set_cover(n, &sets);
        assert!(expect.is_some());
        for threads in [0, 1, 2, 4, 8] {
            let mut arena = KernelArena::new();
            assert_eq!(
                greedy_set_cover_with(n, &sets, threads, &mut arena),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn arena_reuse_across_different_instances_is_clean() {
        let mut arena = KernelArena::new();
        let (n, sets) = large_instance(0x5EED);
        assert_eq!(
            greedy_set_cover_with(n, &sets, 4, &mut arena),
            greedy_set_cover(n, &sets)
        );
        // A much smaller, differently-shaped instance on the same (dirty)
        // arena must match a fresh solve, including the uncoverable and
        // empty-universe edges.
        let small = vec![vec![0, 1, 2], vec![0, 1, 2, 3], vec![], vec![4]];
        assert_eq!(
            greedy_set_cover_with(5, &small, 4, &mut arena),
            Some(vec![1, 3])
        );
        assert_eq!(greedy_set_cover_with(2, &[vec![0]], 4, &mut arena), None);
        assert_eq!(greedy_set_cover_with(0, &[], 4, &mut arena), Some(vec![]));
        // And the big instance again: warm buffers, same picks.
        assert_eq!(
            greedy_set_cover_with(n, &sets, 2, &mut arena),
            greedy_set_cover(n, &sets)
        );
    }

    #[test]
    fn fig2a_single_shared_window() {
        // Fig. 2(a): POs of devices 2 and 3 fall within TI of device 1's PO
        // -> one transmission covers all three.
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(10)], vec![ms(50)], vec![ms(90)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false, false])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].covered, vec![0, 1, 2]);
        assert_eq!(slots[0].window_start, ms(10));
        assert_eq!(slots[0].transmit_at, ms(110));
    }

    #[test]
    fn fig2b_second_transmission_needed() {
        // Fig. 2(b): device 3's PO is too far -> a second transmission.
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(10)], vec![ms(50)], vec![ms(200)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false, false])
            .unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].covered, vec![0, 1]);
        assert_eq!(slots[1].covered, vec![2]);
    }

    #[test]
    fn transmission_at_window_end_half_open() {
        // A PO exactly at window_start + TI is NOT covered (half-open).
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(0)], vec![ms(100)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false])
            .unwrap();
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn dense_devices_ride_first_transmission() {
        let ti = SimDuration::from_ms(100);
        // Device 0 sparse at t=500; device 1 dense (cycle <= TI).
        let events = vec![vec![ms(500)], vec![ms(5), ms(55), ms(105)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, true])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].covered, vec![0, 1]);
    }

    #[test]
    fn all_dense_single_transmission() {
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(5), ms(55)], vec![ms(20), ms(80)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[true, true])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].covered, vec![0, 1]);
    }

    #[test]
    fn sparse_device_without_events_is_uncoverable() {
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(5)], vec![]];
        assert_eq!(
            WindowCover::new(ti).solve(ms(0), &events, &[false, false]),
            None
        );
    }

    #[test]
    fn empty_problem_is_trivially_covered() {
        let slots = WindowCover::new(SimDuration::from_ms(10))
            .solve(ms(0), &[], &[])
            .unwrap();
        assert!(slots.is_empty());
    }

    #[test]
    fn greedy_prefers_bigger_window_then_earlier() {
        let ti = SimDuration::from_ms(100);
        // Window at 1000 covers 3 devices; window at 0 covers 2.
        let events = vec![
            vec![ms(0), ms(1000)],
            vec![ms(50), ms(1050)],
            vec![ms(1090)],
        ];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false, false])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].window_start, ms(1000));
        // Tie case: two windows covering 1 device each, earliest wins.
        let events2 = vec![vec![ms(100), ms(900)]];
        let slots2 = WindowCover::new(ti)
            .solve(ms(0), &events2, &[false])
            .unwrap();
        assert_eq!(slots2[0].window_start, ms(100));
    }

    #[test]
    fn every_device_covered_exactly_once_across_slots() {
        let ti = SimDuration::from_ms(50);
        let events: Vec<Vec<SimInstant>> = (0..40u64)
            .map(|d| (0..4).map(|k| ms(d * 37 + k * 400)).collect())
            .collect();
        let dense = vec![false; 40];
        let slots = WindowCover::new(ti).solve(ms(0), &events, &dense).unwrap();
        let mut seen = vec![0; 40];
        for s in &slots {
            for &d in &s.covered {
                seen[d] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        // And each covered device really has a PO in its slot's window.
        for s in &slots {
            for &d in &s.covered {
                assert!(events[d]
                    .iter()
                    .any(|&t| t >= s.window_start && t < s.transmit_at));
            }
        }
    }

    #[test]
    fn both_window_engines_match_reference_exactly() {
        // Dense/sparse mixtures, compared slot-for-slot, with the engine
        // pinned both ways (and the occupancy-dispatched default).
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..40 {
            let n = 1 + (next() % 30) as usize;
            let ti = SimDuration::from_ms(50 + next() % 500);
            let events: Vec<Vec<SimInstant>> = (0..n)
                .map(|_| {
                    let mut v: Vec<SimInstant> =
                        (0..1 + next() % 5).map(|_| ms(next() % 5_000)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let dense: Vec<bool> = (0..n).map(|_| next() % 4 == 0).collect();
            let solver = WindowCover::new(ti);
            let oracle = reference::window_cover_solve(ti, ms(0), &events, &dense);
            assert_eq!(
                solver.solve_incremental(ms(0), &events, &dense),
                oracle,
                "incremental, trial {trial}"
            );
            assert_eq!(
                solver.solve_sweep(ms(0), &events, &dense),
                oracle,
                "sweep, trial {trial}"
            );
            assert_eq!(
                solver.solve(ms(0), &events, &dense),
                oracle,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn arena_backed_solve_is_bit_identical_across_reuse() {
        // One arena serving solve after solve (the grouping service's
        // repair path) must reproduce the allocating entry point exactly,
        // including across instances of different sizes so stale capacity
        // can never leak into a later solve.
        let mut arena = KernelArena::new();
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..30 {
            let n = 1 + (next() % 40) as usize;
            let ti = SimDuration::from_ms(50 + next() % 400);
            let events: Vec<Vec<SimInstant>> = (0..n)
                .map(|_| {
                    let mut v: Vec<SimInstant> =
                        (0..1 + next() % 4).map(|_| ms(next() % 4_000)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let dense: Vec<bool> = (0..n).map(|_| next() % 5 == 0).collect();
            let solver = WindowCover::new(ti);
            assert_eq!(
                solver.solve_in(ms(0), &events, &dense, &mut arena),
                solver.solve(ms(0), &events, &dense),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn incremental_engine_handles_repeated_pos_within_one_window() {
        // Device 0 has two POs inside the same window; the distinct-gain
        // bookkeeping must count it once (merged position ranges) and the
        // tombstoned anchors must not resurface in later rounds.
        let ti = SimDuration::from_ms(100);
        let events = vec![
            vec![ms(10), ms(60)],            // twice in the first window
            vec![ms(40)],                    // shares that window
            vec![ms(500), ms(520), ms(540)], // its own later window
        ];
        let dense = [false, false, false];
        let solver = WindowCover::new(ti);
        let oracle = reference::window_cover_solve(ti, ms(0), &events, &dense);
        assert_eq!(solver.solve_incremental(ms(0), &events, &dense), oracle);
        let slots = oracle.unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].covered, vec![0, 1]);
    }

    #[test]
    fn incremental_engine_all_dense_and_empty_inputs() {
        let ti = SimDuration::from_ms(100);
        // Empty instance.
        assert_eq!(
            WindowCover::new(ti).solve_incremental(ms(0), &[], &[]),
            Some(vec![])
        );
        // All devices dense: one synthetic window at the horizon start.
        let events = vec![vec![ms(5)], vec![ms(20)]];
        let slots = WindowCover::new(ti)
            .solve_incremental(ms(0), &events, &[true, true])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].window_start, ms(0));
        // Sparse device without events stays uncoverable.
        assert_eq!(
            WindowCover::new(ti).solve_incremental(ms(0), &[vec![]], &[false]),
            None
        );
    }

    /// Deterministic LCG over random instances plus random positive costs.
    fn random_weighted_instance(
        next: &mut impl FnMut() -> usize,
        trial: usize,
    ) -> (usize, Vec<Vec<usize>>, Vec<u32>) {
        let n = 1 + next() % 80;
        let n_sets = 1 + next() % 40;
        let mut sets: Vec<Vec<usize>> = (0..n_sets)
            .map(|_| (0..1 + next() % 10).map(|_| next() % n).collect())
            .collect();
        if trial.is_multiple_of(2) {
            sets.push((0..n).collect()); // force coverability half the time
        }
        let costs: Vec<u32> = sets.iter().map(|_| 1 + (next() % 64) as u32).collect();
        (n, sets, costs)
    }

    #[test]
    fn weighted_with_unit_costs_is_bit_identical_to_unweighted() {
        // The core invariant: `gain/1` keys sort exactly like `gain` keys
        // (the fixed-point key degenerates to `gain << 32`), so every
        // round's pick — including tie rounds — must coincide.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut arena = KernelArena::new();
        for trial in 0..50 {
            let (n, sets, _) = random_weighted_instance(&mut next, trial);
            let unit = vec![1u32; sets.len()];
            assert_eq!(
                greedy_set_cover_weighted(n, &sets, &unit, 1, &mut arena),
                greedy_set_cover(n, &sets),
                "trial {trial}: n={n} sets={sets:?}"
            );
        }
    }

    #[test]
    fn weighted_solver_matches_reference_oracle() {
        let mut state = 0xABCD_EF01_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut arena = KernelArena::new();
        for trial in 0..50 {
            let (n, sets, costs) = random_weighted_instance(&mut next, trial);
            assert_eq!(
                greedy_set_cover_weighted(n, &sets, &costs, 1, &mut arena),
                reference::greedy_set_cover_weighted(n, &sets, &costs),
                "trial {trial}: n={n} sets={sets:?} costs={costs:?}"
            );
        }
    }

    #[test]
    fn weighted_equal_ratio_tie_storm_breaks_to_lowest_index() {
        // Every candidate has the identical ratio key in every round:
        // 64 singleton sets at equal cost, plus scaled duplicates
        // (gain 2 / cost 14 truncates to the same key as 1 / 7). The
        // selection must walk indices in ascending order regardless.
        let n = 64;
        let mut sets: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut costs = vec![7u32; n];
        let mut arena = KernelArena::new();
        let picks = greedy_set_cover_weighted(n, &sets, &costs, 1, &mut arena).unwrap();
        assert_eq!(picks, (0..n).collect::<Vec<_>>());
        // Scaled pairs: {2k, 2k+1} at cost 14 ties the singletons exactly
        // ((2<<32)/14 == (1<<32)/7) but sits at a higher index, so the
        // pair never wins a round and the pick order is unchanged.
        for k in 0..n / 2 {
            sets.push(vec![2 * k, 2 * k + 1]);
            costs.push(14);
        }
        let stormed = greedy_set_cover_weighted(n, &sets, &costs, 1, &mut arena).unwrap();
        assert_eq!(stormed, (0..n).collect::<Vec<_>>());
        assert_eq!(
            stormed,
            reference::greedy_set_cover_weighted(n, &sets, &costs).unwrap()
        );
    }

    #[test]
    fn weighted_prefers_cheap_cover_over_raw_gain() {
        // Count-greedy grabs the 3-element set; ratio-greedy covers the
        // same universe with the two cheap sets (total cost 2 vs 100).
        let sets = vec![vec![0, 1, 2], vec![0, 1], vec![2]];
        let costs = vec![100, 1, 1];
        let mut arena = KernelArena::new();
        assert_eq!(greedy_set_cover(3, &sets), Some(vec![0]));
        assert_eq!(
            greedy_set_cover_weighted(3, &sets, &costs, 1, &mut arena),
            Some(vec![1, 2])
        );
    }

    #[test]
    fn weighted_uncoverable_and_empty_edges() {
        let mut arena = KernelArena::new();
        assert_eq!(
            greedy_set_cover_weighted(2, &[vec![0]], &[3], 1, &mut arena),
            None
        );
        assert_eq!(
            greedy_set_cover_weighted(0, &[], &[], 1, &mut arena),
            Some(vec![])
        );
        // Empty sets never enter the heap whatever their cost.
        assert_eq!(
            greedy_set_cover_weighted(1, &[vec![], vec![0]], &[1, 9], 1, &mut arena),
            Some(vec![1])
        );
    }

    #[test]
    fn weighted_threads_are_bit_identical() {
        let (n, sets) = large_instance(0x00C0_FFEE);
        let costs: Vec<u32> = (0..sets.len()).map(|i| 1 + (i % 32) as u32).collect();
        let mut arena = KernelArena::new();
        let base = greedy_set_cover_weighted(n, &sets, &costs, 1, &mut arena);
        assert!(base.is_some());
        for threads in [2, 4, 8] {
            let mut fresh = KernelArena::new();
            assert_eq!(
                greedy_set_cover_weighted(n, &sets, &costs, threads, &mut fresh),
                base,
                "threads={threads}"
            );
        }
    }

    /// Naive weighted-window oracle: the same static anchor instance,
    /// solved by per-round full rescan with the documented fixed-point
    /// key and lowest-anchor tie law.
    fn naive_weighted_window(
        ti: SimDuration,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
        cost: &dyn Fn(&[usize]) -> u32,
    ) -> Option<Vec<CoverSlot>> {
        let n = events.len();
        if n == 0 {
            return Some(Vec::new());
        }
        for (evs, &is_dense) in events.iter().zip(dense) {
            if evs.is_empty() && !is_dense {
                return None;
            }
        }
        let mut flat: Vec<(SimInstant, usize)> = events
            .iter()
            .enumerate()
            .filter(|&(d, _)| !dense[d])
            .flat_map(|(d, evs)| evs.iter().map(move |&t| (t, d)))
            .collect();
        flat.sort_unstable();
        let mut anchors: Vec<SimInstant> = flat.iter().map(|&(t, _)| t).collect();
        anchors.dedup();
        let windows: Vec<(SimInstant, Vec<usize>, u32)> = anchors
            .iter()
            .map(|&a| {
                let mut members: Vec<usize> = flat
                    .iter()
                    .filter(|&&(t, _)| t >= a && t < a + ti)
                    .map(|&(_, d)| d)
                    .collect();
                let mut dedup = Vec::new();
                for d in members.drain(..) {
                    if !dedup.contains(&d) {
                        dedup.push(d);
                    }
                }
                let c = cost(&dedup);
                (a, dedup, c)
            })
            .collect();
        let mut covered = vec![false; n];
        let mut slots = Vec::new();
        while flat.iter().any(|&(_, d)| !covered[d]) {
            let mut best: Option<(u64, usize)> = None;
            for (i, (_, members, c)) in windows.iter().enumerate() {
                let gain = members.iter().filter(|&&d| !covered[d]).count() as u64;
                if gain == 0 {
                    continue;
                }
                let key = (gain << 32) / *c as u64;
                if best.is_none_or(|(bk, _)| key > bk) {
                    best = Some((key, i));
                }
            }
            let (_, w) = best.expect("some window gains");
            let mut newly: Vec<usize> = windows[w]
                .1
                .iter()
                .copied()
                .filter(|&d| !covered[d])
                .collect();
            newly.sort_unstable();
            for &d in &newly {
                covered[d] = true;
            }
            slots.push(CoverSlot {
                window_start: windows[w].0,
                transmit_at: windows[w].0 + ti,
                covered: newly,
            });
        }
        let dense_devices: Vec<usize> = (0..n).filter(|&d| dense[d]).collect();
        if !dense_devices.is_empty() {
            if let Some(first) = slots.first_mut() {
                first.covered.extend(dense_devices);
                first.covered.sort_unstable();
            } else {
                slots.push(CoverSlot {
                    window_start: horizon_start,
                    transmit_at: horizon_start + ti,
                    covered: dense_devices,
                });
            }
        }
        Some(slots)
    }

    #[test]
    fn solve_weighted_matches_naive_oracle() {
        // Random dense/sparse mixtures with per-device weights (window
        // cost = heaviest member, the DR-SC airtime shape) AND with unit
        // costs, both compared slot-for-slot against the rescan oracle.
        let mut arena = KernelArena::new();
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..40 {
            let n = 1 + (next() % 30) as usize;
            let ti = SimDuration::from_ms(50 + next() % 500);
            let events: Vec<Vec<SimInstant>> = (0..n)
                .map(|_| {
                    let mut v: Vec<SimInstant> =
                        (0..1 + next() % 5).map(|_| ms(next() % 5_000)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let dense: Vec<bool> = (0..n).map(|_| next() % 4 == 0).collect();
            let weights: Vec<u32> = (0..n).map(|_| 1 + (next() % 32) as u32).collect();
            let solver = WindowCover::new(ti);
            let airtime =
                |members: &[usize]| members.iter().map(|&d| weights[d]).max().unwrap_or(1);
            assert_eq!(
                solver.solve_weighted(ms(0), &events, &dense, airtime, &mut arena),
                naive_weighted_window(ti, ms(0), &events, &dense, &airtime),
                "weighted, trial {trial}"
            );
            assert_eq!(
                solver.solve_weighted(ms(0), &events, &dense, |_| 1, &mut arena),
                naive_weighted_window(ti, ms(0), &events, &dense, &|_| 1),
                "unit-cost, trial {trial}"
            );
        }
        // Edge parity with `solve`: empty instance, all-dense synthesis,
        // uncoverable sparse device (none of these involve anchor ties).
        let ti = SimDuration::from_ms(100);
        let solver = WindowCover::new(ti);
        assert_eq!(
            solver.solve_weighted(ms(0), &[], &[], |_| 1, &mut arena),
            Some(vec![])
        );
        let events = vec![vec![ms(5)], vec![ms(20)]];
        assert_eq!(
            solver.solve_weighted(ms(0), &events, &[true, true], |_| 1, &mut arena),
            solver.solve(ms(0), &events, &[true, true])
        );
        assert_eq!(
            solver.solve_weighted(ms(0), &[vec![]], &[false], |_| 1, &mut arena),
            None
        );
    }

    #[test]
    fn solve_weighted_routes_shallow_devices_around_deep_windows() {
        // Devices 2 and 3 are "deep" (any window containing one costs 32);
        // 0 and 1 are cheap. Count-greedy's gain ties resolve to the two
        // early mixed windows ({0,2} then {1,3}): two deep transmissions,
        // static cost 64. Ratio-greedy takes the late cheap window {0,1}
        // first, then folds both deep devices into ONE deep window at
        // t=1000: static cost 33.
        let ti = SimDuration::from_ms(100);
        let events = vec![
            vec![ms(10), ms(400)],   // 0: shallow
            vec![ms(200), ms(410)],  // 1: shallow
            vec![ms(60), ms(1000)],  // 2: deep
            vec![ms(260), ms(1010)], // 3: deep
        ];
        let dense = [false; 4];
        let cost = |members: &[usize]| {
            if members.iter().any(|&d| d >= 2) {
                32
            } else {
                1
            }
        };
        let solver = WindowCover::new(ti);
        let mut arena = KernelArena::new();
        let unweighted = solver.solve(ms(0), &events, &dense).unwrap();
        let weighted = solver
            .solve_weighted(ms(0), &events, &dense, cost, &mut arena)
            .unwrap();
        assert_eq!(
            unweighted
                .iter()
                .map(|s| s.covered.clone())
                .collect::<Vec<_>>(),
            vec![vec![0, 2], vec![1, 3]]
        );
        assert_eq!(
            weighted
                .iter()
                .map(|s| s.covered.clone())
                .collect::<Vec<_>>(),
            vec![vec![0, 1], vec![2, 3]]
        );
        // Price each plan by window membership (every device with a PO in
        // the slot's window, covered or not — the static window cost).
        let static_cost = |slots: &[CoverSlot]| -> u32 {
            slots
                .iter()
                .map(|s| {
                    let members: Vec<usize> = (0..events.len())
                        .filter(|&d| {
                            events[d]
                                .iter()
                                .any(|&t| t >= s.window_start && t < s.transmit_at)
                        })
                        .collect();
                    cost(&members)
                })
                .sum()
        };
        assert_eq!(static_cost(&unweighted), 64);
        assert_eq!(static_cost(&weighted), 33);
        // And the weighted slots still cover everyone exactly once.
        let mut seen = vec![0u32; events.len()];
        for s in &weighted {
            for &d in &s.covered {
                seen[d] += 1;
            }
        }
        assert_eq!(seen, vec![1, 1, 1, 1]);
    }
}
