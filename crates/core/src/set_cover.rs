//! Set-cover solvers for the DR-SC mechanism.
//!
//! The paper (Sec. III-A, Fig. 3) formulates DR-SC as a set cover: the
//! universe is the device group, and each candidate transmission window of
//! inactivity-timer length `TI` covers the devices with a paging occasion
//! inside it. Exact minimum set cover is NP-hard; following the paper we
//! use Chvátal's greedy heuristic (pick the window covering the most
//! still-uncovered devices, repeat), which guarantees an `H(n)`
//! approximation factor.
//!
//! Two solvers are provided:
//!
//! * [`greedy_set_cover`] — the textbook greedy over explicit sets (used
//!   for the Fig. 3 bipartite instance and for cross-checking),
//! * [`WindowCover`] — the specialized timeline solver: it slides a
//!   `TI`-length window over the merged PO event list, exploiting two
//!   structural facts: (a) an optimal window can always be anchored to
//!   start at some PO, and (b) a device whose cycle is at most `TI` has a
//!   PO in *every* window, so it never influences the argmax and can be
//!   attached to the first selected transmission.
//!
//! # Performance
//!
//! Both solvers run their greedy rounds allocation-free. The generic
//! greedy packs each set into `u64` bitset rows once up front, so a
//! round's gain computation is a `popcount(set & !covered)` sweep instead
//! of a per-element tag-array scan. The timeline solver hoists its
//! per-round counting buffers into scratch storage sized once per call;
//! its two-pointer sweep is additionally self-cleaning (every event is
//! incremented once as a window member and decremented once as an anchor),
//! so the counter array needs no per-round reset. The original
//! straightforward implementations are retained verbatim in [`reference`]
//! as the oracle for equivalence tests
//! (`tests/setcover_properties.rs`) — both solvers must produce
//! *identical* picks and slots, not merely equally sized covers.

use nbiot_time::{SimDuration, SimInstant};

/// Greedy (Chvátal) set cover over explicit sets.
///
/// `universe_size` elements are labelled `0..universe_size`; `sets[i]`
/// lists the elements covered by set `i`. Returns the indices of the
/// selected sets in selection order, or `None` when the union of all sets
/// does not cover the universe. Ties are broken towards the lowest set
/// index, making the result deterministic.
///
/// # Panics
///
/// Panics when a set contains an element `>= universe_size`.
///
/// # Example
///
/// The paper's Fig. 3 instance: the optimal solution is frames 4 and 5.
///
/// ```
/// use nbiot_grouping::set_cover::greedy_set_cover;
///
/// // frames 1..=6 as sets of devices 0..5
/// let frames = vec![
///     vec![0],       // frame 1: device 1
///     vec![1],       // frame 2: device 2
///     vec![3],       // frame 3: device 4
///     vec![0, 1, 2], // frame 4: devices 1,2,3
///     vec![3, 4],    // frame 5: devices 4,5
///     vec![2],       // frame 6: device 3
/// ];
/// let picked = greedy_set_cover(5, &frames).expect("coverable");
/// assert_eq!(picked, vec![3, 4]); // frames 4 and 5
/// ```
pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
    if universe_size == 0 {
        return Some(Vec::new());
    }
    let words = universe_size.div_ceil(64);
    // Pack each set into a bitset row once; duplicates collapse for free,
    // which is exactly the unique-gain semantics of the reference solver.
    let mut rows = vec![0u64; sets.len() * words];
    for (i, set) in sets.iter().enumerate() {
        let row = &mut rows[i * words..(i + 1) * words];
        for &e in set {
            assert!(
                e < universe_size,
                "set {i} contains element {e} outside universe 0..{universe_size}"
            );
            row[e / 64] |= 1 << (e % 64);
        }
    }
    let mut covered = vec![0u64; words];
    let mut remaining = universe_size;
    let mut picked = Vec::new();
    while remaining > 0 {
        let mut best_gain = 0usize;
        let mut best_idx = usize::MAX;
        for (i, row) in rows.chunks_exact(words).enumerate() {
            let gain = row
                .iter()
                .zip(&covered)
                .map(|(r, c)| (r & !c).count_ones() as usize)
                .sum::<usize>();
            if gain > best_gain {
                best_gain = gain;
                best_idx = i;
            }
        }
        if best_idx == usize::MAX {
            return None; // no set adds anything, yet elements remain
        }
        picked.push(best_idx);
        for (c, r) in covered
            .iter_mut()
            .zip(&rows[best_idx * words..(best_idx + 1) * words])
        {
            *c |= r;
        }
        remaining -= best_gain;
    }
    Some(picked)
}

/// One selected transmission window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverSlot {
    /// Window start (anchored at a PO).
    pub window_start: SimInstant,
    /// Transmission instant: the end of the window (`start + TI`), the
    /// "last frame of t_o" in the paper.
    pub transmit_at: SimInstant,
    /// Indices (into the solver's device list) newly covered by this
    /// transmission.
    pub covered: Vec<usize>,
}

/// The greedy timeline solver for DR-SC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCover {
    ti: SimDuration,
}

/// Reusable buffers for [`WindowCover::solve`]: sized once per call,
/// reused across greedy rounds so the rounds allocate nothing.
#[derive(Debug, Default)]
struct SolveScratch {
    /// Flat, time-sorted `(po, device)` events over uncovered sparse
    /// devices; compacted in place as devices get covered.
    flat: Vec<(SimInstant, usize)>,
    /// Per-device occurrence count inside the sliding window.
    count: Vec<u32>,
    /// Per-device covered flag.
    covered: Vec<bool>,
}

impl WindowCover {
    /// Creates a solver for windows of inactivity-timer length `ti`.
    pub fn new(ti: SimDuration) -> WindowCover {
        WindowCover { ti }
    }

    /// Solves the cover.
    ///
    /// * `horizon_start` — the beginning of the search horizon (used to
    ///   anchor the single window when *every* device is dense),
    /// * `events` — per-device sorted PO instants within the search
    ///   horizon; devices with an empty list are only coverable when
    ///   `dense` (see below),
    /// * `dense` — per-device flag: `true` when the device's paging cycle
    ///   is at most `TI`, meaning every window contains one of its POs.
    ///
    /// Returns the selected transmissions in selection order, or `None`
    /// when some non-dense device has no PO events (it could never be
    /// covered).
    ///
    /// # Panics
    ///
    /// Panics when `events` and `dense` have different lengths.
    pub fn solve(
        &self,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
    ) -> Option<Vec<CoverSlot>> {
        assert_eq!(events.len(), dense.len(), "events/dense length mismatch");
        let n = events.len();
        if n == 0 {
            return Some(Vec::new());
        }
        for (evs, &is_dense) in events.iter().zip(dense) {
            if evs.is_empty() && !is_dense {
                return None;
            }
        }

        let mut scratch = SolveScratch::default();
        // Flat, time-sorted (po, device) list over sparse devices only.
        scratch.flat.reserve(
            events
                .iter()
                .zip(dense)
                .filter(|(_, &d)| !d)
                .map(|(e, _)| e.len())
                .sum(),
        );
        for (d, evs) in events.iter().enumerate() {
            if !dense[d] {
                scratch.flat.extend(evs.iter().map(|&t| (t, d)));
            }
        }
        scratch.flat.sort_unstable();
        scratch.count.resize(n, 0);
        scratch.covered.resize(n, false);

        let mut uncovered_sparse = dense.iter().filter(|&&d| !d).count();
        let mut slots: Vec<CoverSlot> = Vec::new();

        while uncovered_sparse > 0 {
            let slot = self.greedy_round(&mut scratch);
            uncovered_sparse -= slot.covered.len();
            slots.push(slot);
        }

        // Dense devices ride the first transmission; if there is none
        // (everyone is dense), create one window at the earliest possible
        // position.
        let dense_devices: Vec<usize> = (0..n)
            .filter(|&d| dense[d] && !scratch.covered[d])
            .collect();
        if !dense_devices.is_empty() {
            for &d in &dense_devices {
                scratch.covered[d] = true;
            }
            if let Some(first) = slots.first_mut() {
                first.covered.extend(dense_devices);
                first.covered.sort_unstable();
            } else {
                let window_start = horizon_start;
                slots.push(CoverSlot {
                    window_start,
                    transmit_at: window_start + self.ti,
                    covered: dense_devices,
                });
            }
        }
        debug_assert!(scratch.covered.iter().all(|&c| c));
        Some(slots)
    }

    /// One greedy round: a single two-pointer sweep over the remaining
    /// events picks the best window anchor, then the newly covered devices
    /// are extracted and their events compacted away. Allocates only the
    /// returned slot's `covered` list.
    fn greedy_round(&self, scratch: &mut SolveScratch) -> CoverSlot {
        let SolveScratch {
            flat,
            count,
            covered,
        } = scratch;
        // The sweep below is self-cleaning: every event is counted once
        // when the right pointer passes it and discounted once when it
        // becomes the anchor, so `count` is all-zero between rounds.
        debug_assert!(count.iter().all(|&c| c == 0));

        // For each window anchored at event i, count distinct uncovered
        // devices with a PO in [flat[i].0, flat[i].0 + TI).
        let mut distinct = 0usize;
        let mut best_gain = 0usize;
        let mut best_anchor = 0usize;
        let mut j = 0usize;
        for i in 0..flat.len() {
            let (start, _) = flat[i];
            let end = start + self.ti;
            while j < flat.len() && flat[j].0 < end {
                let d = flat[j].1;
                if !covered[d] {
                    if count[d] == 0 {
                        distinct += 1;
                    }
                    count[d] += 1;
                }
                j += 1;
            }
            if distinct > best_gain {
                best_gain = distinct;
                best_anchor = i;
            }
            // Remove the anchor event before moving on.
            let d = flat[i].1;
            if !covered[d] {
                count[d] -= 1;
                if count[d] == 0 {
                    distinct -= 1;
                }
            }
        }
        debug_assert!(best_gain > 0, "uncovered sparse device without events");
        let window_start = flat[best_anchor].0;
        let transmit_at = window_start + self.ti;
        let mut newly: Vec<usize> = flat
            .iter()
            .skip(best_anchor)
            .take_while(|(t, _)| *t < transmit_at)
            .filter(|(_, d)| !covered[*d])
            .map(|&(_, d)| d)
            .collect();
        newly.sort_unstable();
        newly.dedup();
        for &d in &newly {
            covered[d] = true;
        }
        // Compact spent events in place so later sweeps stay cheap.
        flat.retain(|&(_, d)| !covered[d]);
        CoverSlot {
            window_start,
            transmit_at,
            covered: newly,
        }
    }
}

/// The original straightforward solvers, retained verbatim as the oracle
/// for equivalence testing of the bitset/scratch fast paths.
pub mod reference {
    use super::{CoverSlot, SimDuration, SimInstant};

    /// Reference greedy set cover: boolean coverage vector plus a tag
    /// array for unique-gain counting (the pre-bitset implementation).
    pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
        let mut covered = vec![false; universe_size];
        let mut remaining = universe_size;
        let mut picked = Vec::new();
        // Gains must count *unique* uncovered elements, or sets with
        // repeated entries would corrupt the bookkeeping.
        let mut seen = vec![usize::MAX; universe_size];
        let mut unique_gain = |set: &[usize], covered: &[bool], tag: usize| {
            let mut gain = 0;
            for &e in set {
                if !covered[e] && seen[e] != tag {
                    seen[e] = tag;
                    gain += 1;
                }
            }
            gain
        };
        let mut round = 0usize;
        while remaining > 0 {
            let mut best: Option<(usize, usize)> = None; // (gain, set index)
            for (i, set) in sets.iter().enumerate() {
                let gain = unique_gain(set, &covered, round * sets.len() + i);
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, i));
                }
            }
            let (gain, idx) = best?;
            picked.push(idx);
            for &e in &sets[idx] {
                covered[e] = true;
            }
            remaining -= gain;
            round += 1;
        }
        Some(picked)
    }

    /// Reference timeline solver: allocates its counting buffer afresh
    /// every round (the pre-scratch implementation). Same greedy, same
    /// tie-breaking, same output.
    pub fn window_cover_solve(
        ti: SimDuration,
        horizon_start: SimInstant,
        events: &[Vec<SimInstant>],
        dense: &[bool],
    ) -> Option<Vec<CoverSlot>> {
        assert_eq!(events.len(), dense.len(), "events/dense length mismatch");
        let n = events.len();
        if n == 0 {
            return Some(Vec::new());
        }
        for (evs, &is_dense) in events.iter().zip(dense) {
            if evs.is_empty() && !is_dense {
                return None;
            }
        }

        // Flat, time-sorted (po, device) list over sparse devices only.
        let mut flat: Vec<(SimInstant, usize)> = events
            .iter()
            .enumerate()
            .filter(|(d, _)| !dense[*d])
            .flat_map(|(d, evs)| evs.iter().map(move |&t| (t, d)))
            .collect();
        flat.sort_unstable();

        let mut covered = vec![false; n];
        let mut uncovered_sparse = dense.iter().filter(|&&d| !d).count();
        let mut slots: Vec<CoverSlot> = Vec::new();

        while uncovered_sparse > 0 {
            // One two-pointer sweep: for each window anchored at event i,
            // count distinct uncovered devices with a PO in
            // [flat[i].0, flat[i].0 + TI).
            let mut count = vec![0u32; n];
            let mut distinct = 0usize;
            let mut best_gain = 0usize;
            let mut best_anchor = 0usize;
            let mut j = 0usize;
            for i in 0..flat.len() {
                let (start, _) = flat[i];
                let end = start + ti;
                while j < flat.len() && flat[j].0 < end {
                    let d = flat[j].1;
                    if !covered[d] {
                        if count[d] == 0 {
                            distinct += 1;
                        }
                        count[d] += 1;
                    }
                    j += 1;
                }
                if distinct > best_gain {
                    best_gain = distinct;
                    best_anchor = i;
                }
                // Remove the anchor event before moving on.
                let d = flat[i].1;
                if !covered[d] {
                    count[d] -= 1;
                    if count[d] == 0 {
                        distinct -= 1;
                    }
                }
            }
            debug_assert!(best_gain > 0, "uncovered sparse device without events");
            let window_start = flat[best_anchor].0;
            let transmit_at = window_start + ti;
            let mut newly: Vec<usize> = flat
                .iter()
                .skip(best_anchor)
                .take_while(|(t, _)| *t < transmit_at)
                .filter(|(_, d)| !covered[*d])
                .map(|&(_, d)| d)
                .collect();
            newly.sort_unstable();
            newly.dedup();
            for &d in &newly {
                covered[d] = true;
            }
            uncovered_sparse -= newly.len();
            flat.retain(|&(_, d)| !covered[d]);
            slots.push(CoverSlot {
                window_start,
                transmit_at,
                covered: newly,
            });
        }

        // Dense devices ride the first transmission; if there is none
        // (everyone is dense), create one window at the earliest possible
        // position.
        let dense_devices: Vec<usize> = (0..n).filter(|&d| dense[d] && !covered[d]).collect();
        if !dense_devices.is_empty() {
            if let Some(first) = slots.first_mut() {
                first.covered.extend(dense_devices.iter().copied());
                first.covered.sort_unstable();
            } else {
                let window_start = horizon_start;
                slots.push(CoverSlot {
                    window_start,
                    transmit_at: window_start + ti,
                    covered: dense_devices.clone(),
                });
            }
            for d in dense_devices {
                covered[d] = true;
            }
        }
        debug_assert!(covered.iter().all(|&c| c));
        Some(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimInstant {
        SimInstant::from_ms(v)
    }

    #[test]
    fn fig3_instance_optimal() {
        // Paper Fig. 3: greedy finds the optimal cover {frame 4, frame 5}.
        let frames = vec![
            vec![0],
            vec![1],
            vec![3],
            vec![0, 1, 2],
            vec![3, 4],
            vec![2],
        ];
        assert_eq!(greedy_set_cover(5, &frames), Some(vec![3, 4]));
    }

    #[test]
    fn generic_greedy_reports_uncoverable() {
        assert_eq!(greedy_set_cover(2, &[vec![0]]), None);
        assert_eq!(greedy_set_cover(0, &[]), Some(vec![]));
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Classic greedy trap: optimal is 2 sets, greedy takes 3.
        let sets = vec![
            vec![0, 1, 2, 3],          // greedy grabs this (size 4)
            vec![0, 1, 2, 3, 4, 5, 6], // hmm — make a real trap below
        ];
        let picked = greedy_set_cover(7, &sets).unwrap();
        // Whatever greedy does, the result must cover everything.
        let mut covered = [false; 7];
        for i in &picked {
            for &e in &sets[*i] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn duplicate_elements_count_once() {
        // A set listing one element many times must not beat a genuine
        // two-element set.
        let sets = vec![vec![0, 0, 0, 0], vec![1, 2]];
        let picked = greedy_set_cover(3, &sets).unwrap();
        assert_eq!(picked, vec![1, 0]);
    }

    #[test]
    fn wide_universe_crosses_word_boundaries() {
        // 200 elements span four u64 words; cover with overlapping strides.
        let sets: Vec<Vec<usize>> = (0..20)
            .map(|k| (k * 10..k * 10 + 15).filter(|&e| e < 200).collect())
            .collect();
        let picked = greedy_set_cover(200, &sets).unwrap();
        let mut covered = [false; 200];
        for i in &picked {
            for &e in &sets[*i] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(picked, reference::greedy_set_cover(200, &sets).unwrap());
    }

    #[test]
    fn bitset_greedy_matches_reference_exactly() {
        // Deterministic pseudo-random instances, compared pick-for-pick.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..50 {
            let n = 1 + next() % 80;
            let n_sets = 1 + next() % 40;
            let mut sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| (0..1 + next() % 10).map(|_| next() % n).collect())
                .collect();
            if trial % 2 == 0 {
                sets.push((0..n).collect()); // force coverability half the time
            }
            assert_eq!(
                greedy_set_cover(n, &sets),
                reference::greedy_set_cover(n, &sets),
                "trial {trial}: n={n} sets={sets:?}"
            );
        }
    }

    #[test]
    fn fig2a_single_shared_window() {
        // Fig. 2(a): POs of devices 2 and 3 fall within TI of device 1's PO
        // -> one transmission covers all three.
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(10)], vec![ms(50)], vec![ms(90)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false, false])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].covered, vec![0, 1, 2]);
        assert_eq!(slots[0].window_start, ms(10));
        assert_eq!(slots[0].transmit_at, ms(110));
    }

    #[test]
    fn fig2b_second_transmission_needed() {
        // Fig. 2(b): device 3's PO is too far -> a second transmission.
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(10)], vec![ms(50)], vec![ms(200)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false, false])
            .unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].covered, vec![0, 1]);
        assert_eq!(slots[1].covered, vec![2]);
    }

    #[test]
    fn transmission_at_window_end_half_open() {
        // A PO exactly at window_start + TI is NOT covered (half-open).
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(0)], vec![ms(100)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false])
            .unwrap();
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn dense_devices_ride_first_transmission() {
        let ti = SimDuration::from_ms(100);
        // Device 0 sparse at t=500; device 1 dense (cycle <= TI).
        let events = vec![vec![ms(500)], vec![ms(5), ms(55), ms(105)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, true])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].covered, vec![0, 1]);
    }

    #[test]
    fn all_dense_single_transmission() {
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(5), ms(55)], vec![ms(20), ms(80)]];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[true, true])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].covered, vec![0, 1]);
    }

    #[test]
    fn sparse_device_without_events_is_uncoverable() {
        let ti = SimDuration::from_ms(100);
        let events = vec![vec![ms(5)], vec![]];
        assert_eq!(
            WindowCover::new(ti).solve(ms(0), &events, &[false, false]),
            None
        );
    }

    #[test]
    fn empty_problem_is_trivially_covered() {
        let slots = WindowCover::new(SimDuration::from_ms(10))
            .solve(ms(0), &[], &[])
            .unwrap();
        assert!(slots.is_empty());
    }

    #[test]
    fn greedy_prefers_bigger_window_then_earlier() {
        let ti = SimDuration::from_ms(100);
        // Window at 1000 covers 3 devices; window at 0 covers 2.
        let events = vec![
            vec![ms(0), ms(1000)],
            vec![ms(50), ms(1050)],
            vec![ms(1090)],
        ];
        let slots = WindowCover::new(ti)
            .solve(ms(0), &events, &[false, false, false])
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].window_start, ms(1000));
        // Tie case: two windows covering 1 device each, earliest wins.
        let events2 = vec![vec![ms(100), ms(900)]];
        let slots2 = WindowCover::new(ti)
            .solve(ms(0), &events2, &[false])
            .unwrap();
        assert_eq!(slots2[0].window_start, ms(100));
    }

    #[test]
    fn every_device_covered_exactly_once_across_slots() {
        let ti = SimDuration::from_ms(50);
        let events: Vec<Vec<SimInstant>> = (0..40u64)
            .map(|d| (0..4).map(|k| ms(d * 37 + k * 400)).collect())
            .collect();
        let dense = vec![false; 40];
        let slots = WindowCover::new(ti).solve(ms(0), &events, &dense).unwrap();
        let mut seen = vec![0; 40];
        for s in &slots {
            for &d in &s.covered {
                seen[d] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        // And each covered device really has a PO in its slot's window.
        for s in &slots {
            for &d in &s.covered {
                assert!(events[d]
                    .iter()
                    .any(|&t| t >= s.window_start && t < s.transmit_at));
            }
        }
    }

    #[test]
    fn scratch_solver_matches_reference_exactly() {
        // Dense/sparse mixtures, compared slot-for-slot.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..40 {
            let n = 1 + (next() % 30) as usize;
            let ti = SimDuration::from_ms(50 + next() % 500);
            let events: Vec<Vec<SimInstant>> = (0..n)
                .map(|_| {
                    let mut v: Vec<SimInstant> =
                        (0..1 + next() % 5).map(|_| ms(next() % 5_000)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let dense: Vec<bool> = (0..n).map(|_| next() % 4 == 0).collect();
            assert_eq!(
                WindowCover::new(ti).solve(ms(0), &events, &dense),
                reference::window_cover_solve(ti, ms(0), &events, &dense),
                "trial {trial}"
            );
        }
    }
}
