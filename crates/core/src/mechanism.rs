//! The grouping-mechanism abstraction.

use core::fmt;

use rand::RngCore;

use crate::{GroupingError, GroupingInput, MulticastPlan};

/// A device grouping/synchronization mechanism for multicast delivery.
///
/// Implementations are stateless planners: given the device group, their
/// paging schedules and the parameters, they emit a [`MulticastPlan`].
/// Randomness (e.g. DR-SI's T322 draws) comes exclusively from the passed
/// RNG, keeping plans reproducible.
pub trait GroupingMechanism {
    /// Short display name (e.g. `"DR-SC"`). Owned because parameterized
    /// mechanisms (e.g. `DR-SC-tabu(64)`) bake their settings into it.
    fn name(&self) -> String;

    /// Whether the mechanism uses only 3GPP-standard signalling.
    fn is_standards_compliant(&self) -> bool;

    /// Computes the multicast plan for `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`GroupingError`] when the group cannot be served (see the
    /// individual mechanisms for their feasibility conditions).
    fn plan(
        &self,
        input: &GroupingInput,
        rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError>;
}

/// Enumeration of the built-in mechanisms, for sweeps and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MechanismKind {
    /// DRX Respecting, Standards Compliant (greedy set cover).
    DrSc,
    /// DR-SC plus an anytime tabu-improvement pass with the given
    /// iteration budget (`DR-SC-tabu(64)`; budget 0 is plain greedy).
    DrScTabu(u32),
    /// Airtime-weighted DR-SC: the cover is priced by per-window NPDSCH
    /// block airtime (deepest coverage class among the members).
    DrScWeighted,
    /// DRX Adjusting, Standards Compliant (DRX adaptation).
    DaSc,
    /// DRX Respecting, Standards Incompliant (paging extension + T322).
    DrSi,
    /// Per-device unicast baseline.
    Unicast,
    /// SC-PTM baseline.
    ScPtm,
}

impl MechanismKind {
    /// The three mechanisms of the paper, in presentation order.
    pub const PAPER_MECHANISMS: [MechanismKind; 3] = [
        MechanismKind::DrSc,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
    ];

    /// All built-in mechanisms including baselines (the tabu entry uses
    /// [`crate::DEFAULT_TABU_BUDGET`]).
    pub const ALL: [MechanismKind; 7] = [
        MechanismKind::DrSc,
        MechanismKind::DrScTabu(crate::DEFAULT_TABU_BUDGET),
        MechanismKind::DrScWeighted,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
        MechanismKind::Unicast,
        MechanismKind::ScPtm,
    ];

    /// Resolves a mechanism from its display name (`"DR-SC"`,
    /// `"DR-SC-weighted"`, `"DA-SC"`, `"DR-SI"`, `"Unicast"`, `"SC-PTM"`),
    /// case-insensitively.
    /// `"DR-SC-tabu(N)"` resolves for any budget `N`; a bare
    /// `"DR-SC-tabu"` gets [`crate::DEFAULT_TABU_BUDGET`].
    ///
    /// Returns `None` for unknown names; CLI callers that surface errors
    /// should list [`MechanismKind::ALL`].
    pub fn by_name(name: &str) -> Option<MechanismKind> {
        let lower = name.trim().to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("dr-sc-tabu") {
            return match rest {
                "" => Some(MechanismKind::DrScTabu(crate::DEFAULT_TABU_BUDGET)),
                _ => rest
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .and_then(|n| n.parse().ok())
                    .map(MechanismKind::DrScTabu),
            };
        }
        MechanismKind::ALL
            .into_iter()
            .find(|k| k.to_string().eq_ignore_ascii_case(name))
    }

    /// Parses a comma-separated mechanism set (e.g. `"DR-SC,DA-SC"`),
    /// preserving order.
    ///
    /// # Errors
    ///
    /// Returns the first unresolvable name.
    pub fn parse_set(list: &str) -> Result<Vec<MechanismKind>, String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| MechanismKind::by_name(name).ok_or_else(|| name.to_string()))
            .collect()
    }

    /// Instantiates the mechanism with default settings.
    pub fn instantiate(self) -> Box<dyn GroupingMechanism> {
        match self {
            MechanismKind::DrSc => Box::new(crate::DrSc::default()),
            MechanismKind::DrScTabu(budget) => Box::new(crate::DrScTabu::new(budget)),
            MechanismKind::DrScWeighted => Box::new(crate::DrScWeighted::default()),
            MechanismKind::DaSc => Box::new(crate::DaSc::default()),
            MechanismKind::DrSi => Box::new(crate::DrSi::default()),
            MechanismKind::Unicast => Box::new(crate::Unicast),
            MechanismKind::ScPtm => Box::new(crate::ScPtm::default()),
        }
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismKind::DrSc => f.write_str("DR-SC"),
            MechanismKind::DrScTabu(budget) => write!(f, "DR-SC-tabu({budget})"),
            MechanismKind::DrScWeighted => f.write_str("DR-SC-weighted"),
            MechanismKind::DaSc => f.write_str("DA-SC"),
            MechanismKind::DrSi => f.write_str("DR-SI"),
            MechanismKind::Unicast => f.write_str("Unicast"),
            MechanismKind::ScPtm => f.write_str("SC-PTM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_matches_names() {
        for kind in MechanismKind::ALL {
            let mech = kind.instantiate();
            assert_eq!(mech.name(), kind.to_string());
        }
    }

    #[test]
    fn by_name_roundtrips_and_ignores_case() {
        for kind in MechanismKind::ALL {
            assert_eq!(MechanismKind::by_name(&kind.to_string()), Some(kind));
            assert_eq!(
                MechanismKind::by_name(&kind.to_string().to_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(MechanismKind::by_name("DR-XX"), None);
    }

    #[test]
    fn tabu_budget_parses_for_any_value() {
        assert_eq!(
            MechanismKind::by_name("DR-SC-tabu(128)"),
            Some(MechanismKind::DrScTabu(128))
        );
        assert_eq!(
            MechanismKind::by_name("dr-sc-tabu(0)"),
            Some(MechanismKind::DrScTabu(0))
        );
        assert_eq!(
            MechanismKind::by_name("DR-SC-tabu"),
            Some(MechanismKind::DrScTabu(crate::DEFAULT_TABU_BUDGET))
        );
        assert_eq!(MechanismKind::by_name("DR-SC-tabu(x)"), None);
        assert_eq!(MechanismKind::by_name("DR-SC-tabu(3"), None);
    }

    #[test]
    fn parse_set_preserves_order_and_reports_bad_names() {
        assert_eq!(
            MechanismKind::parse_set("dr-si, Unicast,DR-SC"),
            Ok(vec![
                MechanismKind::DrSi,
                MechanismKind::Unicast,
                MechanismKind::DrSc
            ])
        );
        assert_eq!(
            MechanismKind::parse_set("DR-SC,bogus,DA-SC"),
            Err("bogus".to_string())
        );
    }

    #[test]
    fn compliance_flags_match_paper() {
        assert!(MechanismKind::DrSc.instantiate().is_standards_compliant());
        assert!(MechanismKind::DrScTabu(64)
            .instantiate()
            .is_standards_compliant());
        assert!(MechanismKind::DrScWeighted
            .instantiate()
            .is_standards_compliant());
        assert!(MechanismKind::DaSc.instantiate().is_standards_compliant());
        assert!(!MechanismKind::DrSi.instantiate().is_standards_compliant());
        assert!(MechanismKind::Unicast
            .instantiate()
            .is_standards_compliant());
        assert!(MechanismKind::ScPtm.instantiate().is_standards_compliant());
    }
}
