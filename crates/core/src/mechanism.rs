//! The grouping-mechanism abstraction.

use core::fmt;

use rand::RngCore;

use crate::{GroupingError, GroupingInput, MulticastPlan};

/// A device grouping/synchronization mechanism for multicast delivery.
///
/// Implementations are stateless planners: given the device group, their
/// paging schedules and the parameters, they emit a [`MulticastPlan`].
/// Randomness (e.g. DR-SI's T322 draws) comes exclusively from the passed
/// RNG, keeping plans reproducible.
pub trait GroupingMechanism {
    /// Short display name (e.g. `"DR-SC"`).
    fn name(&self) -> &'static str;

    /// Whether the mechanism uses only 3GPP-standard signalling.
    fn is_standards_compliant(&self) -> bool;

    /// Computes the multicast plan for `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`GroupingError`] when the group cannot be served (see the
    /// individual mechanisms for their feasibility conditions).
    fn plan(
        &self,
        input: &GroupingInput,
        rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError>;
}

/// Enumeration of the built-in mechanisms, for sweeps and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MechanismKind {
    /// DRX Respecting, Standards Compliant (greedy set cover).
    DrSc,
    /// DRX Adjusting, Standards Compliant (DRX adaptation).
    DaSc,
    /// DRX Respecting, Standards Incompliant (paging extension + T322).
    DrSi,
    /// Per-device unicast baseline.
    Unicast,
    /// SC-PTM baseline.
    ScPtm,
}

impl MechanismKind {
    /// The three mechanisms of the paper, in presentation order.
    pub const PAPER_MECHANISMS: [MechanismKind; 3] = [
        MechanismKind::DrSc,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
    ];

    /// All built-in mechanisms including baselines.
    pub const ALL: [MechanismKind; 5] = [
        MechanismKind::DrSc,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
        MechanismKind::Unicast,
        MechanismKind::ScPtm,
    ];

    /// Resolves a mechanism from its display name (`"DR-SC"`, `"DA-SC"`,
    /// `"DR-SI"`, `"Unicast"`, `"SC-PTM"`), case-insensitively.
    ///
    /// Returns `None` for unknown names; CLI callers that surface errors
    /// should list [`MechanismKind::ALL`].
    pub fn by_name(name: &str) -> Option<MechanismKind> {
        MechanismKind::ALL
            .into_iter()
            .find(|k| k.to_string().eq_ignore_ascii_case(name))
    }

    /// Parses a comma-separated mechanism set (e.g. `"DR-SC,DA-SC"`),
    /// preserving order.
    ///
    /// # Errors
    ///
    /// Returns the first unresolvable name.
    pub fn parse_set(list: &str) -> Result<Vec<MechanismKind>, String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| MechanismKind::by_name(name).ok_or_else(|| name.to_string()))
            .collect()
    }

    /// Instantiates the mechanism with default settings.
    pub fn instantiate(self) -> Box<dyn GroupingMechanism> {
        match self {
            MechanismKind::DrSc => Box::new(crate::DrSc::default()),
            MechanismKind::DaSc => Box::new(crate::DaSc::default()),
            MechanismKind::DrSi => Box::new(crate::DrSi::default()),
            MechanismKind::Unicast => Box::new(crate::Unicast),
            MechanismKind::ScPtm => Box::new(crate::ScPtm::default()),
        }
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MechanismKind::DrSc => "DR-SC",
            MechanismKind::DaSc => "DA-SC",
            MechanismKind::DrSi => "DR-SI",
            MechanismKind::Unicast => "Unicast",
            MechanismKind::ScPtm => "SC-PTM",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_matches_names() {
        for kind in MechanismKind::ALL {
            let mech = kind.instantiate();
            assert_eq!(mech.name(), kind.to_string());
        }
    }

    #[test]
    fn by_name_roundtrips_and_ignores_case() {
        for kind in MechanismKind::ALL {
            assert_eq!(MechanismKind::by_name(&kind.to_string()), Some(kind));
            assert_eq!(
                MechanismKind::by_name(&kind.to_string().to_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(MechanismKind::by_name("DR-XX"), None);
    }

    #[test]
    fn parse_set_preserves_order_and_reports_bad_names() {
        assert_eq!(
            MechanismKind::parse_set("dr-si, Unicast,DR-SC"),
            Ok(vec![
                MechanismKind::DrSi,
                MechanismKind::Unicast,
                MechanismKind::DrSc
            ])
        );
        assert_eq!(
            MechanismKind::parse_set("DR-SC,bogus,DA-SC"),
            Err("bogus".to_string())
        );
    }

    #[test]
    fn compliance_flags_match_paper() {
        assert!(MechanismKind::DrSc.instantiate().is_standards_compliant());
        assert!(MechanismKind::DaSc.instantiate().is_standards_compliant());
        assert!(!MechanismKind::DrSi.instantiate().is_standards_compliant());
        assert!(MechanismKind::Unicast
            .instantiate()
            .is_standards_compliant());
        assert!(MechanismKind::ScPtm.instantiate().is_standards_compliant());
    }
}
