//! DR-SC: DRX Respecting, Standards Compliant (paper Sec. III-A).

use rand::RngCore;

use nbiot_phy::{CoverageClass, NpdschConfig};
use nbiot_time::{SimDuration, SimInstant, TimeWindow};

use crate::improve::{improve_cover, ImprovementStats};
use crate::set_cover::{CoverSlot, WindowCover, DEFAULT_ARENA};
use crate::{
    DevicePlan, GroupingError, GroupingInput, GroupingMechanism, MulticastPlan, PageDirective,
    Transmission,
};

/// Per-device PO events over the search horizon: sparse devices (cycle
/// greater than `TI`) get their enumerated occasions, dense devices get an
/// empty list plus a `true` flag (they have a PO in every window).
fn po_events(input: &GroupingInput, ti: SimDuration) -> (Vec<Vec<SimInstant>>, Vec<bool>) {
    let horizon = input.search_horizon();
    let mut events: Vec<Vec<SimInstant>> = Vec::with_capacity(input.len());
    let mut dense = Vec::with_capacity(input.len());
    for (paging, sched) in input.paging_configs().iter().zip(input.schedules()) {
        let is_dense = paging.cycle.period() <= ti;
        dense.push(is_dense);
        if is_dense {
            events.push(Vec::new());
        } else {
            events.push(sched.pos_in(horizon));
        }
    }
    (events, dense)
}

/// The error [`WindowCover::solve`] failure maps to: some sparse device
/// has no paging occasion inside the horizon.
fn no_usable_po(
    input: &GroupingInput,
    events: &[Vec<SimInstant>],
    dense: &[bool],
) -> GroupingError {
    GroupingError::NoUsablePo {
        device: input
            .ids()
            .iter()
            .zip(events)
            .zip(dense)
            .find(|((_, e), &d)| e.is_empty() && !d)
            .map(|((&id, _), _)| id)
            .expect("solver fails only on sparse device without POs"),
        t: input.search_horizon().end(),
    }
}

/// FNV-1a over the anchor-window set-cover instance. [`DrScTabu`] seeds
/// the tabu search from the instance rather than the caller's RNG so
/// every budget rung of the anytime ladder replays the same iteration
/// sequence — the guarantee behind budget-monotone cover cost.
fn instance_seed(n_sparse: usize, sets: &[Vec<usize>]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = (h ^ n_sparse as u64).wrapping_mul(PRIME);
    for set in sets {
        h = (h ^ set.len() as u64).wrapping_mul(PRIME);
        for &e in set {
            h = (h ^ e as u64).wrapping_mul(PRIME);
        }
    }
    h
}

/// The DR-SC mechanism: respect every device's DRX cycle and cover the
/// group with (usually several) multicast transmissions chosen by greedy
/// set cover over the paging-occasion timeline.
///
/// The cover is solved by [`WindowCover`], which dispatches between
/// incremental gain maintenance and a per-round re-sweep by measured
/// window occupancy (both slot-identical; see `docs/KERNELS.md`) — this
/// planning step dominates DR-SC's cost at `large-n-stress` scale.
///
/// Devices spend no more energy than under normal operation (aside from
/// the reception itself); the price is bandwidth — the number of
/// transmissions reported in the paper's Fig. 7.
///
/// The search horizon is `[start, start + 2·maxDRX)`: because every
/// standard cycle is a power-of-two number of frames with a common origin,
/// the joint PO pattern repeats with period `maxDRX`, so (per the paper)
/// nothing new appears after twice the largest cycle.
///
/// Each transmission is scheduled `guard` after the *last* covered paging
/// occasion of its window rather than at the full window end: the window
/// end is only an upper bound (the first covered device's inactivity
/// timer), so transmitting as soon as the last covered device has been
/// paged (plus a guard for its random access) trims needless waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrSc {
    /// Delay between the last covered PO and the transmission, covering
    /// the random-access exchange of the last-paged device.
    pub guard: SimDuration,
}

impl Default for DrSc {
    fn default() -> Self {
        DrSc {
            guard: SimDuration::from_secs(1),
        }
    }
}

impl DrSc {
    /// Creates the mechanism with the default 1 s guard.
    pub fn new() -> DrSc {
        DrSc::default()
    }
}

impl GroupingMechanism for DrSc {
    fn name(&self) -> String {
        "DR-SC".to_string()
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        _rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let params = input.params();
        let ti = params.ti.duration();
        let horizon = input.search_horizon();
        // Enumerate PO events only for sparse devices (cycle > TI); devices
        // with cycle <= TI ("dense") have a PO in every window and ride the
        // first transmission.
        let (events, dense) = po_events(input, ti);
        let slots = WindowCover::new(ti)
            .solve(horizon.start(), &events, &dense)
            .ok_or_else(|| no_usable_po(input, &events, &dense))?;
        Ok(plan_from_slots(input, &slots, self.guard, self.name()))
    }
}

/// Builds the DR-SC-family plan from a solved cover: every covered device
/// is paged at its own first PO inside its slot's window, the slot
/// transmits `guard` after the last of those pages (capped at the window
/// end, which preserves the first-paged device's inactivity timer), and
/// transmissions are emitted in time order. Shared by [`DrSc`] and
/// [`DrScWeighted`] so the weighted variant differs from plain DR-SC
/// *only* in which windows the cover picked.
fn plan_from_slots(
    input: &GroupingInput,
    slots: &[CoverSlot],
    guard: SimDuration,
    mechanism: String,
) -> MulticastPlan {
    let params = input.params();
    let horizon = input.search_horizon();
    let mut transmissions = Vec::with_capacity(slots.len());
    let mut device_plans: Vec<Option<DevicePlan>> = vec![None; input.len()];
    for slot in slots {
        let recipients: Vec<_> = slot.covered.iter().map(|&idx| input.ids()[idx]).collect();
        let pages: Vec<nbiot_time::SimInstant> = slot
            .covered
            .iter()
            .map(|&idx| input.schedules()[idx].first_po_at_or_after(slot.window_start))
            .collect();
        let last_po = pages.iter().copied().max().expect("non-empty slot");
        let transmit_at = (last_po + guard).min(slot.transmit_at);
        for (&idx, &po) in slot.covered.iter().zip(&pages) {
            debug_assert!(po < transmit_at);
            device_plans[idx] = Some(DevicePlan {
                device: input.ids()[idx],
                page: Some(PageDirective { po }),
                mltc: None,
                adaptation: None,
                connect_at: Some(po),
                receives_at: transmit_at,
            });
        }
        transmissions.push(Transmission {
            at: transmit_at,
            recipients,
        });
    }
    transmissions.sort_by_key(|t| t.at);
    let device_plans: Vec<DevicePlan> = device_plans
        .into_iter()
        .map(|p| p.expect("cover reaches every device"))
        .collect();
    let end = transmissions.last().map(|t| t.at).unwrap_or(horizon.end());
    MulticastPlan {
        mechanism,
        standards_compliant: true,
        requires_connection: true,
        transmissions,
        device_plans,
        horizon: TimeWindow::new(params.start, end.max(horizon.end())),
        control_monitoring: None,
        improvement: None,
    }
}

/// Airtime refinement pass: folds a whole slot into another picked window
/// whenever every member of the donor slot also has a paging occasion
/// strictly inside the recipient's window. Greedy cover can leave such
/// redundancies behind (a device assigned to an early high-gain window may
/// have a later PO inside a window picked afterwards). Each fold deletes
/// one transmission and can only reduce the plan's block airtime: the
/// merged window is priced at the *deeper* of the two member sets, so the
/// cheaper window's block is saved in full.
fn fold_redundant_slots(input: &GroupingInput, slots: &mut Vec<CoverSlot>) {
    let schedules = input.schedules();
    let mut i = 0;
    while i < slots.len() {
        let mut folded = false;
        for j in 0..slots.len() {
            if i == j {
                continue;
            }
            let (start, end) = (slots[j].window_start, slots[j].transmit_at);
            // Strict `< end` keeps the page before the transmission even
            // when the folded member becomes the window's last page.
            let fits = slots[i]
                .covered
                .iter()
                .all(|&d| schedules[d].first_po_at_or_after(start) < end);
            if fits {
                let donor = slots.remove(i);
                let j = if j > i { j - 1 } else { j };
                slots[j].covered.extend(donor.covered);
                slots[j].covered.sort_unstable();
                folded = true;
                break;
            }
        }
        if !folded {
            i += 1;
        }
    }
}

/// Airtime-weighted DR-SC: the cover kernel picks windows by
/// newly-covered devices **per subframe of airtime** instead of per
/// transmission.
///
/// Every candidate anchor window is priced at the NPDSCH block airtime of
/// its *deepest-coverage* member ([`NpdschConfig::block_airtime_subframes`]
/// with that member's [`CoverageClass`]): a CE2 member forces 32
/// repetitions on the whole transmission, so a window that avoids deep
/// devices is up to ~20x cheaper per block. On homogeneous populations
/// (every device CE0) all windows cost the same and the pick sequence is
/// bit-identical to [`DrSc`]'s cover kernel on the anchor instance; the
/// mechanism only diverges — and starts saving airtime — on heterogeneous
/// coverage mixes such as `heterogeneous-coverage`.
///
/// Because a window is priced at its *deepest* member, bundling shallow
/// devices into an already-deep window is free, and on some instances the
/// plain count-greedy cover exploits that better than ratio-greedy does
/// (ratio-greedy splits covers into extra cheap windows whose base cost
/// adds up). The mechanism therefore solves **both** covers, folds
/// redundant slots out of each ([`fold_redundant_slots`]), prices each
/// finished plan by its transmissions' deepest-recipient airtime, and
/// keeps the cheaper one — so it is never worse than [`DrSc`] on total
/// airtime, by construction (ties keep the weighted cover).
///
/// Everything downstream of window choice (paging directives, guard
/// timing, transmission ordering) is byte-for-byte the DR-SC logic
/// ([`plan_from_slots`]), and the mechanism stays standards-compliant:
/// it is still plain paging plus in-window multicast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrScWeighted {
    /// Delay between the last covered PO and the transmission (same role
    /// as [`DrSc::guard`]).
    pub guard: SimDuration,
    /// The NPDSCH scheduling shape whose per-class block airtime prices
    /// the windows. Only `coverage` is varied per window; the MCS and gap
    /// fields come from this base config.
    pub npdsch: NpdschConfig,
}

impl Default for DrScWeighted {
    fn default() -> Self {
        DrScWeighted {
            guard: DrSc::default().guard,
            npdsch: NpdschConfig::default(),
        }
    }
}

impl DrScWeighted {
    /// Creates the mechanism with the default 1 s guard and default
    /// NPDSCH shape.
    pub fn new() -> DrScWeighted {
        DrScWeighted::default()
    }

    /// Block airtime (in subframes) per coverage class under the base
    /// NPDSCH shape, indexed by `CoverageClass as usize`.
    fn airtime_table(&self) -> [u32; 3] {
        let mut table = [0u32; 3];
        for c in CoverageClass::ALL {
            let cfg = NpdschConfig {
                coverage: c,
                ..self.npdsch
            };
            table[c as usize] = u32::try_from(cfg.block_airtime_subframes())
                .expect("block airtime fits u32 for any standard shape");
        }
        table
    }

    /// Prices a finished cover: each slot costs one block at the deepest
    /// coverage class among its *newly covered* devices (the slot's
    /// actual recipients), which is what the transmission will pay.
    fn cover_airtime(&self, slots: &[CoverSlot], coverages: &[CoverageClass]) -> u64 {
        let table = self.airtime_table();
        slots
            .iter()
            .map(|slot| {
                let deepest = slot
                    .covered
                    .iter()
                    .map(|&d| coverages[d])
                    .max()
                    .unwrap_or_default();
                u64::from(table[deepest as usize])
            })
            .sum()
    }
}

impl GroupingMechanism for DrScWeighted {
    fn name(&self) -> String {
        "DR-SC-weighted".to_string()
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        _rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let ti = input.params().ti.duration();
        let horizon = input.search_horizon();
        let (events, dense) = po_events(input, ti);
        let table = self.airtime_table();
        let coverages = input.coverages();
        let window_cost = |members: &[usize]| {
            let deepest = members
                .iter()
                .map(|&d| coverages[d])
                .max()
                .unwrap_or_default();
            table[deepest as usize]
        };
        let cover = WindowCover::new(ti);
        let weighted = DEFAULT_ARENA
            .with(|arena| {
                cover.solve_weighted(
                    horizon.start(),
                    &events,
                    &dense,
                    window_cost,
                    &mut arena.borrow_mut(),
                )
            })
            .ok_or_else(|| no_usable_po(input, &events, &dense))?;
        let counted = cover
            .solve(horizon.start(), &events, &dense)
            .expect("count cover is feasible whenever the weighted cover is");
        let mut weighted = weighted;
        let mut counted = counted;
        fold_redundant_slots(input, &mut weighted);
        fold_redundant_slots(input, &mut counted);
        // Keep whichever refined cover transmits cheaper; ties keep the
        // weighted one (it optimized for exactly this objective).
        let slots =
            if self.cover_airtime(&counted, coverages) < self.cover_airtime(&weighted, coverages) {
                counted
            } else {
                weighted
            };
        Ok(plan_from_slots(input, &slots, self.guard, self.name()))
    }
}

/// Default improvement budget for `DR-SC-tabu` when none is given (the
/// `MechanismKind::ALL` entry and `by_name("dr-sc-tabu")`).
pub const DEFAULT_TABU_BUDGET: u32 = 64;

/// DR-SC with an anytime tabu-improvement pass over the greedy cover.
///
/// Planning runs the same greedy [`WindowCover`] as [`DrSc`], then spends
/// `budget` destroy-and-repair iterations of [`crate::improve`] trying to
/// shrink the window set — fewer windows means fewer transmissions, the
/// paper's Fig. 7 bandwidth cost. The improvement search works on the
/// *full* anchor-window instance (every sparse PO anchors a candidate
/// window covering all devices with a PO inside it), which is a strictly
/// richer neighborhood than the greedy solver's newly-covered slots.
///
/// `budget == 0` delegates to [`DrSc`] and relabels: the plan content is
/// bit-identical to plain DR-SC (locked by proptest). With `budget > 0`
/// the plan carries [`ImprovementStats`] in
/// [`MulticastPlan::improvement`], and quality is monotone non-increasing
/// in the budget for a fixed input (the anytime contract — see
/// `docs/KERNELS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrScTabu {
    /// Delay between the last covered PO and the transmission (same role
    /// as [`DrSc::guard`]).
    pub guard: SimDuration,
    /// Maximum improvement iterations (deterministic move count, no
    /// wall-clock anywhere).
    pub budget: u32,
}

impl Default for DrScTabu {
    fn default() -> Self {
        DrScTabu::new(DEFAULT_TABU_BUDGET)
    }
}

impl DrScTabu {
    /// Creates the mechanism with the default 1 s guard and the given
    /// improvement budget.
    pub fn new(budget: u32) -> DrScTabu {
        DrScTabu {
            guard: DrSc::default().guard,
            budget,
        }
    }

    /// Relabels a greedy plan as this mechanism's output with zero-work
    /// improvement stats (the `budget == 0` / nothing-to-improve path).
    fn relabel(&self, mut plan: MulticastPlan, budget_spent: u32) -> MulticastPlan {
        let cost = plan.transmission_count() as u32;
        plan.mechanism = self.name();
        plan.improvement = Some(ImprovementStats {
            initial_cost: cost,
            final_cost: cost,
            moves_accepted: 0,
            budget_spent,
        });
        plan
    }
}

impl GroupingMechanism for DrScTabu {
    fn name(&self) -> String {
        format!("DR-SC-tabu({})", self.budget)
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let greedy = DrSc { guard: self.guard };
        if self.budget == 0 {
            return Ok(self.relabel(greedy.plan(input, rng)?, 0));
        }
        let params = input.params();
        let ti = params.ti.duration();
        let horizon = input.search_horizon();
        let (events, dense) = po_events(input, ti);
        let n_sparse = dense.iter().filter(|&&d| !d).count();
        if n_sparse == 0 {
            // All-dense groups are a single window already — optimal.
            return Ok(self.relabel(greedy.plan(input, rng)?, 0));
        }
        let slots = WindowCover::new(ti)
            .solve(horizon.start(), &events, &dense)
            .ok_or_else(|| no_usable_po(input, &events, &dense))?;

        // Materialize the anchor-window set-cover instance over sparse
        // devices: every distinct sparse PO instant anchors a candidate
        // window covering the sparse devices with a PO in [a, a + TI).
        let mut orig_of = Vec::with_capacity(n_sparse);
        let mut sparse_of = vec![usize::MAX; input.len()];
        for (d, &is_dense) in dense.iter().enumerate() {
            if !is_dense {
                sparse_of[d] = orig_of.len();
                orig_of.push(d);
            }
        }
        let mut flat: Vec<(SimInstant, usize)> = Vec::new();
        for (d, evs) in events.iter().enumerate() {
            if !dense[d] {
                flat.extend(evs.iter().map(|&t| (t, sparse_of[d])));
            }
        }
        flat.sort_unstable();
        let mut anchors: Vec<SimInstant> = flat.iter().map(|&(t, _)| t).collect();
        anchors.dedup();
        let mut sets: Vec<Vec<usize>> = Vec::with_capacity(anchors.len());
        let mut seen = vec![usize::MAX; n_sparse];
        let (mut lo, mut hi) = (0usize, 0usize);
        for (i, &a) in anchors.iter().enumerate() {
            let end = a + ti;
            while flat[lo].0 < a {
                lo += 1;
            }
            hi = hi.max(lo);
            while hi < flat.len() && flat[hi].0 < end {
                hi += 1;
            }
            let mut set = Vec::new();
            for &(_, d) in &flat[lo..hi] {
                if seen[d] != i {
                    seen[d] = i;
                    set.push(d);
                }
            }
            sets.push(set);
        }

        // The greedy slots are the initial solution: each slot is anchored
        // at a sparse PO, so its window is one of the candidate sets.
        let picks: Vec<usize> = slots
            .iter()
            .map(|s| {
                anchors
                    .binary_search(&s.window_start)
                    .expect("greedy slots anchor at sparse POs")
            })
            .collect();
        // Every rung of the anytime budget ladder must share one seed so a
        // larger budget replays a smaller budget's iteration sequence as a
        // prefix (best-found cover cost monotone non-increasing in budget).
        // Mechanisms draw from independent RNG streams, so the seed comes
        // from the set-cover instance itself, not from `rng`.
        let seed = instance_seed(n_sparse, &sets);
        let (best, stats) = improve_cover(n_sparse, &sets, &picks, self.budget, seed);

        // Rebuild the plan: selected windows in time order, each sparse
        // device assigned to the earliest one containing a PO of its own;
        // dense devices ride the first transmission, as in DR-SC.
        let mut sel = best;
        sel.sort_unstable();
        let mut assigned = vec![false; n_sparse];
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); sel.len()];
        for (w, &a) in sel.iter().enumerate() {
            for &d in &sets[a] {
                if !assigned[d] {
                    assigned[d] = true;
                    groups[w].push(d);
                }
            }
        }
        debug_assert!(assigned.iter().all(|&c| c), "improved cover is complete");
        let first_nonempty = groups
            .iter()
            .position(|g| !g.is_empty())
            .expect("n_sparse > 0");
        let mut transmissions = Vec::new();
        let mut device_plans: Vec<Option<DevicePlan>> = vec![None; input.len()];
        for (w, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let window_start = anchors[sel[w]];
            let mut members: Vec<usize> = group.iter().map(|&d| orig_of[d]).collect();
            if w == first_nonempty {
                members.extend((0..input.len()).filter(|&d| dense[d]));
            }
            members.sort_unstable();
            let pages: Vec<SimInstant> = members
                .iter()
                .map(|&idx| input.schedules()[idx].first_po_at_or_after(window_start))
                .collect();
            let last_po = pages.iter().copied().max().expect("non-empty window");
            let transmit_at = (last_po + self.guard).min(window_start + ti);
            for (&idx, &po) in members.iter().zip(&pages) {
                debug_assert!(po < transmit_at);
                device_plans[idx] = Some(DevicePlan {
                    device: input.ids()[idx],
                    page: Some(PageDirective { po }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(po),
                    receives_at: transmit_at,
                });
            }
            transmissions.push(Transmission {
                at: transmit_at,
                recipients: members.iter().map(|&idx| input.ids()[idx]).collect(),
            });
        }
        transmissions.sort_by_key(|t| t.at);
        let device_plans: Vec<DevicePlan> = device_plans
            .into_iter()
            .map(|p| p.expect("every device rides a selected window"))
            .collect();
        let end = transmissions.last().map(|t| t.at).unwrap_or(horizon.end());
        Ok(MulticastPlan {
            mechanism: self.name(),
            standards_compliant: true,
            requires_connection: true,
            transmissions,
            device_plans,
            horizon: TimeWindow::new(params.start, end.max(horizon.end())),
            control_monitoring: None,
            improvement: Some(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_time::{DrxCycle, EdrxCycle, PagingCycle, SimDuration};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(mix: TrafficMix, n: usize, seed: u64) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn plan_is_valid_for_city_mix() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 120, 3);
        plan.validate(&input).unwrap();
    }

    #[test]
    fn short_drx_group_needs_one_transmission() {
        // Every cycle <= TI: a single window covers everyone.
        let (input, plan) = plan_for(TrafficMix::short_drx(), 60, 4);
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
    }

    #[test]
    fn long_uniform_cycles_need_many_transmissions() {
        // 2621 s cycles with TI = 20 s: windows rarely share devices.
        let (input, plan) = plan_for(
            TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf256)),
            30,
            5,
        );
        plan.validate(&input).unwrap();
        assert!(
            plan.transmission_count() > 5,
            "{} transmissions",
            plan.transmission_count()
        );
    }

    #[test]
    fn transmissions_fall_within_extended_horizon() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 80, 6);
        let limit = input.search_horizon().end() + input.params().ti.duration();
        for tx in &plan.transmissions {
            assert!(tx.at <= limit);
        }
    }

    #[test]
    fn devices_are_paged_at_own_pos() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 50, 7);
        for (dp, sched) in plan.device_plans.iter().zip(input.schedules()) {
            let po = dp.page.expect("DR-SC pages every device").po;
            // The PO must be one of the device's actual paging occasions.
            assert_eq!(sched.first_po_at_or_after(po), po);
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let (_, a) = plan_for(TrafficMix::ericsson_city(), 70, 8);
        let (_, b) = plan_for(TrafficMix::ericsson_city(), 70, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_transmissions_than_devices_at_scale() {
        // The Fig. 7 economy: grouping beats unicast (N transmissions).
        let (_, plan) = plan_for(TrafficMix::ericsson_city(), 300, 9);
        assert!(plan.transmission_count() < 300);
    }

    #[test]
    fn larger_ti_reduces_transmissions() {
        let mut rng = StdRng::seed_from_u64(10);
        let pop = TrafficMix::ericsson_city().generate(150, &mut rng).unwrap();
        let mut counts = Vec::new();
        for ti_s in [10u64, 40] {
            let params = GroupingParams {
                ti: nbiot_rrc::InactivityTimer::new(SimDuration::from_secs(ti_s)),
                ..GroupingParams::default()
            };
            let input = GroupingInput::from_population(&pop, params).unwrap();
            let plan = DrSc::new().plan(&input, &mut rng).unwrap();
            plan.validate(&input).unwrap();
            counts.push(plan.transmission_count());
        }
        assert!(counts[1] <= counts[0], "{counts:?}");
    }

    fn tabu_plan_for(
        mix: TrafficMix,
        n: usize,
        seed: u64,
        budget: u32,
    ) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrScTabu::new(budget).plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn tabu_budget_zero_matches_greedy_content() {
        let (_, greedy) = plan_for(TrafficMix::ericsson_city(), 120, 3);
        let (input, tabu) = tabu_plan_for(TrafficMix::ericsson_city(), 120, 3, 0);
        tabu.validate(&input).unwrap();
        assert_eq!(tabu.mechanism, "DR-SC-tabu(0)");
        assert_eq!(tabu.transmissions, greedy.transmissions);
        assert_eq!(tabu.device_plans, greedy.device_plans);
        assert_eq!(tabu.horizon, greedy.horizon);
        let stats = tabu.improvement.unwrap();
        assert_eq!(stats.initial_cost, stats.final_cost);
        assert_eq!(stats.moves_accepted, 0);
    }

    #[test]
    fn tabu_plan_is_valid_and_never_worse() {
        for seed in [3u64, 5, 9] {
            let (_, greedy) = plan_for(TrafficMix::ericsson_city(), 150, seed);
            let (input, tabu) = tabu_plan_for(TrafficMix::ericsson_city(), 150, seed, 64);
            tabu.validate(&input).unwrap();
            assert!(tabu.transmission_count() <= greedy.transmission_count());
            let stats = tabu.improvement.unwrap();
            assert!(stats.final_cost <= stats.initial_cost);
            assert_eq!(stats.initial_cost as usize, greedy.transmission_count());
        }
    }

    #[test]
    fn tabu_is_deterministic() {
        let (_, a) = tabu_plan_for(TrafficMix::ericsson_city(), 90, 8, 32);
        let (_, b) = tabu_plan_for(TrafficMix::ericsson_city(), 90, 8, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn tabu_all_dense_short_circuits() {
        let (input, plan) = tabu_plan_for(TrafficMix::short_drx(), 40, 4, 64);
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
        assert_eq!(plan.improvement.unwrap().budget_spent, 0);
    }

    #[test]
    fn single_device_single_transmission() {
        let mut rng = StdRng::seed_from_u64(11);
        let pop = TrafficMix::uniform(PagingCycle::Drx(DrxCycle::Rf256))
            .generate(1, &mut rng)
            .unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
    }

    fn weighted_plan_for(mix: TrafficMix, n: usize, seed: u64) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrScWeighted::new().plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    /// Total NPDSCH block airtime of a plan: each transmission is priced
    /// at its deepest recipient's coverage class (one block per tx).
    fn plan_block_airtime(input: &GroupingInput, plan: &MulticastPlan) -> u64 {
        let table = DrScWeighted::default().airtime_table();
        let idx_of: std::collections::HashMap<_, _> = input
            .ids()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        plan.transmissions
            .iter()
            .map(|tx| {
                let deepest = tx
                    .recipients
                    .iter()
                    .map(|id| input.coverages()[idx_of[id]])
                    .max()
                    .unwrap();
                u64::from(table[deepest as usize])
            })
            .sum()
    }

    #[test]
    fn weighted_plan_is_valid_on_heterogeneous_coverage() {
        let (input, plan) = weighted_plan_for(TrafficMix::heterogeneous_coverage(), 200, 12);
        plan.validate(&input).unwrap();
        assert_eq!(plan.mechanism, "DR-SC-weighted");
        assert!(plan.standards_compliant);
    }

    #[test]
    fn weighted_is_deterministic() {
        let (_, a) = weighted_plan_for(TrafficMix::heterogeneous_coverage(), 150, 13);
        let (_, b) = weighted_plan_for(TrafficMix::heterogeneous_coverage(), 150, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_never_needs_more_transmissions_on_uniform_coverage() {
        // All-Normal populations make every window cost the same, so the
        // weighted cover picks the same number of windows as plain DR-SC
        // (window starts may differ on gain ties; see `solve_weighted`)
        // and the fold pass can only delete transmissions from there.
        for seed in [3u64, 7, 14] {
            let (_, greedy) = plan_for(TrafficMix::ericsson_city(), 120, seed);
            let (input, weighted) = weighted_plan_for(TrafficMix::ericsson_city(), 120, seed);
            weighted.validate(&input).unwrap();
            assert!(weighted.transmission_count() <= greedy.transmission_count());
        }
    }

    #[test]
    fn weighted_never_costs_more_airtime_on_heterogeneous_mix() {
        for seed in [2u64, 6, 15] {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = TrafficMix::heterogeneous_coverage()
                .generate(300, &mut rng)
                .unwrap();
            let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
            let greedy = DrSc::new().plan(&input, &mut rng).unwrap();
            let weighted = DrScWeighted::new().plan(&input, &mut rng).unwrap();
            weighted.validate(&input).unwrap();
            let greedy_air = plan_block_airtime(&input, &greedy);
            let weighted_air = plan_block_airtime(&input, &weighted);
            assert!(
                weighted_air <= greedy_air,
                "seed {seed}: weighted {weighted_air} > greedy {greedy_air} subframes"
            );
        }
    }
}
