//! DR-SC: DRX Respecting, Standards Compliant (paper Sec. III-A).

use rand::RngCore;

use nbiot_time::{SimDuration, TimeWindow};

use crate::set_cover::WindowCover;
use crate::{
    DevicePlan, GroupingError, GroupingInput, GroupingMechanism, MulticastPlan, PageDirective,
    Transmission,
};

/// The DR-SC mechanism: respect every device's DRX cycle and cover the
/// group with (usually several) multicast transmissions chosen by greedy
/// set cover over the paging-occasion timeline.
///
/// The cover is solved by [`WindowCover`], which dispatches between
/// incremental gain maintenance and a per-round re-sweep by measured
/// window occupancy (both slot-identical; see `docs/KERNELS.md`) — this
/// planning step dominates DR-SC's cost at `large-n-stress` scale.
///
/// Devices spend no more energy than under normal operation (aside from
/// the reception itself); the price is bandwidth — the number of
/// transmissions reported in the paper's Fig. 7.
///
/// The search horizon is `[start, start + 2·maxDRX)`: because every
/// standard cycle is a power-of-two number of frames with a common origin,
/// the joint PO pattern repeats with period `maxDRX`, so (per the paper)
/// nothing new appears after twice the largest cycle.
///
/// Each transmission is scheduled `guard` after the *last* covered paging
/// occasion of its window rather than at the full window end: the window
/// end is only an upper bound (the first covered device's inactivity
/// timer), so transmitting as soon as the last covered device has been
/// paged (plus a guard for its random access) trims needless waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrSc {
    /// Delay between the last covered PO and the transmission, covering
    /// the random-access exchange of the last-paged device.
    pub guard: SimDuration,
}

impl Default for DrSc {
    fn default() -> Self {
        DrSc {
            guard: SimDuration::from_secs(1),
        }
    }
}

impl DrSc {
    /// Creates the mechanism with the default 1 s guard.
    pub fn new() -> DrSc {
        DrSc::default()
    }
}

impl GroupingMechanism for DrSc {
    fn name(&self) -> &'static str {
        "DR-SC"
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        _rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let params = input.params();
        let ti = params.ti.duration();
        let horizon = input.search_horizon();
        // Enumerate PO events only for sparse devices (cycle > TI); devices
        // with cycle <= TI ("dense") have a PO in every window and ride the
        // first transmission.
        let mut events: Vec<Vec<nbiot_time::SimInstant>> = Vec::with_capacity(input.len());
        let mut dense = Vec::with_capacity(input.len());
        for (paging, sched) in input.paging_configs().iter().zip(input.schedules()) {
            let is_dense = paging.cycle.period() <= ti;
            dense.push(is_dense);
            if is_dense {
                events.push(Vec::new());
            } else {
                events.push(sched.pos_in(horizon));
            }
        }
        let slots = WindowCover::new(ti)
            .solve(horizon.start(), &events, &dense)
            .ok_or_else(|| GroupingError::NoUsablePo {
                device: input
                    .ids()
                    .iter()
                    .zip(&events)
                    .zip(&dense)
                    .find(|((_, e), &d)| e.is_empty() && !d)
                    .map(|((&id, _), _)| id)
                    .expect("solver fails only on sparse device without POs"),
                t: horizon.end(),
            })?;

        let mut transmissions = Vec::with_capacity(slots.len());
        let mut device_plans: Vec<Option<DevicePlan>> = vec![None; input.len()];
        for slot in &slots {
            let recipients: Vec<_> = slot.covered.iter().map(|&idx| input.ids()[idx]).collect();
            // Page every covered device at its own first PO inside the
            // window, then transmit shortly after the last of those pages
            // (capped at the window end, which preserves the first-paged
            // device's inactivity timer).
            let pages: Vec<nbiot_time::SimInstant> = slot
                .covered
                .iter()
                .map(|&idx| input.schedules()[idx].first_po_at_or_after(slot.window_start))
                .collect();
            let last_po = pages.iter().copied().max().expect("non-empty slot");
            let transmit_at = (last_po + self.guard).min(slot.transmit_at);
            for (&idx, &po) in slot.covered.iter().zip(&pages) {
                debug_assert!(po < transmit_at);
                device_plans[idx] = Some(DevicePlan {
                    device: input.ids()[idx],
                    page: Some(PageDirective { po }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(po),
                    receives_at: transmit_at,
                });
            }
            transmissions.push(Transmission {
                at: transmit_at,
                recipients,
            });
        }
        transmissions.sort_by_key(|t| t.at);
        let device_plans: Vec<DevicePlan> = device_plans
            .into_iter()
            .map(|p| p.expect("cover reaches every device"))
            .collect();
        let end = transmissions.last().map(|t| t.at).unwrap_or(horizon.end());
        Ok(MulticastPlan {
            mechanism: self.name().to_string(),
            standards_compliant: true,
            requires_connection: true,
            transmissions,
            device_plans,
            horizon: TimeWindow::new(params.start, end.max(horizon.end())),
            control_monitoring: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_time::{DrxCycle, EdrxCycle, PagingCycle, SimDuration};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(mix: TrafficMix, n: usize, seed: u64) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn plan_is_valid_for_city_mix() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 120, 3);
        plan.validate(&input).unwrap();
    }

    #[test]
    fn short_drx_group_needs_one_transmission() {
        // Every cycle <= TI: a single window covers everyone.
        let (input, plan) = plan_for(TrafficMix::short_drx(), 60, 4);
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
    }

    #[test]
    fn long_uniform_cycles_need_many_transmissions() {
        // 2621 s cycles with TI = 20 s: windows rarely share devices.
        let (input, plan) = plan_for(
            TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf256)),
            30,
            5,
        );
        plan.validate(&input).unwrap();
        assert!(
            plan.transmission_count() > 5,
            "{} transmissions",
            plan.transmission_count()
        );
    }

    #[test]
    fn transmissions_fall_within_extended_horizon() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 80, 6);
        let limit = input.search_horizon().end() + input.params().ti.duration();
        for tx in &plan.transmissions {
            assert!(tx.at <= limit);
        }
    }

    #[test]
    fn devices_are_paged_at_own_pos() {
        let (input, plan) = plan_for(TrafficMix::ericsson_city(), 50, 7);
        for (dp, sched) in plan.device_plans.iter().zip(input.schedules()) {
            let po = dp.page.expect("DR-SC pages every device").po;
            // The PO must be one of the device's actual paging occasions.
            assert_eq!(sched.first_po_at_or_after(po), po);
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let (_, a) = plan_for(TrafficMix::ericsson_city(), 70, 8);
        let (_, b) = plan_for(TrafficMix::ericsson_city(), 70, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_transmissions_than_devices_at_scale() {
        // The Fig. 7 economy: grouping beats unicast (N transmissions).
        let (_, plan) = plan_for(TrafficMix::ericsson_city(), 300, 9);
        assert!(plan.transmission_count() < 300);
    }

    #[test]
    fn larger_ti_reduces_transmissions() {
        let mut rng = StdRng::seed_from_u64(10);
        let pop = TrafficMix::ericsson_city().generate(150, &mut rng).unwrap();
        let mut counts = Vec::new();
        for ti_s in [10u64, 40] {
            let params = GroupingParams {
                ti: nbiot_rrc::InactivityTimer::new(SimDuration::from_secs(ti_s)),
                ..GroupingParams::default()
            };
            let input = GroupingInput::from_population(&pop, params).unwrap();
            let plan = DrSc::new().plan(&input, &mut rng).unwrap();
            plan.validate(&input).unwrap();
            counts.push(plan.transmission_count());
        }
        assert!(counts[1] <= counts[0], "{counts:?}");
    }

    #[test]
    fn single_device_single_transmission() {
        let mut rng = StdRng::seed_from_u64(11);
        let pop = TrafficMix::uniform(PagingCycle::Drx(DrxCycle::Rf256))
            .generate(1, &mut rng)
            .unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
    }
}
