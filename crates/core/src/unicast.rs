//! Unicast baseline: per-device delivery at each device's own PO.

use rand::RngCore;

use nbiot_time::TimeWindow;

use crate::{
    DevicePlan, GroupingError, GroupingInput, GroupingMechanism, MulticastPlan, PageDirective,
    Transmission,
};

/// The unicast baseline of the paper's evaluation (Sec. IV-A): every device
/// is paged at its *first* natural PO after the content arrives, connects,
/// and immediately receives its own dedicated copy of the data.
///
/// No waiting, no adaptation, no extra signalling — the energy-optimal
/// reference against which Fig. 6 measures the grouping mechanisms. Its
/// bandwidth cost is maximal: `N` payload deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Unicast;

impl Unicast {
    /// Creates the baseline.
    pub fn new() -> Unicast {
        Unicast
    }
}

impl GroupingMechanism for Unicast {
    fn name(&self) -> String {
        "Unicast".to_string()
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        _rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let params = input.params();
        let mut device_plans = Vec::with_capacity(input.len());
        let mut transmissions = Vec::with_capacity(input.len());
        for (&id, sched) in input.ids().iter().zip(input.schedules()) {
            let po = sched.first_po_at_or_after(params.start);
            device_plans.push(DevicePlan {
                device: id,
                page: Some(PageDirective { po }),
                mltc: None,
                adaptation: None,
                connect_at: Some(po),
                receives_at: po,
            });
            transmissions.push(Transmission {
                at: po,
                recipients: vec![id],
            });
        }
        transmissions.sort_by_key(|t| t.at);
        let end = transmissions.last().map(|t| t.at).unwrap_or(params.start);
        Ok(MulticastPlan {
            mechanism: self.name(),
            standards_compliant: true,
            requires_connection: true,
            transmissions,
            device_plans,
            horizon: TimeWindow::new(params.start, end),
            control_monitoring: None,
            improvement: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_time::{SimDuration, SimInstant};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(n: usize, seed: u64) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = TrafficMix::ericsson_city().generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = Unicast::new().plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn one_transmission_per_device() {
        let (input, plan) = plan_for(75, 1);
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 75);
        assert!(plan.transmissions.iter().all(|t| t.recipients.len() == 1));
    }

    #[test]
    fn no_waiting_at_all() {
        let (_, plan) = plan_for(75, 2);
        assert_eq!(plan.mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn devices_served_at_first_po_after_start() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = TrafficMix::ericsson_city().generate(40, &mut rng).unwrap();
        let start = SimInstant::from_secs(100);
        let params = GroupingParams {
            start,
            ..GroupingParams::default()
        };
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let plan = Unicast::new().plan(&input, &mut rng).unwrap();
        plan.validate(&input).unwrap();
        for (dp, sched) in plan.device_plans.iter().zip(input.schedules()) {
            let po = dp.page.unwrap().po;
            assert!(po >= start);
            assert_eq!(sched.first_po_at_or_after(start), po);
        }
    }

    #[test]
    fn all_deliveries_within_one_max_cycle() {
        let (input, plan) = plan_for(60, 4);
        let limit = input.params().start + input.max_cycle();
        for tx in &plan.transmissions {
            assert!(tx.at <= limit, "{} after {limit}", tx.at);
        }
    }
}
