//! Mechanism selection encoding the paper's conclusions (Sec. VI).
//!
//! The paper closes with a clear decision rule:
//!
//! * **DR-SC** "is not practical for NB-IoT deployments, where the
//!   available bandwidth is already limited" — its transmission count is
//!   the same order as unicast;
//! * **DR-SI** "has excellent performance both in terms of energy ... and
//!   bandwidth", *but* "requires protocol changes and may face
//!   deployment/adoption challenges";
//! * **DA-SC** "offers the best trade-off among the three mechanisms for
//!   the target use case of distributing firmware updates" when protocol
//!   changes are off the table.
//!
//! [`recommend`] turns that rule into an API: given the operator's
//! constraints, it returns the mechanism the paper would pick, with the
//! reasoning attached.

use core::fmt;

use crate::MechanismKind;

/// Operator constraints driving mechanism selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SelectionPolicy {
    /// Whether non-3GPP-compliant protocol extensions are deployable
    /// (both eNB and device firmware under the operator's control).
    pub allow_protocol_changes: bool,
    /// Whether downlink bandwidth is effectively unconstrained for this
    /// campaign (e.g. a dedicated maintenance window on an idle cell).
    pub bandwidth_unconstrained: bool,
    /// Whether device sleep-energy is the overriding concern, to the point
    /// of accepting many transmissions (battery-critical deployments).
    pub energy_critical: bool,
}

/// A recommendation with its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Recommendation {
    /// The selected mechanism.
    pub mechanism: MechanismKind,
    /// Why, in the paper's terms.
    pub rationale: String,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.mechanism, self.rationale)
    }
}

/// Selects a grouping mechanism per the paper's Sec. VI decision rule.
///
/// # Example
///
/// ```
/// use nbiot_grouping::{recommend, MechanismKind, SelectionPolicy};
///
/// // A plain operator: no protocol changes, bandwidth matters.
/// let rec = recommend(SelectionPolicy::default());
/// assert_eq!(rec.mechanism, MechanismKind::DaSc); // the paper's pick
///
/// // Full-stack control: the DR-SI extension becomes deployable.
/// let rec = recommend(SelectionPolicy {
///     allow_protocol_changes: true,
///     ..SelectionPolicy::default()
/// });
/// assert_eq!(rec.mechanism, MechanismKind::DrSi);
/// ```
pub fn recommend(policy: SelectionPolicy) -> Recommendation {
    if policy.allow_protocol_changes {
        return Recommendation {
            mechanism: MechanismKind::DrSi,
            rationale: "excellent energy and bandwidth; acceptable because the \
                        operator can deploy the mltc-transmission paging extension"
                .into(),
        };
    }
    if policy.energy_critical && policy.bandwidth_unconstrained {
        return Recommendation {
            mechanism: MechanismKind::DrSc,
            rationale: "zero extra sleep energy and standards-compliant; the \
                        many transmissions are tolerable only because bandwidth \
                        is unconstrained"
                .into(),
        };
    }
    Recommendation {
        mechanism: MechanismKind::DaSc,
        rationale: "single transmission with a small, shrinking-with-payload \
                    uptime overhead and no protocol changes — the paper's best \
                    trade-off for firmware distribution"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_picks_da_sc() {
        let rec = recommend(SelectionPolicy::default());
        assert_eq!(rec.mechanism, MechanismKind::DaSc);
        assert!(rec.rationale.contains("best trade-off"));
    }

    #[test]
    fn protocol_freedom_picks_dr_si() {
        let rec = recommend(SelectionPolicy {
            allow_protocol_changes: true,
            bandwidth_unconstrained: true,
            energy_critical: true,
        });
        assert_eq!(rec.mechanism, MechanismKind::DrSi);
    }

    #[test]
    fn dr_sc_needs_both_energy_priority_and_free_bandwidth() {
        let energy_only = recommend(SelectionPolicy {
            energy_critical: true,
            ..SelectionPolicy::default()
        });
        assert_eq!(energy_only.mechanism, MechanismKind::DaSc);
        let both = recommend(SelectionPolicy {
            energy_critical: true,
            bandwidth_unconstrained: true,
            ..SelectionPolicy::default()
        });
        assert_eq!(both.mechanism, MechanismKind::DrSc);
    }

    #[test]
    fn display_names_mechanism() {
        let rec = recommend(SelectionPolicy::default());
        assert!(rec.to_string().starts_with("DA-SC:"));
    }
}
