//! LNS-style plan repair after churn: patch a stale [`MulticastPlan`]
//! instead of re-planning from scratch.
//!
//! After a churn epoch the fleet differs from the one the plan was
//! computed for: some devices departed, some arrived. A full re-plan
//! re-solves the whole cover; this module performs the classic
//! large-neighborhood *repair* half only — the departed devices are the
//! destroyed part, and the arrivals are ejected devices to re-insert:
//!
//! 1. **Keep** every transmission that still serves at least one
//!    surviving device, at its original instant, and keep the surviving
//!    devices' page/connect/receive actions untouched.
//! 2. **Attach** each new device to the earliest kept transmission whose
//!    coverage window `[t − TI, t)` contains one of its paging occasions
//!    (an ejection-chain step of length one — the common case after
//!    moderate churn, because kept windows are already spread across the
//!    joint PO pattern).
//! 3. **Re-plan the leftovers** — new devices no kept window can reach —
//!    with a fresh greedy [`WindowCover`] solve over just those devices,
//!    appending the new windows.
//!
//! The procedure is fully deterministic (no RNG anywhere) and a repair
//! against an unchanged fleet reproduces the plan's transmissions and
//! device actions exactly (locked by proptest). It applies to
//! page-and-connect plans (DR-SC and DR-SC-tabu shapes); plans using
//! DRX adaptation, `mltc` notifications or connectionless reception
//! return `None` so the caller falls back to a full re-plan.

use std::collections::HashMap;

use nbiot_time::{SimInstant, TimeWindow};

use crate::improve::ImprovementStats;
use crate::set_cover::{KernelArena, WindowCover};
use crate::{DevicePlan, GroupingError, GroupingInput, MulticastPlan, PageDirective, Transmission};

/// Repairs `old` — a plan for an earlier fleet — into a valid plan for
/// `input`, the fleet after churn.
///
/// Returns `None` when the plan shape is not repairable (adaptation,
/// `mltc` or connectionless plans — those mechanisms re-plan fully).
///
/// On success the returned plan validates against `input`; its
/// [`MulticastPlan::improvement`] records the repair economics with the
/// same field layout as the tabu pass: `initial_cost` = old transmission
/// count, `final_cost` = repaired transmission count, `moves_accepted` =
/// arrivals attached to kept windows, `budget_spent` = leftover arrivals
/// that needed freshly solved windows.
///
/// # Errors
///
/// Returns [`GroupingError::NoUsablePo`] when a leftover device has no
/// paging occasion inside the search horizon (same feasibility condition
/// as a full DR-SC plan).
pub fn repair_plan(
    old: &MulticastPlan,
    input: &GroupingInput,
) -> Option<Result<MulticastPlan, GroupingError>> {
    crate::set_cover::DEFAULT_ARENA
        .with(|arena| repair_plan_with(old, input, &mut arena.borrow_mut()))
}

/// [`repair_plan`] with caller-owned kernel scratch.
///
/// The leftover re-solve runs through [`WindowCover::solve_in`] on
/// `arena`, so a long-lived caller (the grouping service patching plans
/// request after request) reuses the solver buffers across repairs
/// instead of re-allocating them. Output is **bit-identical** to
/// [`repair_plan`], which itself delegates here through a thread-local
/// arena.
///
/// # Errors
///
/// Same conditions as [`repair_plan`].
pub fn repair_plan_with(
    old: &MulticastPlan,
    input: &GroupingInput,
    arena: &mut KernelArena,
) -> Option<Result<MulticastPlan, GroupingError>> {
    if old.control_monitoring.is_some() || !old.requires_connection || !old.standards_compliant {
        return None;
    }
    if old
        .device_plans
        .iter()
        .any(|dp| dp.page.is_none() || dp.mltc.is_some() || dp.adaptation.is_some())
    {
        return None;
    }
    Some(repair_page_connect(old, input, arena))
}

fn repair_page_connect(
    old: &MulticastPlan,
    input: &GroupingInput,
    arena: &mut KernelArena,
) -> Result<MulticastPlan, GroupingError> {
    let params = input.params();
    let ti = params.ti.duration();
    let horizon = input.search_horizon();
    let by_device: HashMap<_, &DevicePlan> =
        old.device_plans.iter().map(|dp| (dp.device, dp)).collect();

    // Survivors keep their actions when still valid for their (possibly
    // re-drawn) schedule: the remembered PO must still be a real paging
    // occasion, inside the campaign, and before the serving transmission.
    let mut device_plans: Vec<Option<DevicePlan>> = vec![None; input.len()];
    let mut ejected: Vec<usize> = Vec::new();
    for (idx, (&id, sched)) in input.ids().iter().zip(input.schedules()).enumerate() {
        match by_device.get(&id) {
            Some(dp) => {
                let po = dp.page.expect("shape-checked above").po;
                if po >= params.start && po < dp.receives_at && sched.first_po_at_or_after(po) == po
                {
                    device_plans[idx] = Some(**dp);
                } else {
                    ejected.push(idx);
                }
            }
            None => ejected.push(idx),
        }
    }

    // Kept transmissions: original instants, surviving recipients only.
    let survivor_rx: HashMap<_, SimInstant> = device_plans
        .iter()
        .flatten()
        .map(|dp| (dp.device, dp.receives_at))
        .collect();
    let mut kept: Vec<Transmission> = old
        .transmissions
        .iter()
        .map(|tx| Transmission {
            at: tx.at,
            recipients: tx
                .recipients
                .iter()
                .copied()
                .filter(|d| survivor_rx.get(d) == Some(&tx.at))
                .collect(),
        })
        .filter(|tx| !tx.recipients.is_empty())
        .collect();

    // Attach ejected devices to the earliest kept window containing one
    // of their POs.
    let mut attached = 0u32;
    let mut leftover: Vec<usize> = Vec::new();
    for &idx in &ejected {
        let sched = &input.schedules()[idx];
        let mut placed = false;
        for tx in kept.iter_mut() {
            let window_start = tx.at.saturating_sub(ti).max(params.start);
            let po = sched.first_po_at_or_after(window_start);
            if po < tx.at {
                tx.recipients.push(input.ids()[idx]);
                device_plans[idx] = Some(DevicePlan {
                    device: input.ids()[idx],
                    page: Some(PageDirective { po }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(po),
                    receives_at: tx.at,
                });
                attached += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            leftover.push(idx);
        }
    }

    // Leftovers get freshly solved windows (greedy, DR-SC construction).
    let replanned = leftover.len() as u32;
    if !leftover.is_empty() {
        let mut events: Vec<Vec<SimInstant>> = Vec::with_capacity(leftover.len());
        let mut dense: Vec<bool> = Vec::with_capacity(leftover.len());
        for &idx in &leftover {
            let is_dense = input.paging_configs()[idx].cycle.period() <= ti;
            dense.push(is_dense);
            if is_dense {
                events.push(Vec::new());
            } else {
                events.push(input.schedules()[idx].pos_in(horizon));
            }
        }
        let slots = WindowCover::new(ti)
            .solve_in(horizon.start(), &events, &dense, arena)
            .ok_or_else(|| GroupingError::NoUsablePo {
                device: leftover
                    .iter()
                    .zip(&events)
                    .zip(&dense)
                    .find(|((_, e), &d)| e.is_empty() && !d)
                    .map(|((&idx, _), _)| input.ids()[idx])
                    .expect("solver fails only on sparse device without POs"),
                t: horizon.end(),
            })?;
        // Guard between last page and transmission: reuse DR-SC's default.
        let guard = crate::DrSc::default().guard;
        for slot in &slots {
            let members: Vec<usize> = slot.covered.iter().map(|&i| leftover[i]).collect();
            let pages: Vec<SimInstant> = members
                .iter()
                .map(|&idx| input.schedules()[idx].first_po_at_or_after(slot.window_start))
                .collect();
            let last_po = pages.iter().copied().max().expect("non-empty slot");
            let transmit_at = (last_po + guard).min(slot.transmit_at);
            for (&idx, &po) in members.iter().zip(&pages) {
                debug_assert!(po < transmit_at);
                device_plans[idx] = Some(DevicePlan {
                    device: input.ids()[idx],
                    page: Some(PageDirective { po }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(po),
                    receives_at: transmit_at,
                });
            }
            kept.push(Transmission {
                at: transmit_at,
                recipients: members.iter().map(|&idx| input.ids()[idx]).collect(),
            });
        }
    }

    kept.sort_by_key(|t| t.at);
    let device_plans: Vec<DevicePlan> = device_plans
        .into_iter()
        .map(|p| p.expect("every device kept, attached or re-planned"))
        .collect();
    let end = kept.last().map(|t| t.at).unwrap_or(horizon.end());
    let stats = ImprovementStats {
        initial_cost: old.transmission_count() as u32,
        final_cost: kept.len() as u32,
        moves_accepted: attached,
        budget_spent: replanned,
    };
    Ok(MulticastPlan {
        mechanism: old.mechanism.clone(),
        standards_compliant: true,
        requires_connection: true,
        transmissions: kept,
        device_plans,
        horizon: TimeWindow::new(params.start, end.max(horizon.end())),
        control_monitoring: None,
        improvement: Some(stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DaSc, DrSc, GroupingMechanism, GroupingParams, ScPtm};
    use nbiot_traffic::{ChurnModel, Population, TrafficMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input_for(n: usize, seed: u64) -> GroupingInput {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = TrafficMix::ericsson_city().generate(n, &mut rng).unwrap();
        GroupingInput::from_population(&pop, GroupingParams::default()).unwrap()
    }

    /// A (stale plan, churned input) pair: plan on the initial fleet,
    /// evolve it one churn epoch, return the plan plus the input for the
    /// evolved fleet and the churned population's size.
    fn churned_pair(n: usize, seed: u64, model: ChurnModel) -> (MulticastPlan, GroupingInput) {
        let mix = TrafficMix::mobility_churn();
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = mix.generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        let mut next_id = n as u32;
        let (evolved, events): (Population, _) =
            model.step(&mix, &pop, n, &mut next_id, &mut rng).unwrap();
        assert!(!events.is_quiet(), "fixture must actually churn");
        let churned = GroupingInput::from_population(&evolved, GroupingParams::default()).unwrap();
        (plan, churned)
    }

    #[test]
    fn unchanged_fleet_repairs_to_identical_actions() {
        let input = input_for(120, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        let repaired = repair_plan(&plan, &input).expect("repairable").unwrap();
        repaired.validate(&input).unwrap();
        assert_eq!(repaired.transmissions, plan.transmissions);
        assert_eq!(repaired.device_plans, plan.device_plans);
        assert_eq!(repaired.horizon, plan.horizon);
        let stats = repaired.improvement.unwrap();
        assert_eq!(stats.initial_cost, stats.final_cost);
        assert_eq!(stats.moves_accepted, 0);
        assert_eq!(stats.budget_spent, 0);
    }

    #[test]
    fn scptm_plans_are_not_repairable() {
        let input = input_for(30, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let plan = ScPtm::default().plan(&input, &mut rng).unwrap();
        assert!(repair_plan(&plan, &input).is_none());
    }

    #[test]
    fn adaptation_plans_are_not_repairable() {
        // DA-SC device plans carry DRX adaptations; the repair only knows
        // page-and-connect shapes, so it must decline and let the caller
        // re-plan fully.
        let input = input_for(30, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let plan = DaSc::new().plan(&input, &mut rng).unwrap();
        assert!(plan.device_plans.iter().any(|dp| dp.adaptation.is_some()));
        assert!(repair_plan(&plan, &input).is_none());
    }

    #[test]
    fn non_compliant_and_connectionless_shapes_are_not_repairable() {
        let input = input_for(40, 6);
        let mut rng = StdRng::seed_from_u64(6);
        let plan = DrSc::new().plan(&input, &mut rng).unwrap();
        let mut non_compliant = plan.clone();
        non_compliant.standards_compliant = false;
        assert!(repair_plan(&non_compliant, &input).is_none());
        let mut connectionless = plan.clone();
        connectionless.requires_connection = false;
        assert!(repair_plan(&connectionless, &input).is_none());
        let mut monitored = plan;
        monitored.control_monitoring = Some(crate::ControlMonitoring {
            period: nbiot_time::SimDuration::ZERO,
            per_occasion: nbiot_time::SimDuration::ZERO,
        });
        assert!(repair_plan(&monitored, &input).is_none());
    }

    #[test]
    fn churned_fleet_reattaches_arrivals_to_kept_windows() {
        let model = ChurnModel {
            epochs: 1,
            departure_rate: 0.15,
            arrival_rate: 0.2,
            handover_rate: 0.1,
        };
        let (plan, churned) = churned_pair(300, 8, model);
        let repaired = repair_plan(&plan, &churned).expect("repairable").unwrap();
        repaired.validate(&churned).unwrap();
        let stats = repaired.improvement.unwrap();
        assert!(
            stats.moves_accepted > 0,
            "expected some arrivals to attach to kept windows: {stats:?}"
        );
        // Every kept transmission sits at one of the old plan's instants.
        let old_instants: Vec<_> = plan.transmissions.iter().map(|tx| tx.at).collect();
        let kept = repaired
            .transmissions
            .iter()
            .filter(|tx| old_instants.contains(&tx.at))
            .count();
        assert!(kept > 0, "churn at these rates must keep some windows");
        // Attached devices page inside the window of the serving
        // transmission — the reattach invariant.
        for dp in &repaired.device_plans {
            let po = dp.page.expect("page-and-connect shape").po;
            assert!(po < dp.receives_at);
        }
    }

    #[test]
    fn unreachable_arrivals_fall_through_to_fresh_windows() {
        // Heavy departures destroy most windows, heavy arrivals then
        // overflow what's left: some arrivals must take the leftover
        // (fresh greedy solve) path rather than attach.
        let model = ChurnModel {
            epochs: 1,
            departure_rate: 0.9,
            arrival_rate: 0.8,
            handover_rate: 0.0,
        };
        let (plan, churned) = churned_pair(200, 9, model);
        let repaired = repair_plan(&plan, &churned).expect("repairable").unwrap();
        repaired.validate(&churned).unwrap();
        let stats = repaired.improvement.unwrap();
        assert!(
            stats.budget_spent > 0,
            "expected leftover re-planned arrivals: {stats:?}"
        );
    }

    #[test]
    fn caller_owned_arena_repair_is_bit_identical_across_reuse() {
        // One arena serving repair after repair (the service's steady
        // state) must reproduce the thread-local path bit-for-bit.
        let mut arena = KernelArena::new();
        for seed in [8u64, 9, 21] {
            let model = ChurnModel {
                epochs: 1,
                departure_rate: 0.3,
                arrival_rate: 0.4,
                handover_rate: 0.1,
            };
            let (plan, churned) = churned_pair(150, seed, model);
            let fresh = repair_plan(&plan, &churned).expect("repairable").unwrap();
            let reused = repair_plan_with(&plan, &churned, &mut arena)
                .expect("repairable")
                .unwrap();
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }
}
