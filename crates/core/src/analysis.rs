//! Closed-form / fluid approximations of the grouping mechanisms.
//!
//! The simulator measures; this module *predicts*. Having an analytic
//! counterpart serves two purposes: it cross-checks the simulation (the
//! tests require agreement within tolerance), and it explains the Fig. 7
//! curve structurally — why the DR-SC transmission count scales the way it
//! does with the cycle mix.
//!
//! # The DR-SC fluid model
//!
//! A device with paging cycle `C > TI` has a paging occasion inside a
//! randomly placed `TI`-window with probability `p = TI / C`; a device with
//! `C <= TI` ("dense") is inside *every* window. Model the greedy cover as
//! a deterministic process over expected values: each transmission covers
//! its anchor device (probability 1) plus, independently, every other
//! remaining device `j` with probability `p_j`:
//!
//! ```text
//! cov_c = p_c * n_c + anchor share        expected coverage per class
//! n_c  -= cov_c                           one Euler step per transmission
//! ```
//!
//! For a single class this integrates to the familiar
//! `T(n, p) = ln(1 + p n) / p`; the mixture couples classes through the
//! anchor allocation. The model ignores the greedy's max-selection (which
//! beats the random-window average early on) and phase correlations, so it
//! overestimates slightly at large `n`; the tests accept a ±35 % band and
//! the EXPERIMENTS.md tables show the actual agreement.

use nbiot_time::SimDuration;

use crate::GroupingInput;

/// The analytic DR-SC prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DrScEstimate {
    /// Predicted number of multicast transmissions.
    pub transmissions: f64,
    /// Devices whose cycle fits inside `TI` (covered by any window).
    pub dense_devices: usize,
    /// Devices with cycles longer than `TI`.
    pub sparse_devices: usize,
    /// Mean single-window coverage probability across sparse devices.
    pub mean_coverage: f64,
}

/// Predicts the expected DR-SC transmission count for `input` without
/// running the set cover.
///
/// # Example
///
/// ```
/// use nbiot_grouping::{analysis, GroupingInput, GroupingParams};
/// use nbiot_traffic::TrafficMix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let pop = TrafficMix::ericsson_city().generate(300, &mut rng)?;
/// let input = GroupingInput::from_population(&pop, GroupingParams::default())?;
/// let est = analysis::estimate_dr_sc_transmissions(&input);
/// // The city mix needs transmissions of the same order as the group size.
/// assert!(est.transmissions > 60.0 && est.transmissions < 300.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_dr_sc_transmissions(input: &GroupingInput) -> DrScEstimate {
    let ti = input.params().ti.duration();
    let mut sparse: Vec<f64> = Vec::new(); // per-device coverage probability
    let mut dense = 0usize;
    for paging in input.paging_configs() {
        let cycle = paging.cycle.period();
        if cycle <= ti {
            dense += 1;
        } else {
            sparse.push(ti.as_ms() as f64 / cycle.as_ms() as f64);
        }
    }
    let sparse_count = sparse.len();
    let mean_coverage = if sparse.is_empty() {
        0.0
    } else {
        sparse.iter().sum::<f64>() / sparse.len() as f64
    };

    // Group sparse devices into probability classes to integrate cheaply.
    let mut classes: std::collections::BTreeMap<u64, (f64, f64)> =
        std::collections::BTreeMap::new();
    for p in sparse {
        let key = (p * 1e9) as u64;
        let entry = classes.entry(key).or_insert((p, 0.0));
        entry.1 += 1.0;
    }
    let mut n: Vec<(f64, f64)> = classes.into_values().collect(); // (p, count)

    let mut transmissions = 0.0f64;
    let cap = 4 * (sparse_count + 1);
    while n.iter().map(|&(_, c)| c).sum::<f64>() > 0.5 && (transmissions as usize) < cap {
        let total: f64 = n.iter().map(|&(_, c)| c).sum();
        let mut cov: Vec<f64> = n.iter().map(|&(p, c)| p * c).collect();
        // The anchor device is covered with certainty *in addition to* the
        // probabilistic coverage (dn/dT = -(1 + p n)); allocate it
        // proportionally to the remaining class mass.
        for ((_, c), cv) in n.iter().zip(cov.iter_mut()) {
            *cv += c / total;
        }
        for ((_, c), cv) in n.iter_mut().zip(&cov) {
            *c = (*c - cv).max(0.0);
        }
        transmissions += 1.0;
    }
    // Dense devices ride the first transmission: at least one exists.
    if dense > 0 && transmissions < 1.0 {
        transmissions = 1.0;
    }
    DrScEstimate {
        transmissions,
        dense_devices: dense,
        sparse_devices: sparse_count,
        mean_coverage,
    }
}

/// Expected waiting time between a device's connection and the multicast
/// instant for the single-transmission mechanisms (DA-SC landings and
/// DR-SI T322 draws are uniform over the window): `TI / 2`.
pub fn expected_single_transmission_wait(ti: SimDuration) -> SimDuration {
    ti / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DrSc, GroupingMechanism, GroupingParams};
    use nbiot_time::{DrxCycle, EdrxCycle, PagingCycle};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input_for(mix: &TrafficMix, n: usize, seed: u64) -> GroupingInput {
        let pop = mix.generate(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        GroupingInput::from_population(&pop, GroupingParams::default()).unwrap()
    }

    fn simulated_transmissions(input: &GroupingInput, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        DrSc::new()
            .plan(input, &mut rng)
            .unwrap()
            .transmission_count() as f64
    }

    #[test]
    fn all_dense_is_one_transmission() {
        let mix = TrafficMix::uniform(PagingCycle::Drx(DrxCycle::Rf256));
        let input = input_for(&mix, 40, 1);
        let est = estimate_dr_sc_transmissions(&input);
        assert_eq!(est.dense_devices, 40);
        assert_eq!(est.transmissions, 1.0);
        assert_eq!(simulated_transmissions(&input, 2), 1.0);
    }

    #[test]
    fn single_class_matches_integral_form() {
        // For one class, the fluid recursion should track ln(1 + p n) / p.
        let mix = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf256));
        let input = input_for(&mix, 120, 3);
        let est = estimate_dr_sc_transmissions(&input);
        let p = est.mean_coverage;
        let closed_form = (1.0 + p * 120.0).ln() / p;
        assert!(
            (est.transmissions - closed_form).abs() / closed_form < 0.1,
            "fluid {} vs closed form {}",
            est.transmissions,
            closed_form
        );
    }

    #[test]
    fn estimate_tracks_simulation_for_uniform_meters() {
        let mix = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf256));
        let input = input_for(&mix, 150, 4);
        let est = estimate_dr_sc_transmissions(&input).transmissions;
        let mut sim_mean = 0.0;
        for seed in 0..5 {
            sim_mean += simulated_transmissions(&input, seed) / 5.0;
        }
        let err = (est - sim_mean).abs() / sim_mean;
        assert!(err < 0.35, "estimate {est} vs simulated {sim_mean}");
    }

    #[test]
    fn estimate_tracks_simulation_for_city_mix() {
        let mix = TrafficMix::ericsson_city();
        let input = input_for(&mix, 300, 5);
        let est = estimate_dr_sc_transmissions(&input).transmissions;
        let mut sim_mean = 0.0;
        for seed in 0..5 {
            sim_mean += simulated_transmissions(&input, seed) / 5.0;
        }
        let err = (est - sim_mean).abs() / sim_mean;
        assert!(err < 0.35, "estimate {est} vs simulated {sim_mean}");
    }

    #[test]
    fn estimate_grows_sublinearly() {
        let mix = TrafficMix::ericsson_city();
        let small = estimate_dr_sc_transmissions(&input_for(&mix, 100, 6));
        let large = estimate_dr_sc_transmissions(&input_for(&mix, 1000, 6));
        assert!(large.transmissions > small.transmissions);
        // Ratio-to-devices declines with N (the Fig. 7 slope).
        assert!(large.transmissions / 1000.0 < small.transmissions / 100.0);
    }

    #[test]
    fn expected_wait_is_half_ti() {
        assert_eq!(
            expected_single_transmission_wait(SimDuration::from_secs(10)),
            SimDuration::from_secs(5)
        );
    }
}
