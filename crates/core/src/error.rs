//! Grouping errors and plan-invariant violations.

use core::fmt;

use nbiot_time::SimInstant;
use nbiot_traffic::DeviceId;

/// Errors produced while computing a grouping plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GroupingError {
    /// The group contains no devices.
    EmptyGroup,
    /// The inactivity timer is shorter than the shortest standard DRX
    /// cycle, so DA-SC cannot guarantee a PO inside the pre-transmission
    /// window (the paper's guarantee "since the shortest DRX cycle is
    /// typically much shorter than TI" is violated).
    TiTooShort {
        /// Configured TI in ms.
        ti_ms: u64,
        /// Shortest standard cycle in ms.
        shortest_cycle_ms: u64,
    },
    /// The chosen transmission time leaves a device without any paging
    /// occasion to be notified or adapted at.
    NoUsablePo {
        /// The stranded device.
        device: DeviceId,
        /// The transmission instant that was attempted.
        t: SimInstant,
    },
    /// A paging-schedule resolution failed.
    Schedule(nbiot_time::TimeError),
    /// The transmission time override precedes the feasible minimum.
    TransmissionTooEarly {
        /// Requested instant.
        requested: SimInstant,
        /// Minimum feasible instant (`start + 2·maxDRX`).
        minimum: SimInstant,
    },
}

impl fmt::Display for GroupingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupingError::EmptyGroup => f.write_str("multicast group is empty"),
            GroupingError::TiTooShort {
                ti_ms,
                shortest_cycle_ms,
            } => write!(
                f,
                "inactivity timer {ti_ms} ms is shorter than the shortest DRX cycle {shortest_cycle_ms} ms"
            ),
            GroupingError::NoUsablePo { device, t } => {
                write!(f, "{device} has no usable paging occasion before {t}")
            }
            GroupingError::Schedule(e) => write!(f, "paging schedule resolution failed: {e}"),
            GroupingError::TransmissionTooEarly { requested, minimum } => write!(
                f,
                "transmission time {requested} precedes feasible minimum {minimum}"
            ),
        }
    }
}

impl std::error::Error for GroupingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GroupingError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nbiot_time::TimeError> for GroupingError {
    fn from(e: nbiot_time::TimeError) -> Self {
        GroupingError::Schedule(e)
    }
}

/// A violated invariant of a [`crate::MulticastPlan`], reported by
/// [`crate::MulticastPlan::validate`].
///
/// Any violation is a bug in a mechanism implementation; the test suite
/// asserts that none is ever produced.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanViolation {
    /// A device is served by zero or multiple transmissions.
    NotExactlyOnce {
        /// The mis-served device.
        device: DeviceId,
        /// Number of transmissions listing the device as recipient.
        times: usize,
    },
    /// A device connects outside `[receives_at − TI, receives_at]`, so its
    /// inactivity timer would have expired (or it would miss the data).
    InactivityViolated {
        /// The affected device.
        device: DeviceId,
        /// When the device connects.
        connect_at: SimInstant,
        /// When its transmission happens.
        receives_at: SimInstant,
    },
    /// Transmissions are not sorted in time.
    UnsortedTransmissions,
    /// A device plan references a transmission instant that does not exist.
    UnknownTransmission {
        /// The affected device.
        device: DeviceId,
        /// The dangling instant.
        receives_at: SimInstant,
    },
    /// The plan claims standards compliance but uses non-standard
    /// signalling (or vice versa).
    ComplianceMismatch,
    /// An action is scheduled before the campaign start.
    BeforeStart {
        /// The affected device.
        device: DeviceId,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::NotExactlyOnce { device, times } => {
                write!(f, "{device} is served by {times} transmissions instead of 1")
            }
            PlanViolation::InactivityViolated {
                device,
                connect_at,
                receives_at,
            } => write!(
                f,
                "{device} connects at {connect_at} but receives at {receives_at}: outside the inactivity window"
            ),
            PlanViolation::UnsortedTransmissions => {
                f.write_str("transmissions are not sorted by time")
            }
            PlanViolation::UnknownTransmission { device, receives_at } => {
                write!(f, "{device} references unknown transmission at {receives_at}")
            }
            PlanViolation::ComplianceMismatch => {
                f.write_str("plan compliance flag contradicts its signalling")
            }
            PlanViolation::BeforeStart { device } => {
                write!(f, "{device} has an action scheduled before campaign start")
            }
        }
    }
}

impl std::error::Error for PlanViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_error_display() {
        let e = GroupingError::TiTooShort {
            ti_ms: 100,
            shortest_cycle_ms: 320,
        };
        assert!(e.to_string().contains("100 ms"));
        assert!(e.to_string().contains("320 ms"));
    }

    #[test]
    fn plan_violation_display() {
        let v = PlanViolation::NotExactlyOnce {
            device: DeviceId(3),
            times: 2,
        };
        assert!(v.to_string().contains("dev3"));
        assert!(v.to_string().contains("2 transmissions"));
    }
}
