//! SC-PTM baseline: the standardized single-cell multicast (paper
//! Sec. II-A). Planning is trivial (one announced transmission, no
//! cover); its cost is the continuous SC-MCCH monitoring the simulator
//! charges every device (see `docs/ARCHITECTURE.md` for where baselines
//! sit in the comparison pipeline).

use rand::RngCore;

use nbiot_time::{SimDuration, SimInstant, TimeWindow};

use crate::{
    ControlMonitoring, DevicePlan, GroupingError, GroupingInput, GroupingMechanism, MulticastPlan,
    Transmission,
};

/// The Single Cell – Point To Multipoint baseline.
///
/// SC-PTM is subscription-based: the eNB announces sessions on the SC-MCCH
/// control channel, which *every subscribed device must monitor
/// periodically* — on top of its normal paging — to learn about upcoming
/// transmissions. This periodic monitoring is exactly why the paper (and
/// its reference \[3\]) judge SC-PTM inefficient for NB-IoT: the light-sleep
/// cost accrues continuously, even when no multicast ever happens.
///
/// Reception itself is connectionless (SC-MTCH), so no random access is
/// needed: the session-start announcement carries the transmission time and
/// every device wakes for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScPtm {
    /// SC-MCCH monitoring/modification period.
    pub mcch_period: SimDuration,
    /// Light-sleep time spent per SC-MCCH monitoring occasion.
    pub mcch_occasion: SimDuration,
}

impl Default for ScPtm {
    fn default() -> Self {
        ScPtm {
            // One SC-MCCH modification period of 10.24 s — the longest
            // standard value, i.e. the most favourable for SC-PTM.
            mcch_period: SimDuration::from_ms(10_240),
            mcch_occasion: SimDuration::from_ms(4),
        }
    }
}

impl ScPtm {
    /// Creates the baseline with default SC-MCCH settings.
    pub fn new() -> ScPtm {
        ScPtm::default()
    }
}

impl GroupingMechanism for ScPtm {
    fn name(&self) -> String {
        "SC-PTM".to_string()
    }

    fn is_standards_compliant(&self) -> bool {
        true
    }

    fn plan(
        &self,
        input: &GroupingInput,
        _rng: &mut dyn RngCore,
    ) -> Result<MulticastPlan, GroupingError> {
        let params = input.params();
        // Announcement lands on the next SC-MCCH occasion after the content
        // arrives; the session starts one modification period later.
        let period = self.mcch_period.as_ms();
        let announce_ms = params.start.as_ms().div_ceil(period).max(1) * period;
        let t = SimInstant::from_ms(announce_ms) + self.mcch_period;

        let device_plans: Vec<DevicePlan> = input
            .ids()
            .iter()
            .map(|&id| DevicePlan {
                device: id,
                page: None,
                mltc: None,
                adaptation: None,
                connect_at: None, // connectionless SC-MTCH reception
                receives_at: t,
            })
            .collect();
        let recipients = device_plans.iter().map(|p| p.device).collect();
        Ok(MulticastPlan {
            mechanism: self.name(),
            standards_compliant: true,
            requires_connection: false,
            transmissions: vec![Transmission { at: t, recipients }],
            device_plans,
            horizon: TimeWindow::new(params.start, t),
            control_monitoring: Some(ControlMonitoring {
                period: self.mcch_period,
                per_occasion: self.mcch_occasion,
            }),
            improvement: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(n: usize, seed: u64) -> (GroupingInput, MulticastPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = TrafficMix::ericsson_city().generate(n, &mut rng).unwrap();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let plan = ScPtm::new().plan(&input, &mut rng).unwrap();
        (input, plan)
    }

    #[test]
    fn single_connectionless_transmission() {
        let (input, plan) = plan_for(50, 1);
        plan.validate(&input).unwrap();
        assert_eq!(plan.transmission_count(), 1);
        assert!(!plan.requires_connection);
        assert!(plan.device_plans.iter().all(|p| p.connect_at.is_none()));
    }

    #[test]
    fn transmission_is_fast_not_waiting_for_drx() {
        // SC-PTM does not wait 2 * maxDRX: the announcement mechanism is
        // the periodic SC-MCCH, so delivery happens within two periods.
        let (_, plan) = plan_for(50, 2);
        let t = plan.single_transmission_time().unwrap();
        assert!(t <= SimInstant::from_ms(2 * 10_240 + 10_240));
    }

    #[test]
    fn control_monitoring_is_advertised() {
        let (_, plan) = plan_for(10, 3);
        let cm = plan.control_monitoring.expect("SC-PTM monitors SC-MCCH");
        assert_eq!(cm.period, SimDuration::from_ms(10_240));
        assert!(!cm.per_occasion.is_zero());
    }
}
