//! Grouping problem input.

use nbiot_phy::CoverageClass;
use nbiot_rrc::InactivityTimer;
use nbiot_time::{CycleLadder, PagingConfig, PagingSchedule, SimDuration, SimInstant, UeId};
use nbiot_traffic::{ClassId, DeviceId, DeviceProfile, Population};

use crate::GroupingError;

/// Tunable parameters of a grouping problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroupingParams {
    /// When the multicast content becomes available at the eNB.
    pub start: SimInstant,
    /// The RRC inactivity timer `TI`.
    pub ti: InactivityTimer,
    /// Optional override of the single-transmission instant `t` used by
    /// DA-SC and DR-SI; defaults to `start + 2·maxDRX` (the paper's
    /// minimum).
    pub transmission_time: Option<SimInstant>,
}

impl Default for GroupingParams {
    fn default() -> Self {
        GroupingParams {
            start: SimInstant::ZERO,
            ti: InactivityTimer::default(),
            transmission_time: None,
        }
    }
}

/// A fully resolved grouping problem: the device group, their paging
/// schedules, and the parameters.
///
/// Device attributes are stored **struct-of-arrays** (one column per
/// attribute, all in device order), mirroring
/// [`Population`]'s layout: campaign execution walks only the columns it
/// needs (`ues` for recipient identity, `paging_configs` for PO math) and
/// building an input from a population is five column clones, not n
/// struct copies. The row view [`GroupingInput::device`] /
/// [`GroupingInput::iter`] materializes a [`DeviceProfile`] on demand.
#[derive(Debug, Clone)]
pub struct GroupingInput {
    ids: Vec<DeviceId>,
    ues: Vec<UeId>,
    classes: Vec<ClassId>,
    pagings: Vec<PagingConfig>,
    report_intervals: Vec<SimDuration>,
    /// Coverage-enhancement class per device, resolved from the
    /// population's class-level table — the airtime weight column the
    /// cost-aware DR-SC variant prices windows with.
    coverages: Vec<CoverageClass>,
    schedules: Vec<PagingSchedule>,
    params: GroupingParams,
    max_cycle: SimDuration,
    /// `(id, position)` pairs sorted by id: the identity → device-order
    /// index map, precomputed once so per-campaign execution does no hash
    /// map construction (recipient lists reference devices by identity).
    positions: Vec<(DeviceId, usize)>,
}

impl GroupingInput {
    /// Builds the input from a generated population — a straight clone of
    /// the population's columns, with schedules resolved from the
    /// `pagings`/`ues` pair.
    ///
    /// # Errors
    ///
    /// * [`GroupingError::EmptyGroup`] for an empty population,
    /// * [`GroupingError::TiTooShort`] when `TI` is shorter than the
    ///   shortest standard DRX cycle (DA-SC's feasibility guarantee),
    /// * [`GroupingError::Schedule`] when a paging schedule cannot be
    ///   resolved.
    pub fn from_population(
        pop: &Population,
        params: GroupingParams,
    ) -> Result<GroupingInput, GroupingError> {
        if pop.is_empty() {
            return Err(GroupingError::EmptyGroup);
        }
        Self::validate_ti(&params)?;
        let schedules = pop.schedules()?;
        let max_cycle = pop.max_cycle();
        let ids: Vec<DeviceId> = (0..pop.len()).map(|i| pop.id(i)).collect();
        let positions = Self::index_positions(&ids);
        Ok(GroupingInput {
            ids,
            ues: pop.ues().to_vec(),
            classes: pop.classes().to_vec(),
            pagings: pop.paging_configs().to_vec(),
            report_intervals: pop.report_intervals().to_vec(),
            coverages: pop.classes().iter().map(|&c| pop.coverage_of(c)).collect(),
            schedules,
            params,
            max_cycle,
            positions,
        })
    }

    /// Builds the input from an explicit device list.
    ///
    /// # Errors
    ///
    /// Same as [`GroupingInput::from_population`].
    pub fn from_devices(
        devices: Vec<DeviceProfile>,
        params: GroupingParams,
    ) -> Result<GroupingInput, GroupingError> {
        if devices.is_empty() {
            return Err(GroupingError::EmptyGroup);
        }
        Self::validate_ti(&params)?;
        let schedules = devices
            .iter()
            .map(|d| d.schedule())
            .collect::<Result<Vec<_>, _>>()?;
        let max_cycle = devices
            .iter()
            .map(|d| d.paging.cycle.period())
            .max()
            .expect("non-empty");
        let n = devices.len();
        let mut ids = Vec::with_capacity(n);
        let mut ues = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        let mut pagings = Vec::with_capacity(n);
        let mut report_intervals = Vec::with_capacity(n);
        for d in devices {
            ids.push(d.id);
            ues.push(d.ue);
            classes.push(d.class);
            pagings.push(d.paging);
            report_intervals.push(d.report_interval);
        }
        let positions = Self::index_positions(&ids);
        let coverages = vec![CoverageClass::default(); ids.len()];
        Ok(GroupingInput {
            ids,
            ues,
            classes,
            pagings,
            report_intervals,
            coverages,
            schedules,
            params,
            max_cycle,
            positions,
        })
    }

    fn validate_ti(params: &GroupingParams) -> Result<(), GroupingError> {
        let shortest = SimDuration::from_frames(CycleLadder::FRAMES[0]);
        if params.ti.duration() < shortest {
            return Err(GroupingError::TiTooShort {
                ti_ms: params.ti.duration().as_ms(),
                shortest_cycle_ms: shortest.as_ms(),
            });
        }
        Ok(())
    }

    fn index_positions(ids: &[DeviceId]) -> Vec<(DeviceId, usize)> {
        let mut positions: Vec<(DeviceId, usize)> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        positions.sort_unstable();
        positions
    }

    /// The device-order position of the device with identity `id`, or
    /// `None` when `id` is not part of this group. Binary search over the
    /// precomputed sorted index — no per-lookup hashing, no per-campaign
    /// map construction.
    pub fn position_of(&self, id: DeviceId) -> Option<usize> {
        self.positions
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.positions[i].1)
    }

    /// The device at position `i` (cheap: materialized from the columns).
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    #[inline]
    pub fn device(&self, i: usize) -> DeviceProfile {
        DeviceProfile {
            id: self.ids[i],
            ue: self.ues[i],
            class: self.classes[i],
            paging: self.pagings[i],
            report_interval: self.report_intervals[i],
        }
    }

    /// Iterates the group in device order, materializing each row view.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = DeviceProfile> + '_ {
        (0..self.len()).map(|i| self.device(i))
    }

    /// Materializes the whole group as a device list — interop for
    /// callers that edit rows; hot paths should use the column accessors.
    pub fn profiles(&self) -> Vec<DeviceProfile> {
        self.iter().collect()
    }

    /// Device identities, in device order.
    pub fn ids(&self) -> &[DeviceId] {
        &self.ids
    }

    /// Paging identities, in device order.
    pub fn ues(&self) -> &[UeId] {
        &self.ues
    }

    /// Device classes, in device order.
    pub fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    /// Paging configurations, in device order.
    pub fn paging_configs(&self) -> &[PagingConfig] {
        &self.pagings
    }

    /// Report intervals, in device order.
    pub fn report_intervals(&self) -> &[SimDuration] {
        &self.report_intervals
    }

    /// Coverage-enhancement classes, in device order. All
    /// [`CoverageClass::Normal`] for inputs built from explicit device
    /// lists ([`GroupingInput::from_devices`]) — only populations carry a
    /// class-level coverage table.
    pub fn coverages(&self) -> &[CoverageClass] {
        &self.coverages
    }

    /// Paging schedules, in device order.
    pub fn schedules(&self) -> &[PagingSchedule] {
        &self.schedules
    }

    /// The parameters.
    pub fn params(&self) -> &GroupingParams {
        &self.params
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the group is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The longest paging cycle in the group (`maxDRX`).
    pub fn max_cycle(&self) -> SimDuration {
        self.max_cycle
    }

    /// The default single-transmission instant: `start + 2·maxDRX`, the
    /// earliest time by which every device is guaranteed at least one PO
    /// (paper Sec. III-B).
    pub fn default_transmission_time(&self) -> SimInstant {
        self.params.start + self.max_cycle * 2
    }

    /// The effective single-transmission instant `t` for DA-SC/DR-SI.
    ///
    /// # Errors
    ///
    /// [`GroupingError::TransmissionTooEarly`] when an override precedes
    /// the feasible minimum.
    pub fn transmission_time(&self) -> Result<SimInstant, GroupingError> {
        let minimum = self.default_transmission_time();
        match self.params.transmission_time {
            None => Ok(minimum),
            Some(t) if t >= minimum => Ok(t),
            Some(t) => Err(GroupingError::TransmissionTooEarly {
                requested: t,
                minimum,
            }),
        }
    }

    /// The DR-SC search horizon: `[start, start + 2·maxDRX)` — the PO
    /// pattern repeats after `maxDRX` (all cycles are powers of two with a
    /// common origin), so per the paper nothing new appears past twice the
    /// largest cycle.
    pub fn search_horizon(&self) -> nbiot_time::TimeWindow {
        nbiot_time::TimeWindow::new(self.params.start, self.default_transmission_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_time::{DrxCycle, EdrxCycle, PagingCycle};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(n: usize) -> GroupingInput {
        let pop = TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(5))
            .unwrap();
        GroupingInput::from_population(&pop, GroupingParams::default()).unwrap()
    }

    #[test]
    fn empty_group_rejected() {
        let err = GroupingInput::from_devices(vec![], GroupingParams::default()).unwrap_err();
        assert_eq!(err, GroupingError::EmptyGroup);
    }

    #[test]
    fn ti_shorter_than_shortest_cycle_rejected() {
        let pop = TrafficMix::uniform(PagingCycle::Drx(DrxCycle::Rf32))
            .generate(3, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let params = GroupingParams {
            ti: InactivityTimer::new(SimDuration::from_ms(100)),
            ..GroupingParams::default()
        };
        let err = GroupingInput::from_population(&pop, params).unwrap_err();
        assert!(matches!(err, GroupingError::TiTooShort { .. }));
    }

    #[test]
    fn default_t_is_twice_max_cycle() {
        let pop = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf8))
            .generate(5, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let inp = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        assert_eq!(
            inp.default_transmission_time(),
            SimInstant::ZERO + EdrxCycle::Hf8.duration() * 2
        );
        assert_eq!(
            inp.transmission_time().unwrap(),
            inp.default_transmission_time()
        );
    }

    #[test]
    fn early_override_rejected_late_accepted() {
        let inp = input(10);
        let minimum = inp.default_transmission_time();
        let late = GroupingParams {
            transmission_time: Some(minimum + SimDuration::from_secs(60)),
            ..GroupingParams::default()
        };
        let inp2 = GroupingInput::from_devices(inp.profiles(), late).unwrap();
        assert_eq!(
            inp2.transmission_time().unwrap(),
            minimum + SimDuration::from_secs(60)
        );
        let early = GroupingParams {
            transmission_time: Some(SimInstant::from_ms(1)),
            ..GroupingParams::default()
        };
        let inp3 = GroupingInput::from_devices(inp.profiles(), early).unwrap();
        assert!(matches!(
            inp3.transmission_time(),
            Err(GroupingError::TransmissionTooEarly { .. })
        ));
    }

    #[test]
    fn schedules_align_with_devices() {
        let inp = input(40);
        assert_eq!(inp.len(), inp.schedules().len());
        assert_eq!(inp.len(), 40);
        assert!(!inp.is_empty());
    }

    #[test]
    fn population_and_device_list_construction_agree() {
        // from_population clones columns; from_devices decomposes rows.
        // Both must land on the same input.
        let pop = TrafficMix::ericsson_city()
            .generate(60, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let a = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let b = GroupingInput::from_devices(pop.profiles(), GroupingParams::default()).unwrap();
        assert_eq!(a.profiles(), b.profiles());
        assert_eq!(a.schedules(), b.schedules());
        assert_eq!(a.max_cycle(), b.max_cycle());
    }

    #[test]
    fn row_view_matches_columns() {
        let inp = input(30);
        for (i, d) in inp.iter().enumerate() {
            assert_eq!(d.id, inp.ids()[i]);
            assert_eq!(d.ue, inp.ues()[i]);
            assert_eq!(d.class, inp.classes()[i]);
            assert_eq!(d.paging, inp.paging_configs()[i]);
            assert_eq!(d.report_interval, inp.report_intervals()[i]);
        }
    }

    #[test]
    fn coverages_resolve_from_class_table() {
        let pop = TrafficMix::heterogeneous_coverage()
            .generate(200, &mut StdRng::seed_from_u64(8))
            .unwrap();
        let inp = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        assert_eq!(inp.coverages().len(), inp.len());
        for (i, d) in inp.iter().enumerate() {
            assert_eq!(inp.coverages()[i], pop.coverage_of(d.class), "device {i}");
        }
        // Some depth must actually appear in the heterogeneous mix.
        assert!(inp.coverages().iter().any(|&c| c != CoverageClass::Normal));
        // Device-list construction has no class table: all CE0.
        let from_rows =
            GroupingInput::from_devices(pop.profiles(), GroupingParams::default()).unwrap();
        assert!(from_rows
            .coverages()
            .iter()
            .all(|&c| c == CoverageClass::Normal));
    }

    #[test]
    fn position_index_resolves_every_device() {
        let inp = input(40);
        for (i, &id) in inp.ids().iter().enumerate() {
            assert_eq!(inp.position_of(id), Some(i));
        }
        let absent = nbiot_traffic::DeviceId(u32::MAX);
        assert!(inp.ids().iter().all(|&id| id != absent));
        assert_eq!(inp.position_of(absent), None);
    }

    #[test]
    fn position_index_survives_permuted_device_order() {
        let inp = input(20);
        let mut devices = inp.profiles();
        devices.reverse();
        let permuted = GroupingInput::from_devices(devices, *inp.params()).unwrap();
        for (i, &id) in permuted.ids().iter().enumerate() {
            assert_eq!(permuted.position_of(id), Some(i));
        }
    }
}
