//! Device grouping mechanisms for NB-IoT multicast — the primary
//! contribution of Tsoukaneri & Marina, *On Device Grouping for Efficient
//! Multicast Communications in Narrowband-IoT* (ICDCS 2018).
//!
//! A group of NB-IoT devices must receive the same payload (e.g. a firmware
//! image). Devices sleep on heterogeneous (e)DRX cycles and are reachable
//! only at their paging occasions (POs); a device paged at a PO stays awake
//! for the inactivity timer `TI`, so a multicast transmission at time `t`
//! reaches exactly the devices with a PO in `[t − TI, t)`.
//!
//! Three mechanisms (paper Sec. III), all implementing
//! [`GroupingMechanism`]:
//!
//! * [`DrSc`] — *DRX Respecting, Standards Compliant*: leaves every DRX
//!   cycle untouched and covers the group with multiple transmissions,
//!   chosen by a greedy set cover ([`set_cover`]) over the PO timeline.
//!   Lowest energy, highest bandwidth.
//! * [`DaSc`] — *DRX Adjusting, Standards Compliant*: picks a single
//!   transmission instant `t ≥ start + 2·maxDRX` and temporarily shortens
//!   the DRX cycle of every device without a PO in `[t − TI, t)` (via
//!   standard RRC reconfiguration at the last PO before `t − TI`) so that
//!   one transmission covers everyone. One transmission, slightly more
//!   energy.
//! * [`DrSi`] — *DRX Respecting, Standards Incompliant*: notifies devices
//!   in advance through a non-critical paging extension
//!   (`mltc-transmission`); each device arms the T322 timer at a random
//!   instant in `[t − TI, t)` and connects just in time. One transmission,
//!   near-baseline energy, but not standards-compliant.
//!
//! Baselines: [`Unicast`] (per-device delivery — the paper's energy
//! reference) and [`ScPtm`] (the standardized SC-PTM multicast, as
//! discussed in Sec. II-A).
//!
//! Every mechanism produces a [`MulticastPlan`] — a declarative schedule of
//! transmissions, pagings, adaptations and wake-ups that the `nbiot-sim`
//! crate executes event-by-event, and whose invariants
//! ([`MulticastPlan::validate`]) are enforced in tests.
//!
//! # Example
//!
//! ```
//! use nbiot_grouping::{DrSc, GroupingInput, GroupingMechanism, GroupingParams};
//! use nbiot_traffic::TrafficMix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pop = TrafficMix::ericsson_city().generate(50, &mut rng)?;
//! let input = GroupingInput::from_population(&pop, GroupingParams::default())?;
//! let plan = DrSc::default().plan(&input, &mut rng)?;
//! plan.validate(&input)?;
//! // Every device is served by exactly one of the (usually many) DR-SC
//! // transmissions.
//! assert_eq!(plan.device_plans.len(), 50);
//! assert!(plan.transmissions.len() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
mod da_sc;
mod dr_sc;
mod dr_si;
mod error;
pub mod improve;
mod input;
mod mechanism;
mod plan;
mod recommend;
pub mod repair;
mod scptm;
pub mod set_cover;
mod unicast;

pub use da_sc::{AdaptationGrid, DaSc};
pub use dr_sc::{DrSc, DrScTabu, DrScWeighted, DEFAULT_TABU_BUDGET};
pub use dr_si::{DrSi, NotifyPolicy};
pub use error::{GroupingError, PlanViolation};
pub use improve::{Budget, ImprovementStats};
pub use input::{GroupingInput, GroupingParams};
pub use mechanism::{GroupingMechanism, MechanismKind};
pub use plan::{
    AdaptationDirective, ControlMonitoring, DevicePlan, MltcDirective, MulticastPlan,
    PageDirective, Transmission,
};
pub use recommend::{recommend, Recommendation, SelectionPolicy};
pub use repair::{repair_plan, repair_plan_with};
pub use scptm::ScPtm;
pub use unicast::Unicast;
