//! Multicast plans: the declarative output of every grouping mechanism.
//!
//! A plan is the hand-off point between the planning layer (this crate —
//! for DR-SC that means the [`crate::set_cover`] kernels) and the
//! execution layer (`nbiot-sim`), which replays it event by event; the
//! full pipeline is drawn in `docs/ARCHITECTURE.md`.

use core::fmt;
use std::collections::HashMap;

use nbiot_time::{PagingCycle, SimDuration, SimInstant, TimeWindow};
use nbiot_traffic::DeviceId;

use crate::{GroupingInput, PlanViolation};

/// One multicast transmission: an instant and the devices it serves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transmission {
    /// Transmission instant (`t` — the end of a `TI` coverage window).
    pub at: SimInstant,
    /// Devices that receive the payload in this transmission.
    pub recipients: Vec<DeviceId>,
}

/// An ordinary page (a `PagingRecordList` entry) delivered at a device's
/// paging occasion, instructing it to connect for downlink data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageDirective {
    /// The paging occasion at which the page is delivered.
    pub po: SimInstant,
}

/// A DR-SI `mltc-transmission` notification and the resulting T322 wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MltcDirective {
    /// The paging occasion at which the extended page is delivered.
    pub po: SimInstant,
    /// The uniformly drawn T322 expiry in `[t − TI, t)`.
    pub wake_at: SimInstant,
    /// `time remaining` field carried in the extension.
    pub time_remaining: SimDuration,
}

/// A DA-SC DRX adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdaptationDirective {
    /// The device's last natural PO before `t − TI`, where it is paged and
    /// reconfigured (paper Fig. 5: the adaptation point).
    pub page_po: SimInstant,
    /// The temporarily applied shorter cycle.
    pub new_cycle: PagingCycle,
    /// The adapted PO inside `[t − TI, t)` where the device is paged for
    /// the data.
    pub landing_po: SimInstant,
    /// Number of adapted-cycle POs the device monitors (from the first
    /// adapted PO up to and including the landing PO) — the extra
    /// light-sleep cost of Fig. 6(a).
    pub monitored_adapted_pos: u64,
}

/// Periodic control-channel monitoring imposed on every device (SC-PTM's
/// SC-MCCH), on top of normal paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControlMonitoring {
    /// Monitoring period.
    pub period: SimDuration,
    /// Time spent per monitoring occasion.
    pub per_occasion: SimDuration,
}

/// Everything one device does during the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DevicePlan {
    /// The device.
    pub device: DeviceId,
    /// Ordinary page for data reception, if any.
    pub page: Option<PageDirective>,
    /// DR-SI notification, if any.
    pub mltc: Option<MltcDirective>,
    /// DA-SC adaptation, if any.
    pub adaptation: Option<AdaptationDirective>,
    /// When the device starts random access to receive the data
    /// (`None` for connectionless reception, e.g. SC-PTM).
    pub connect_at: Option<SimInstant>,
    /// The transmission instant that serves this device.
    pub receives_at: SimInstant,
}

/// A complete multicast delivery plan.
///
/// Plans are *declarative*: they state when each transmission happens and
/// what every device does; `nbiot-sim` turns them into events and energy
/// ledgers. [`MulticastPlan::validate`] checks the structural invariants
/// every correct mechanism must uphold.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MulticastPlan {
    /// Mechanism name (e.g. `"DR-SC"`).
    pub mechanism: String,
    /// Whether the plan uses only TS 36.331-compliant signalling.
    pub standards_compliant: bool,
    /// Whether devices must RRC-connect to receive the payload
    /// (`false` for SC-PTM's connectionless SC-MTCH reception).
    pub requires_connection: bool,
    /// All multicast transmissions, sorted by time.
    pub transmissions: Vec<Transmission>,
    /// Per-device actions, in device order.
    pub device_plans: Vec<DevicePlan>,
    /// The campaign span `[start, last transmission]` (payload airtime is
    /// appended by the simulator).
    pub horizon: TimeWindow,
    /// Extra periodic control monitoring (SC-PTM only).
    pub control_monitoring: Option<ControlMonitoring>,
    /// Anytime-improvement metrics when the plan went through a
    /// [`crate::improve`] pass (`DR-SC-tabu` and LNS repair); `None` for
    /// one-shot constructive plans.
    pub improvement: Option<crate::ImprovementStats>,
}

impl MulticastPlan {
    /// Number of multicast transmissions — the paper's bandwidth proxy
    /// (Fig. 7).
    pub fn transmission_count(&self) -> usize {
        self.transmissions.len()
    }

    /// The single transmission instant, when the plan has exactly one
    /// transmission.
    pub fn single_transmission_time(&self) -> Option<SimInstant> {
        match self.transmissions.as_slice() {
            [only] => Some(only.at),
            _ => None,
        }
    }

    /// Mean over devices of the waiting time between connecting and the
    /// serving transmission (the `TI/2`-on-average overhead of Fig. 6(b)).
    pub fn mean_wait(&self) -> SimDuration {
        let waits: Vec<u64> = self
            .device_plans
            .iter()
            .filter_map(|p| {
                p.connect_at
                    .map(|c| p.receives_at.saturating_duration_since(c).as_ms())
            })
            .collect();
        if waits.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ms(waits.iter().sum::<u64>() / waits.len() as u64)
        }
    }

    /// Checks all structural invariants against the input the plan was
    /// computed from.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanViolation`] found.
    pub fn validate(&self, input: &GroupingInput) -> Result<(), PlanViolation> {
        // 1. Transmissions sorted.
        if self.transmissions.windows(2).any(|w| w[0].at > w[1].at) {
            return Err(PlanViolation::UnsortedTransmissions);
        }
        // 2. Every device served exactly once across all recipient lists.
        let mut served: HashMap<DeviceId, usize> = HashMap::new();
        for tx in &self.transmissions {
            for &d in &tx.recipients {
                *served.entry(d).or_insert(0) += 1;
            }
        }
        for dp in &self.device_plans {
            let times = served.get(&dp.device).copied().unwrap_or(0);
            if times != 1 {
                return Err(PlanViolation::NotExactlyOnce {
                    device: dp.device,
                    times,
                });
            }
        }
        // 3. Each device plan references an existing transmission that
        //    lists it as recipient. Several transmissions may share an
        //    instant (unicast deliveries paged in the same PO), so index
        //    them as a multimap.
        let mut by_time: HashMap<SimInstant, Vec<&Transmission>> = HashMap::new();
        for t in &self.transmissions {
            by_time.entry(t.at).or_default().push(t);
        }
        let ti = input.params().ti.duration();
        let start = input.params().start;
        for dp in &self.device_plans {
            let Some(txs) = by_time.get(&dp.receives_at) else {
                return Err(PlanViolation::UnknownTransmission {
                    device: dp.device,
                    receives_at: dp.receives_at,
                });
            };
            if !txs.iter().any(|tx| tx.recipients.contains(&dp.device)) {
                return Err(PlanViolation::NotExactlyOnce {
                    device: dp.device,
                    times: 0,
                });
            }
            // 4. Inactivity-timer discipline: the device must connect within
            //    TI before (or exactly at) the transmission.
            if let Some(connect_at) = dp.connect_at {
                let lower = dp.receives_at.saturating_sub(ti);
                if connect_at < lower || connect_at > dp.receives_at {
                    return Err(PlanViolation::InactivityViolated {
                        device: dp.device,
                        connect_at,
                        receives_at: dp.receives_at,
                    });
                }
            }
            // 5. Nothing happens before the campaign start.
            let earliest = [
                dp.page.map(|p| p.po),
                dp.mltc.map(|m| m.po),
                dp.adaptation.map(|a| a.page_po),
                dp.connect_at,
            ]
            .into_iter()
            .flatten()
            .min();
            if let Some(e) = earliest {
                if e < start {
                    return Err(PlanViolation::BeforeStart { device: dp.device });
                }
            }
        }
        // 6. Compliance flag consistency: only a plan that carries mltc
        //    directives may be non-compliant and vice versa.
        let uses_mltc = self.device_plans.iter().any(|p| p.mltc.is_some());
        if uses_mltc == self.standards_compliant {
            return Err(PlanViolation::ComplianceMismatch);
        }
        Ok(())
    }
}

impl fmt::Display for MulticastPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} transmission(s) for {} device(s), horizon {}",
            self.mechanism,
            self.transmissions.len(),
            self.device_plans.len(),
            self.horizon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingParams;
    use nbiot_time::{DrxCycle, PagingCycle};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_input() -> GroupingInput {
        let pop = TrafficMix::uniform(PagingCycle::Drx(DrxCycle::Rf256))
            .generate(2, &mut StdRng::seed_from_u64(0))
            .unwrap();
        GroupingInput::from_population(&pop, GroupingParams::default()).unwrap()
    }

    fn valid_plan(input: &GroupingInput) -> MulticastPlan {
        let t = SimInstant::from_secs(30);
        let devices: Vec<DeviceId> = input.ids().to_vec();
        MulticastPlan {
            mechanism: "TEST".to_string(),
            standards_compliant: true,
            requires_connection: true,
            transmissions: vec![Transmission {
                at: t,
                recipients: devices.clone(),
            }],
            device_plans: devices
                .iter()
                .map(|&d| DevicePlan {
                    device: d,
                    page: Some(PageDirective {
                        po: t - SimDuration::from_secs(5),
                    }),
                    mltc: None,
                    adaptation: None,
                    connect_at: Some(t - SimDuration::from_secs(5)),
                    receives_at: t,
                })
                .collect(),
            horizon: TimeWindow::new(SimInstant::ZERO, t),
            control_monitoring: None,
            improvement: None,
        }
    }

    #[test]
    fn valid_plan_passes() {
        let input = tiny_input();
        assert_eq!(valid_plan(&input).validate(&input), Ok(()));
    }

    #[test]
    fn duplicate_recipient_detected() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        let dup = plan.transmissions[0].recipients[0];
        plan.transmissions[0].recipients.push(dup);
        assert!(matches!(
            plan.validate(&input),
            Err(PlanViolation::NotExactlyOnce { times: 2, .. })
        ));
    }

    #[test]
    fn missing_recipient_detected() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        plan.transmissions[0].recipients.pop();
        assert!(matches!(
            plan.validate(&input),
            Err(PlanViolation::NotExactlyOnce { times: 0, .. })
        ));
    }

    #[test]
    fn late_connection_detected() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        // Connecting a full TI + 1 s before the transmission: timer expires.
        let t = plan.device_plans[0].receives_at;
        plan.device_plans[0].connect_at =
            Some(t - input.params().ti.duration() - SimDuration::from_secs(1));
        assert!(matches!(
            plan.validate(&input),
            Err(PlanViolation::InactivityViolated { .. })
        ));
    }

    #[test]
    fn unsorted_transmissions_detected() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        let mut early = plan.transmissions[0].clone();
        early.at = SimInstant::from_secs(1);
        early.recipients.clear();
        plan.transmissions.push(early); // later element with earlier time
        assert_eq!(
            plan.validate(&input),
            Err(PlanViolation::UnsortedTransmissions)
        );
    }

    #[test]
    fn dangling_reference_detected() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        plan.device_plans[0].receives_at = SimInstant::from_secs(999);
        assert!(matches!(
            plan.validate(&input),
            Err(PlanViolation::UnknownTransmission { .. })
        ));
    }

    #[test]
    fn compliance_mismatch_detected() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        plan.standards_compliant = false; // claims non-compliant, no mltc used
        assert_eq!(
            plan.validate(&input),
            Err(PlanViolation::ComplianceMismatch)
        );
    }

    #[test]
    fn action_before_start_detected() {
        let pop = TrafficMix::uniform(PagingCycle::Drx(DrxCycle::Rf256))
            .generate(2, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let params = GroupingParams {
            start: SimInstant::from_secs(10),
            ..GroupingParams::default()
        };
        let input = GroupingInput::from_population(&pop, params).unwrap();
        let mut plan = valid_plan(&input);
        plan.device_plans[0].page = Some(PageDirective {
            po: SimInstant::from_secs(1),
        });
        assert!(matches!(
            plan.validate(&input),
            Err(PlanViolation::BeforeStart { .. })
        ));
    }

    #[test]
    fn mean_wait_average() {
        let input = tiny_input();
        let mut plan = valid_plan(&input);
        plan.device_plans[0].connect_at = Some(plan.device_plans[0].receives_at);
        // one waits 0 s, the other 5 s -> mean 2.5 s
        assert_eq!(plan.mean_wait(), SimDuration::from_ms(2500));
    }

    #[test]
    fn single_transmission_time() {
        let input = tiny_input();
        let plan = valid_plan(&input);
        assert_eq!(
            plan.single_transmission_time(),
            Some(SimInstant::from_secs(30))
        );
    }
}
