//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the replacement for the paper's custom Matlab
//! simulator substrate:
//!
//! * [`EventQueue`] — a time-ordered event queue with a deterministic
//!   FIFO tie-break for simultaneous events,
//! * [`SeedSequence`] — reproducible per-(run, component) RNG streams
//!   derived from one master seed via SplitMix64,
//! * [`RunningStats`] / [`Summary`] — numerically stable (Welford)
//!   aggregation used to average experiment metrics over the paper's
//!   100 runs.
//!
//! # Example
//!
//! ```
//! use nbiot_des::EventQueue;
//! use nbiot_time::SimInstant;
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimInstant::from_ms(20), "second");
//! q.schedule(SimInstant::from_ms(10), "first");
//! q.schedule(SimInstant::from_ms(20), "third"); // same time: FIFO order
//!
//! let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
//! assert_eq!(order, ["first", "second", "third"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod stats;

pub use queue::EventQueue;
pub use rng::{splitmix64, SeedSequence};
pub use stats::{RunningStats, Summary};
