//! Time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nbiot_time::{SimDuration, SimInstant};

/// An entry in the queue: ordered by time, then insertion sequence.
#[derive(Debug)]
struct Entry<E> {
    at: SimInstant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (lowest time, then lowest sequence number) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO), which keeps simulations reproducible regardless of
/// hash-map iteration order or other incidental nondeterminism.
///
/// Popping an event advances the simulation clock ([`EventQueue::now`]).
/// Scheduling an event in the past panics: that is always a model bug.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimInstant,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at the epoch.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimInstant::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or the epoch before the first pop).
    #[inline]
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics when `at` is before the current simulation time.
    pub fn schedule(&mut self, at: SimInstant, event: E) {
        assert!(
            at >= self.now,
            "event scheduled at {at} before current time {}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a delay from the current simulation time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimInstant, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Discards all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_ms(30), 3);
        q.schedule(SimInstant::from_ms(10), 1);
        q.schedule(SimInstant::from_ms(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_ms(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_ms(42), ());
        assert_eq!(q.now(), SimInstant::ZERO);
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimInstant::from_ms(42));
        assert_eq!(q.now(), SimInstant::from_ms(42));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_ms(10), ());
        q.pop();
        q.schedule(SimInstant::from_ms(5), ());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_ms(10), "a");
        q.pop();
        q.schedule_after(SimDuration::from_ms(5), "b");
        assert_eq!(q.peek_time(), Some(SimInstant::from_ms(15)));
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_ms(10), "a");
        q.pop();
        q.schedule(SimInstant::from_ms(10), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_ms(10), ());
        q.pop();
        q.schedule(SimInstant::from_ms(20), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimInstant::from_ms(10));
    }
}
