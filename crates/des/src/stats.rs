//! Numerically stable running statistics.

use core::fmt;

/// Welford-style running mean/variance with min/max tracking.
///
/// Used to aggregate per-run metrics across the paper's 100-run repetitions.
///
/// # Example
///
/// ```
/// use nbiot_des::RunningStats;
///
/// let stats: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(stats.mean(), 5.0);
/// assert!((stats.std_dev() - 2.138).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of a normal-approximation 95 % confidence interval for
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN`-free populations only; +inf when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−inf when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A frozen summary of the current state.
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95: self.ci95_half_width(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> RunningStats {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A frozen statistical summary, suitable for reporting and serialization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval of the mean.
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, sd={:.4}, min={:.4}, max={:.4})",
            self.mean, self.ci95, self.n, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = RunningStats::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.summary().min, 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn known_variance() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 2.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = xs.split_at(20);
        let mut a: RunningStats = left.iter().copied().collect();
        let b: RunningStats = right.iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(a.n(), all.n());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let many: RunningStats = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn summary_display_is_informative() {
        let s: RunningStats = [1.0, 2.0].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("1.5"));
    }
}
