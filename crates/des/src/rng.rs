//! Reproducible RNG streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 mixing step: a cheap, well-distributed 64-bit mixer used to
/// derive independent child seeds from a master seed.
///
/// # Example
///
/// ```
/// use nbiot_des::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible RNG streams from one master seed.
///
/// Every experiment is keyed by `(master seed, run index, component)`, so a
/// result can be reproduced exactly from its config alone — the property the
/// paper's "averaged over 100 runs" methodology needs.
///
/// # Example
///
/// ```
/// use nbiot_des::SeedSequence;
/// use rand::Rng;
///
/// let seq = SeedSequence::new(0xC0FFEE);
/// let mut a = seq.rng(1);
/// let mut b = seq.rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same stream, same values
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub const fn new(master: u64) -> SeedSequence {
        SeedSequence { master }
    }

    /// The master seed.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// The derived 64-bit seed of stream `stream`.
    pub fn stream_seed(&self, stream: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(stream))
    }

    /// A standard RNG for stream `stream`.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(stream))
    }

    /// A child sequence, e.g. one per run index; components then draw
    /// streams from the child.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            master: self.stream_seed(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_streams_reproduce() {
        let seq = SeedSequence::new(7);
        let xs: Vec<u64> = seq
            .rng(3)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = seq
            .rng(3)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let seq = SeedSequence::new(7);
        let a: u64 = seq.rng(0).gen();
        let b: u64 = seq.rng(1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        let a: u64 = SeedSequence::new(1).rng(0).gen();
        let b: u64 = SeedSequence::new(2).rng(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn children_are_independent() {
        let seq = SeedSequence::new(99);
        let c0 = seq.child(0);
        let c1 = seq.child(1);
        assert_ne!(c0.stream_seed(0), c1.stream_seed(0));
        // Child derivation is stable.
        assert_eq!(c0.master(), seq.child(0).master());
    }

    #[test]
    fn zero_master_still_mixes() {
        let seq = SeedSequence::new(0);
        assert_ne!(seq.stream_seed(0), 0);
        assert_ne!(seq.stream_seed(0), seq.stream_seed(1));
    }
}
