//! A minimal TOML-subset reader producing the vendored [`serde::Value`]
//! tree, so scenario files can be written in TOML without a crates.io
//! dependency (this environment is offline; see `vendor/`).
//!
//! Supported subset — everything the [`Scenario`](nbiot_sim::Scenario)
//! schema needs:
//!
//! * `key = value` pairs with bare or dotted keys,
//! * `[table]` / `[table.sub]` headers and `[[array-of-tables]]` headers,
//! * basic strings with the common escapes, integers (decimal and `0x`
//!   hex), floats, booleans,
//! * arrays (nesting and spanning lines) and inline tables `{ k = v }`,
//! * `#` comments.
//!
//! Not supported (rejected with an error rather than misparsed): literal
//! strings, multi-line strings, dates, and `+`/`_` number decorations.
//!
//! One deliberate extension: the keyword `null` is accepted (and written)
//! as [`Value::Null`], because the scenario schema has optional fields and
//! the vendored serde model requires every field to be present.

use std::fmt::Write as _;

use serde::Value;

/// Parses a TOML-subset document into a [`Value::Object`] tree.
///
/// # Errors
///
/// Returns a human-readable message naming the offending line for
/// anything outside the supported subset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut parser = Parser {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut root = Value::Object(Vec::new());
    // Path of the table the following key/value pairs land in; the last
    // element of an array-of-tables path addresses its newest entry.
    let mut current_path: Vec<String> = Vec::new();
    loop {
        parser.skip_trivia();
        if parser.at_end() {
            break;
        }
        if parser.peek() == Some('[') {
            let array_of_tables = parser.peek_at(1) == Some('[');
            parser.advance();
            if array_of_tables {
                parser.advance();
            }
            let path = parser.parse_key_path()?;
            parser.expect(']')?;
            if array_of_tables {
                parser.expect(']')?;
                append_array_table(&mut root, &path).map_err(|e| parser.err_msg(&e))?;
            } else {
                navigate_table(&mut root, &path, true).map_err(|e| parser.err_msg(&e))?;
            }
            current_path = path;
        } else {
            let path = parser.parse_key_path()?;
            parser.expect('=')?;
            let value = parser.parse_value()?;
            let (key, table_path) = path
                .split_last()
                .ok_or_else(|| parser.err_msg("empty key"))?;
            let mut full = current_path.clone();
            full.extend_from_slice(table_path);
            let table = navigate_table(&mut root, &full, false).map_err(|e| parser.err_msg(&e))?;
            let Value::Object(entries) = table else {
                return Err(parser.err_msg("key path does not address a table"));
            };
            if entries.iter().any(|(k, _)| k == key) {
                return Err(parser.err_msg(&format!("duplicate key `{key}`")));
            }
            entries.push((key.clone(), value));
        }
        parser.expect_end_of_line()?;
    }
    Ok(root)
}

/// Walks (creating as needed) to the table at `path`. For a path segment
/// holding an array-of-tables, descends into its **last** entry, matching
/// TOML's `[a]` … `[[a.b]]` … `[a.b.c]` addressing.
fn navigate_table<'v>(
    root: &'v mut Value,
    path: &[String],
    _header: bool,
) -> Result<&'v mut Value, String> {
    let mut node = root;
    for segment in path {
        let entries = match node {
            Value::Object(entries) => entries,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Object(entries)) => entries,
                _ => return Err(format!("`{segment}` addresses a non-table array entry")),
            },
            _ => return Err(format!("`{segment}` addresses a non-table value")),
        };
        let idx = match entries.iter().position(|(k, _)| k == segment) {
            Some(idx) => idx,
            None => {
                entries.push((segment.clone(), Value::Object(Vec::new())));
                entries.len() - 1
            }
        };
        node = &mut entries[idx].1;
    }
    // A path may land on an array-of-tables; the caller means its last entry.
    if let Value::Array(items) = node {
        match items.last_mut() {
            Some(last @ Value::Object(_)) => return Ok(last),
            _ => return Err("path addresses a non-table array".into()),
        }
    }
    Ok(node)
}

/// Appends a fresh table to the array-of-tables at `path`, creating it on
/// first use.
fn append_array_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    let (last, parent_path) = path.split_last().ok_or("empty table header")?;
    let parent = navigate_table(root, parent_path, true)?;
    let Value::Object(entries) = parent else {
        return Err("array-of-tables parent is not a table".into());
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Array(items))) => items.push(Value::Object(Vec::new())),
        Some(_) => return Err(format!("`{last}` is not an array of tables")),
        None => entries.push((last.clone(), Value::Array(vec![Value::Object(Vec::new())]))),
    }
    Ok(())
}

/// Writes a [`Value::Object`] tree as a TOML-subset document that
/// [`parse`] reads back: the inverse used by `figures --dump` to emit
/// editable scenario templates.
///
/// Within each table, scalar and array keys are written before `[table]`
/// and `[[array-of-tables]]` subsections (a TOML requirement); arrays
/// whose elements are all tables become `[[sections]]`, every other array
/// is inline. Key order therefore may differ from the input tree, which
/// is invisible to the by-name field lookups of the serde model.
pub fn to_toml(value: &Value) -> Result<String, String> {
    let Value::Object(_) = value else {
        return Err("top-level TOML value must be a table".into());
    };
    let mut out = String::new();
    write_table(&mut out, value, &mut Vec::new())?;
    Ok(out)
}

fn is_table_array(value: &Value) -> bool {
    matches!(value, Value::Array(items)
        if !items.is_empty() && items.iter().all(|v| matches!(v, Value::Object(_))))
}

fn write_table(out: &mut String, table: &Value, path: &mut Vec<String>) -> Result<(), String> {
    let Value::Object(entries) = table else {
        return Err("expected a table".into());
    };
    for (key, value) in entries {
        match value {
            Value::Object(_) => {}
            v if is_table_array(v) => {}
            v => {
                let _ = write!(out, "{} = ", bare_or_quoted(key));
                write_inline(out, v);
                out.push('\n');
            }
        }
    }
    for (key, value) in entries {
        if let Value::Object(_) = value {
            path.push(key.clone());
            let _ = write!(out, "\n[{}]\n", path.join("."));
            write_table(out, value, path)?;
            path.pop();
        } else if is_table_array(value) {
            let Value::Array(items) = value else {
                unreachable!()
            };
            path.push(key.clone());
            for item in items {
                let _ = write!(out, "\n[[{}]]\n", path.join("."));
                write_table(out, item, path)?;
            }
            path.pop();
        }
    }
    Ok(())
}

fn write_inline(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            let text = format!("{x}");
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, " {} = ", bare_or_quoted(k));
                write_inline(out, v);
            }
            out.push_str(" }");
        }
    }
}

fn bare_or_quoted(key: &str) -> String {
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        key.to_string()
    } else {
        format!("\"{}\"", key.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.peek();
        if c == Some('\n') {
            self.line += 1;
        }
        self.pos += 1;
        c
    }

    fn err_msg(&self, msg: &str) -> String {
        format!("TOML line {}: {msg}", self.line)
    }

    /// Skips spaces/tabs and `#` comments, staying on the current line.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.advance();
        }
        if self.peek() == Some('#') {
            while !self.at_end() && self.peek() != Some('\n') {
                self.advance();
            }
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('\n') || self.peek() == Some('\r') {
                self.advance();
            } else {
                return;
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_inline_ws();
        match self.advance() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.err_msg(&format!("expected `{c}`, got `{got}`"))),
            None => Err(self.err_msg(&format!("expected `{c}`, got end of input"))),
        }
    }

    fn expect_end_of_line(&mut self) -> Result<(), String> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some('\n') | Some('\r') => Ok(()),
            Some(c) => Err(self.err_msg(&format!("unexpected `{c}` after value"))),
        }
    }

    /// Parses a dotted key path of bare or quoted segments.
    fn parse_key_path(&mut self) -> Result<Vec<String>, String> {
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            let segment = if self.peek() == Some('"') {
                self.parse_basic_string()?
            } else {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        self.advance();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(self.err_msg("expected a key"));
                }
                s
            };
            path.push(segment);
            self.skip_inline_ws();
            if self.peek() == Some('.') {
                self.advance();
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_trivia();
        match self.peek() {
            Some('"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_inline_table(),
            Some('t') | Some('f') => self.parse_bool(),
            Some('n') => {
                if self.chars[self.pos..].starts_with(&['n', 'u', 'l', 'l']) {
                    self.pos += 4;
                    Ok(Value::Null)
                } else {
                    Err(self.err_msg("expected `null`"))
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some('\'') => Err(self.err_msg("literal strings are not supported; use \"…\"")),
            Some(c) => Err(self.err_msg(&format!("unexpected `{c}` in value position"))),
            None => Err(self.err_msg("expected a value, got end of input")),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.advance() {
                Some('"') => return Ok(s),
                Some('\\') => match self.advance() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self
                                .advance()
                                .ok_or_else(|| self.err_msg("truncated \\u escape"))?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| self.err_msg(&format!("bad hex digit `{c}`")))?;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err_msg(&format!("bad codepoint {code}")))?,
                        );
                    }
                    other => return Err(self.err_msg(&format!("bad escape {other:?}"))),
                },
                Some('\n') | None => return Err(self.err_msg("unterminated string")),
                Some(c) => s.push(c),
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, String> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.chars[self.pos..].starts_with(&word.chars().collect::<Vec<_>>()[..]) {
                self.pos += word.len();
                return Ok(Value::Bool(value));
            }
        }
        Err(self.err_msg("expected `true` or `false`"))
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_hexdigit() || matches!(c, '-' | '+' | '.' | 'x' | 'X') {
                // `e`/`E` for exponents are covered by is_ascii_hexdigit.
                text.push(c);
                self.advance();
            } else {
                break;
            }
        }
        if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            return u64::from_str_radix(hex, 16)
                .map(Value::U64)
                .map_err(|e| self.err_msg(&format!("bad hex number `{text}`: {e}")));
        }
        if text.contains(['.', 'e', 'E']) && !text.contains('x') {
            return text
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|e| self.err_msg(&format!("bad float `{text}`: {e}")));
        }
        if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| self.err_msg(&format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| self.err_msg(&format!("bad integer `{text}`: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.advance();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.advance();
                }
                Some(']') => {}
                other => return Err(self.err_msg(&format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some('}') {
                self.advance();
                return Ok(Value::Object(entries));
            }
            let path = self.parse_key_path()?;
            if path.len() != 1 {
                return Err(self.err_msg("dotted keys in inline tables are not supported"));
            }
            self.expect('=')?;
            let value = self.parse_value()?;
            entries.push((path.into_iter().next().expect("len checked"), value));
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.advance();
                }
                Some('}') => {}
                other => return Err(self.err_msg(&format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'v>(v: &'v Value, key: &str) -> &'v Value {
        match v {
            Value::Object(entries) => {
                &entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing key {key}"))
                    .1
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn scalars_tables_and_arrays_parse() {
        let v = parse(
            r##"
            # top-level pairs
            name = "demo"
            runs = 20
            seed = 0x4E42
            ratio = 0.5
            flag = true
            sizes = [100, 200,
                     300]

            [nested.table]
            value = -7
            "##,
        )
        .unwrap();
        assert_eq!(get(&v, "name"), &Value::Str("demo".into()));
        assert_eq!(get(&v, "runs"), &Value::U64(20));
        assert_eq!(get(&v, "seed"), &Value::U64(0x4E42));
        assert_eq!(get(&v, "ratio"), &Value::F64(0.5));
        assert_eq!(get(&v, "flag"), &Value::Bool(true));
        assert_eq!(
            get(&v, "sizes"),
            &Value::Array(vec![Value::U64(100), Value::U64(200), Value::U64(300)])
        );
        assert_eq!(
            get(get(get(&v, "nested"), "table"), "value"),
            &Value::I64(-7)
        );
    }

    #[test]
    fn array_of_tables_and_inline_tables() {
        let v = parse(
            r#"
            [mix]
            name = "custom"

            [[mix.classes]]
            name = "a"
            share = 0.5
            cycles = [[{ Drx = "Rf256" }, 1.0]]

            [[mix.classes]]
            name = "b"
            share = 0.5
            "#,
        )
        .unwrap();
        let classes = get(get(&v, "mix"), "classes");
        let Value::Array(items) = classes else {
            panic!("classes must be an array")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(get(&items[0], "name"), &Value::Str("a".into()));
        let cycles = get(&items[0], "cycles");
        let Value::Array(pairs) = cycles else {
            panic!("cycles must be an array")
        };
        let Value::Array(pair) = &pairs[0] else {
            panic!("cycle entries are [cycle, weight] pairs")
        };
        assert_eq!(get(&pair[0], "Drx"), &Value::Str("Rf256".into()));
        assert_eq!(pair[1], Value::F64(1.0));
        assert_eq!(get(&items[1], "name"), &Value::Str("b".into()));
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse("a = 1\nb = 'literal'\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse("a = 1\na = 2\n").unwrap_err().contains("duplicate"));
        assert!(parse("a = \n").is_err());
    }

    #[test]
    fn writer_roundtrips_nested_trees() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("demo \"x\"".into())),
            ("opt".into(), Value::Null),
            ("count".into(), Value::U64(3)),
            ("delta".into(), Value::I64(-2)),
            ("exact".into(), Value::F64(2.0)),
            (
                "pairs".into(),
                Value::Array(vec![Value::Array(vec![
                    Value::Object(vec![("Drx".into(), Value::Str("Rf256".into()))]),
                    Value::F64(0.5),
                ])]),
            ),
            (
                "sub".into(),
                Value::Object(vec![("k".into(), Value::U64(1))]),
            ),
            (
                "rows".into(),
                Value::Array(vec![
                    Value::Object(vec![("a".into(), Value::U64(1))]),
                    Value::Object(vec![("a".into(), Value::U64(2))]),
                ]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = to_toml(&v).unwrap();
        let back = parse(&text).unwrap();
        // Key order may differ (scalars before sections); compare by name.
        for key in [
            "name", "opt", "count", "delta", "exact", "pairs", "sub", "rows", "empty",
        ] {
            assert_eq!(get(&back, key), get(&v, key), "key {key} via:\n{text}");
        }
    }

    #[test]
    fn integer_extremes_parse_or_error() {
        let v = parse("a = -9223372036854775808\n").unwrap();
        assert_eq!(get(&v, "a"), &Value::I64(i64::MIN));
        // Below i64::MIN: a clean error, not a silently wrapped value.
        assert!(parse("a = -10000000000000000000\n").is_err());
        let v = parse("b = 18446744073709551615\n").unwrap();
        assert_eq!(get(&v, "b"), &Value::U64(u64::MAX));
    }

    #[test]
    fn null_extension_parses() {
        let v = parse("a = null\n").unwrap();
        assert_eq!(get(&v, "a"), &Value::Null);
    }

    #[test]
    fn values_deserialize_into_types() {
        #[derive(Debug, PartialEq, serde::Deserialize)]
        struct Demo {
            name: String,
            sizes: Vec<usize>,
            ratio: f64,
        }
        let v = parse("name = \"x\"\nsizes = [1, 2]\nratio = 0.25\n").unwrap();
        let demo = <Demo as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(
            demo,
            Demo {
                name: "x".into(),
                sizes: vec![1, 2],
                ratio: 0.25
            }
        );
    }
}
