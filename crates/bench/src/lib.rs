//! Shared harness utilities for the figure-regeneration binaries.
//!
//! The primary entry point is the **`figures`** driver, which executes any
//! named or file-loaded [`Scenario`](nbiot_sim::Scenario)
//! (`--scenario <name|path.json|path.toml>`, `--list` for the registry)
//! through the shared (point × run) scheduler. The historical per-figure
//! binaries remain as thin shims over the same engine:
//!
//! | Binary        | Paper artifact | Metric |
//! |---------------|----------------|--------|
//! | `figures`     | any scenario   | all of the below, captions derived from the actual config |
//! | `fig6a`       | Fig. 6(a)      | relative light-sleep uptime increase vs unicast |
//! | `fig6b`       | Fig. 6(b)      | relative connected-mode uptime increase vs unicast, per payload size |
//! | `fig7`        | Fig. 7         | mean multicast transmissions vs group size (DR-SC) |
//! | `all_figures` | all of the above | |
//! | `ablations`   | beyond-paper sensitivity studies | TI, notify policy, adaptation grid, RACH contention |
//! | `bench_report`| — | machine-trackable wall-clock of the macro workload (`BENCH_results.json`) |
//!
//! Common flags: `--runs <u32>` (default 100, the paper's repetition
//! count), `--devices <usize>`, `--seed <u64>`, `--threads <usize>`
//! (worker threads for the (point × run) fan-out; `0` = all cores, the
//! default; results are bit-identical for every setting), `--mix <name>`
//! (any registered traffic mix), `--json` (machine-readable output).

use std::fmt::Write as _;

pub mod alloc_meter;
pub mod coordinator;
pub mod diff;
pub mod scenarios;
pub mod toml_lite;

/// Process exit code for runtime failures (unreadable/corrupt inputs,
/// failed execution): the generic "something went wrong".
pub const EXIT_FAILURE: i32 = 1;
/// Process exit code for command-line usage errors.
pub const EXIT_USAGE: i32 = 2;
/// Process exit code for a campaign that exhausted its retry budget and
/// degraded to a partial merge — distinct from [`EXIT_FAILURE`] so
/// automation can tell "partial results written" from "nothing happened".
pub const EXIT_DEGRADED: i32 = 3;
/// Process exit code for a campaign halted early on request
/// (`--halt-after`), with checkpoints written but no merge attempted.
pub const EXIT_HALTED: i32 = 4;

/// Prints a one-line `<binary>: error: <message>` to stderr and exits
/// with [`EXIT_FAILURE`]. The CLI-facing alternative to panicking: bad
/// input files and failed runs are operator errors, not bugs, and get an
/// actionable message instead of a backtrace.
pub fn fail(message: impl core::fmt::Display) -> ! {
    fail_with(EXIT_FAILURE, message)
}

/// Prints a one-line usage error and exits with [`EXIT_USAGE`].
pub fn fail_usage(message: impl core::fmt::Display) -> ! {
    fail_with(EXIT_USAGE, message)
}

/// Prints a one-line error and exits with the given code.
pub fn fail_with(code: i32, message: impl core::fmt::Display) -> ! {
    let bin = std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem())
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".to_string());
    eprintln!("{bin}: error: {message}");
    std::process::exit(code);
}

/// `Result` adapter for CLI entry points: unwraps `Ok`, routes `Err`
/// through [`fail`] / [`fail_usage`] as a one-line message.
pub trait OrFail<T> {
    /// Unwraps or exits with [`EXIT_FAILURE`] and the error message.
    fn or_fail(self) -> T;
    /// Unwraps or exits with [`EXIT_USAGE`] and the error message.
    fn or_fail_usage(self) -> T;
}

impl<T, E: core::fmt::Display> OrFail<T> for Result<T, E> {
    fn or_fail(self) -> T {
        self.unwrap_or_else(|e| fail(e))
    }

    fn or_fail_usage(self) -> T {
        self.unwrap_or_else(|e| fail_usage(e))
    }
}

/// Which shared flags were explicitly passed on the command line — the
/// scenario driver only overrides a scenario's own values for these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GivenFlags {
    /// `--runs` was passed.
    pub runs: bool,
    /// `--devices` was passed.
    pub devices: bool,
    /// `--seed` was passed.
    pub seed: bool,
    /// `--threads` was passed.
    pub threads: bool,
}

/// Parsed command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureOpts {
    /// Number of runs to average over (paper: 100).
    pub runs: u32,
    /// Group size for the fixed-size figures (paper: 100–1000; default 500).
    pub devices: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the experiment work-item fan-out: `0` uses all
    /// available cores, `1` runs serially. Every setting produces
    /// bit-identical results; this only trades wall-clock for cores.
    pub threads: usize,
    /// Registered traffic mix selected with `--mix` (`None` = the
    /// config's own mix).
    pub mix: Option<String>,
    /// Emit JSON instead of a text table.
    pub json: bool,
    /// Which of the flags above were explicitly passed.
    pub given: GivenFlags,
}

impl Default for FigureOpts {
    fn default() -> Self {
        FigureOpts {
            runs: 100,
            devices: 500,
            seed: 0x4E42_494F_5421,
            threads: 0,
            mix: None,
            json: false,
            given: GivenFlags::default(),
        }
    }
}

impl FigureOpts {
    /// Parses `--runs`, `--devices`, `--seed`, `--threads` and `--json`
    /// from the process arguments, falling back to defaults.
    ///
    /// Exits with [`EXIT_USAGE`] and a one-line message on malformed
    /// values — appropriate for a CLI entry point.
    pub fn from_args() -> FigureOpts {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses the shared figure flags from an explicit argument list
    /// (binaries with extra private flags strip them first).
    ///
    /// Same exit contract as [`FigureOpts::from_args`].
    pub fn parse(args: impl Iterator<Item = String>) -> FigureOpts {
        let mut opts = FigureOpts::default();
        let mut args = args;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--runs" => {
                    opts.runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail_usage("--runs needs a positive integer"));
                    opts.given.runs = true;
                }
                "--devices" => {
                    opts.devices = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail_usage("--devices needs a positive integer"));
                    opts.given.devices = true;
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail_usage("--seed needs an integer"));
                    opts.given.seed = true;
                }
                "--threads" => {
                    opts.threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        fail_usage("--threads needs an integer (0 = all cores)")
                    });
                    opts.given.threads = true;
                }
                "--mix" => {
                    let name = args
                        .next()
                        .unwrap_or_else(|| fail_usage("--mix needs a mix name"));
                    opts.mix = Some(resolve_mix(&name).name);
                }
                "--json" => opts.json = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--runs N] [--devices N] [--seed N] [--threads N] \
                         [--mix NAME] [--json]\n\
                         defaults: --runs 100 --devices 500 --threads 0 (all cores)\n\
                         registered mixes: {}",
                        nbiot_traffic::TrafficMix::REGISTRY.join(", ")
                    );
                    std::process::exit(0);
                }
                other => fail_usage(format!("unknown flag {other}; try --help")),
            }
        }
        opts
    }

    /// Applies these options to an experiment configuration.
    pub fn apply(&self, config: &mut nbiot_sim::ExperimentConfig) {
        config.runs = self.runs;
        config.n_devices = self.devices;
        config.master_seed = self.seed;
        config.threads = self.threads;
        if let Some(name) = &self.mix {
            config.mix = resolve_mix(name);
        }
    }

    /// Overrides a scenario's fields with the *explicitly passed* flags
    /// only — a file- or registry-loaded scenario keeps its own runs,
    /// devices, seed and thread count unless the user asked otherwise.
    pub fn apply_to_scenario(&self, scenario: &mut nbiot_sim::Scenario) {
        if self.given.runs {
            scenario.runs = self.runs;
        }
        if self.given.devices {
            scenario.devices = vec![self.devices];
        }
        if self.given.seed {
            scenario.master_seed = self.seed;
        }
        if self.given.threads {
            scenario.threads = self.threads;
        }
        if let Some(name) = &self.mix {
            scenario.mix = resolve_mix(name);
        }
    }
}

/// Resolves a registered traffic mix by name.
///
/// Exits with [`EXIT_USAGE`] and the list of known mixes on an unknown
/// name — appropriate for the CLI entry points this backs.
pub fn resolve_mix(name: &str) -> nbiot_traffic::TrafficMix {
    nbiot_traffic::TrafficMix::by_name(name).unwrap_or_else(|| {
        fail_usage(format!(
            "unknown traffic mix `{name}`; registered mixes: {}",
            nbiot_traffic::TrafficMix::REGISTRY.join(", ")
        ))
    })
}

/// Renders an aligned text table.
///
/// # Example
///
/// ```
/// let table = nbiot_bench::render_table(
///     &["mechanism", "value"],
///     &[vec!["DR-SC".into(), "0.0".into()]],
/// );
/// assert!(table.contains("DR-SC"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_line = |cells: &mut dyn Iterator<Item = &str>| {
        let mut line = String::new();
        for (cell, w) in cells.zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        line.truncate(line.trim_end().len());
        line
    };
    let header_line = render_line(&mut headers.iter().copied());
    // The divider spans exactly the header line: every padded column plus
    // the two-space gutters between columns (the old `sum + 2*cols - 2`
    // arithmetic under-drew whenever trailing columns were empty and
    // over-drew the degenerate zero/one-column edge cases).
    let divider = "-".repeat(header_line.len());
    let mut out = String::new();
    out.push_str(&header_line);
    out.push('\n');
    out.push_str(&divider);
    out.push('\n');
    for row in rows {
        out.push_str(&render_line(&mut row.iter().map(String::as_str)));
        out.push('\n');
    }
    out
}

/// Deterministic synthetic workloads shared by the criterion benches and
/// the `bench_report` binary, mirroring the structure DR-SC's solvers see
/// in real campaigns.
pub mod workload {
    use nbiot_des::SeedSequence;
    use nbiot_time::SimInstant;
    use rand::Rng;

    /// Shared shape of every frame-cover workload: `TI`-length windows
    /// tiling twice the longest eDRX cycle. One definition, so the
    /// `set_cover_*` and `regroup_churn_*` bench stages always measure
    /// the same instance geometry.
    const TI_MS: u64 = 10_000;
    /// Windows tiling the DR-SC search horizon (2 × longest eDRX).
    const N_WINDOWS: usize = (2 * 2_621_440 / TI_MS) as usize;
    /// Whole windows only.
    const HORIZON_MS: u64 = N_WINDOWS as u64 * TI_MS;
    /// The long-cycle ladder the sparse tail draws from.
    const LONG_CYCLES_MS: [u64; 5] = [163_840, 327_680, 655_360, 1_310_720, 2_621_440];

    /// Draws a long-cycle device: a ladder cycle and a random phase.
    fn draw_long_cycle_device<R: Rng + ?Sized>(rng: &mut R) -> (u64, u64) {
        let cycle = LONG_CYCLES_MS[rng.gen_range(0..LONG_CYCLES_MS.len())];
        let phase = rng.gen_range(0..cycle);
        (cycle, phase)
    }

    /// Pushes device `d`'s paging occasions into the window incidence
    /// lists: one entry per PO of `(cycle, phase)` inside the horizon.
    fn tile_device_pos(sets: &mut [Vec<usize>], d: usize, (cycle, phase): (u64, u64)) {
        let mut t = phase;
        while t < HORIZON_MS {
            sets[(t / TI_MS) as usize].push(d);
            t += cycle;
        }
    }

    /// A generalized paper-Fig.-3 frame-cover instance over `n_devices`
    /// devices: candidate sets are `TI`-length windows tiling the DR-SC
    /// search horizon, and a window covers every device with a paging
    /// occasion inside it. A bimodal cycle population (30 % short-cycle
    /// devices that appear in *every* window — exactly the paper's "dense"
    /// devices — plus a long-cycle tail) makes the sets wide, which is the
    /// shape the real mechanism produces before dense-filtering.
    ///
    /// Returns `(universe_size, sets)` for
    /// [`nbiot_grouping::set_cover::greedy_set_cover`].
    pub fn frame_cover_instance(n_devices: usize, seed: u64) -> (usize, Vec<Vec<usize>>) {
        frame_cover_instance_with(n_devices, 0.3, seed)
    }

    /// [`frame_cover_instance`] with an explicit dense-device share.
    ///
    /// `dense_share = 0.0` is the **post-dense-filtering** shape: the
    /// DR-SC pipeline attaches every device with `cycle <= TI` to the
    /// first transmission before solving, so at scale the cover kernel
    /// only ever sees the long-cycle tail. This sparse shape is what the
    /// `large-n-stress` benchmark point uses — the incidence lists stay
    /// proportional to the event count instead of `devices × windows`,
    /// which is exactly the regime the incremental solver's inverted
    /// index is built for (see `docs/KERNELS.md`).
    pub fn frame_cover_instance_with(
        n_devices: usize,
        dense_share: f64,
        seed: u64,
    ) -> (usize, Vec<Vec<usize>>) {
        let mut rng = SeedSequence::new(seed).rng(0);
        let mut sets: Vec<Vec<usize>> = vec![Vec::new(); N_WINDOWS];
        for d in 0..n_devices {
            if dense_share > 0.0 && rng.gen_bool(dense_share) {
                // Dense device: one PO in every window.
                for set in &mut sets {
                    set.push(d);
                }
            } else {
                let device = draw_long_cycle_device(&mut rng);
                tile_device_pos(&mut sets, d, device);
            }
        }
        (n_devices, sets)
    }

    /// A churned sequence of frame-cover instances — the re-grouping
    /// workload: epoch 0 is the sparse post-dense-filter shape of
    /// [`frame_cover_instance_with`]`(n, 0.0, seed)`, and each subsequent
    /// epoch re-phases a `churn_rate` fraction of the devices (the
    /// handover effect: same fleet, moved paging occasions) before the
    /// cover is solved again. Under a per-epoch re-grouping policy every
    /// epoch's instance is a fresh set-cover solve on a mostly-unchanged
    /// population — exactly the cost `bench_report`'s `regroup_churn_*`
    /// stages race the incremental and bitset kernels on.
    ///
    /// Returns one `(universe_size, sets)` instance per epoch
    /// (`epochs + 1` entries including epoch 0).
    pub fn churned_frame_cover_sequence(
        n_devices: usize,
        epochs: usize,
        churn_rate: f64,
        seed: u64,
    ) -> Vec<(usize, Vec<Vec<usize>>)> {
        let mut rng = SeedSequence::new(seed).rng(2);
        let mut devices: Vec<(u64, u64)> = (0..n_devices)
            .map(|_| draw_long_cycle_device(&mut rng))
            .collect();
        let instance = |devices: &[(u64, u64)]| {
            let mut sets: Vec<Vec<usize>> = vec![Vec::new(); N_WINDOWS];
            for (d, &device) in devices.iter().enumerate() {
                tile_device_pos(&mut sets, d, device);
            }
            (devices.len(), sets)
        };
        let mut sequence = Vec::with_capacity(epochs + 1);
        sequence.push(instance(&devices));
        for _ in 0..epochs {
            for slot in devices.iter_mut() {
                if rng.gen_bool(churn_rate) {
                    *slot = draw_long_cycle_device(&mut rng);
                }
            }
            sequence.push(instance(&devices));
        }
        sequence
    }

    /// A cost-aware cover instance for the airtime-weighted kernel:
    /// `n_devices` devices in blocks of 16, each block coverable either by
    /// one "umbrella" window priced at the CE2 block airtime (368
    /// subframes) or by four 4-device "piece" windows priced at CE0 (27
    /// subframes each), with CE1-priced (104) half-block windows in
    /// between for texture. Count-greedy always takes the umbrella (raw
    /// gain 16 beats 8 and 4); the weighted kernel takes the pieces
    /// (gain/cost 4/27 beats 8/104 beats 16/368), paying 108 subframes per
    /// block instead of 368. This is exactly the coverage-class economics
    /// `DrScWeighted` exploits: a deep device in a window prices the whole
    /// window at the deep repetition count, so covering shallow devices
    /// through cheap shallow windows wins airtime.
    ///
    /// The candidate order is deterministically shuffled so lowest-index
    /// tie-breaking never accidentally favors one structure.
    ///
    /// Returns `(universe_size, sets, costs)` for
    /// [`nbiot_grouping::set_cover::greedy_set_cover_weighted`].
    pub fn weighted_cover_instance(
        n_devices: usize,
        seed: u64,
    ) -> (usize, Vec<Vec<usize>>, Vec<u32>) {
        // The three NPDSCH block airtimes of the default coverage ladder
        // (repetitions 1/8/32 — see `nbiot_phy::transfer`).
        const CE0: u32 = 27;
        const CE1: u32 = 104;
        const CE2: u32 = 368;
        let mut rng = SeedSequence::new(seed).rng(3);
        let mut candidates: Vec<(Vec<usize>, u32)> = Vec::new();
        let mut start = 0;
        while start < n_devices {
            let end = (start + 16).min(n_devices);
            candidates.push(((start..end).collect(), CE2));
            for half in (start..end).step_by(8) {
                candidates.push(((half..(half + 8).min(end)).collect(), CE1));
            }
            for piece in (start..end).step_by(4) {
                candidates.push(((piece..(piece + 4).min(end)).collect(), CE0));
            }
            start = end;
        }
        // Fisher-Yates on the (set, cost) pairs.
        for i in (1..candidates.len()).rev() {
            let j = rng.gen_range(0..=i);
            candidates.swap(i, j);
        }
        let costs = candidates.iter().map(|(_, c)| *c).collect();
        let sets = candidates.into_iter().map(|(s, _)| s).collect();
        (n_devices, sets, costs)
    }

    /// A sparse PO timeline for [`nbiot_grouping::set_cover::WindowCover`]:
    /// `n_devices` devices with periodic occasions over the DR-SC horizon.
    ///
    /// Returns `(events, dense)` in the solver's input shape.
    pub fn window_cover_instance(
        n_devices: usize,
        cycle_s: u64,
        seed: u64,
    ) -> (Vec<Vec<SimInstant>>, Vec<bool>) {
        let mut rng = SeedSequence::new(seed).rng(1);
        let horizon_ms = 2 * 10_486 * 1000u64;
        let events = (0..n_devices)
            .map(|_| {
                let phase: u64 = rng.gen_range(0..cycle_s * 1000);
                (0..)
                    .map(|k| SimInstant::from_ms(phase + k * cycle_s * 1000))
                    .take_while(|t| t.as_ms() < horizon_ms)
                    .collect()
            })
            .collect();
        (events, vec![false; n_devices])
    }
}

/// Formats a fraction as a signed percentage with sensible precision.
pub fn pct(x: f64) -> String {
    if x.abs() < 0.0005 {
        format!("{:+.4}%", x * 100.0)
    } else {
        format!("{:+.2}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "longheader"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     longheader"));
    }

    #[test]
    fn divider_spans_header_line_exactly() {
        for headers in [
            vec!["one"],
            vec!["a", "b"],
            vec!["mechanism", "x", "y", "z", "w"],
        ] {
            let rows = vec![vec![String::from("v"); headers.len()]];
            let t = render_table(&headers, &rows);
            let lines: Vec<&str> = t.lines().collect();
            assert_eq!(
                lines[1].len(),
                lines[0].len(),
                "divider must match the header width for {headers:?}"
            );
            assert!(lines[1].chars().all(|c| c == '-'));
        }
    }

    #[test]
    fn divider_handles_degenerate_tables() {
        // Zero columns: no divider dashes, no panic.
        let t = render_table(&[], &[]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "");
        assert_eq!(lines[1], "");
        // One short column: the old formula drew sum+2*1-2 = sum dashes,
        // which happened to fit, but sum+2*cols-2 overdraws wide gutters
        // once trailing cells go empty; the new divider always matches.
        let t1 = render_table(&["h"], &[vec!["x".into()]]);
        let lines1: Vec<&str> = t1.lines().collect();
        assert_eq!(lines1[1].len(), lines1[0].len());
    }

    #[test]
    fn workload_instances_are_coverable_and_solvers_agree() {
        let (n, sets) = workload::frame_cover_instance(120, 7);
        assert_eq!(sets.len(), 524);
        let fast = nbiot_grouping::set_cover::greedy_set_cover(n, &sets);
        let oracle = nbiot_grouping::set_cover::reference::greedy_set_cover(n, &sets);
        assert!(fast.is_some(), "tiled windows always cover the horizon");
        assert_eq!(fast, oracle);

        let (events, dense) = workload::window_cover_instance(40, 2_600, 7);
        assert!(events.iter().all(|e| !e.is_empty()));
        let ti = nbiot_time::SimDuration::from_secs(10);
        let zero = nbiot_time::SimInstant::ZERO;
        let fast = nbiot_grouping::set_cover::WindowCover::new(ti).solve(zero, &events, &dense);
        let oracle =
            nbiot_grouping::set_cover::reference::window_cover_solve(ti, zero, &events, &dense);
        assert_eq!(fast, oracle);
    }

    #[test]
    fn weighted_instance_separates_the_kernels() {
        let (n, sets, costs) = workload::weighted_cover_instance(256, 7);
        let mut arena = nbiot_grouping::set_cover::KernelArena::default();
        let weighted =
            nbiot_grouping::set_cover::greedy_set_cover_weighted(n, &sets, &costs, 1, &mut arena)
                .expect("umbrella-vs-pieces instances always cover");
        let oracle =
            nbiot_grouping::set_cover::reference::greedy_set_cover_weighted(n, &sets, &costs)
                .unwrap();
        assert_eq!(weighted, oracle, "kernel must agree with the oracle");
        let count = nbiot_grouping::set_cover::greedy_set_cover(n, &sets).unwrap();
        let airtime = |picks: &[usize]| picks.iter().map(|&s| u64::from(costs[s])).sum::<u64>();
        // Count-greedy takes the CE2 umbrellas (368/block); the weighted
        // kernel covers each block with four CE0 pieces (108/block).
        assert!(
            airtime(&weighted) < airtime(&count),
            "weighted {} must beat count {}",
            airtime(&weighted),
            airtime(&count)
        );
    }

    #[test]
    fn churned_cover_sequence_drifts_but_stays_coverable() {
        let seq = workload::churned_frame_cover_sequence(150, 3, 0.2, 11);
        assert_eq!(seq.len(), 4, "epoch 0 plus three churned epochs");
        let mut previous: Option<Vec<usize>> = None;
        for (n, sets) in &seq {
            assert_eq!(*n, 150);
            let picks = nbiot_grouping::set_cover::greedy_set_cover(*n, sets)
                .expect("tiled windows always cover");
            let oracle = nbiot_grouping::set_cover::reference::greedy_set_cover(*n, sets);
            assert_eq!(Some(picks.clone()), oracle, "kernels agree per epoch");
            if let Some(prev) = previous.replace(picks.clone()) {
                // Epochs share most of the fleet, so the cover changes but
                // stays in the same size regime.
                assert!(picks.len().abs_diff(prev.len()) <= prev.len());
            }
        }
        // Churn must actually move paging occasions between epochs.
        assert_ne!(seq[0].1, seq[1].1, "epoch 1 must differ from epoch 0");
    }

    #[test]
    fn pct_precision() {
        assert_eq!(pct(0.1234), "+12.34%");
        assert_eq!(pct(0.0001), "+0.0100%");
        assert_eq!(pct(-0.05), "-5.00%");
    }

    #[test]
    fn default_opts_match_paper() {
        let o = FigureOpts::default();
        assert_eq!(o.runs, 100);
        assert_eq!(o.devices, 500);
        assert_eq!(o.threads, 0, "default fan-out uses all cores");
    }

    #[test]
    fn apply_transfers_all_fields() {
        let opts = FigureOpts {
            runs: 7,
            devices: 42,
            seed: 9,
            threads: 3,
            mix: Some("bursty-alarm".into()),
            json: true,
            given: GivenFlags::default(),
        };
        let mut cfg = nbiot_sim::ExperimentConfig::default();
        opts.apply(&mut cfg);
        assert_eq!(cfg.runs, 7);
        assert_eq!(cfg.n_devices, 42);
        assert_eq!(cfg.master_seed, 9);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.mix.name, "bursty-alarm");
    }

    #[test]
    fn parse_records_given_flags_and_resolves_mix() {
        let args = ["--runs", "5", "--mix", "clustered-heterogeneous"]
            .into_iter()
            .map(String::from);
        let opts = FigureOpts::parse(args);
        assert!(opts.given.runs);
        assert!(!opts.given.devices && !opts.given.seed && !opts.given.threads);
        assert_eq!(opts.mix.as_deref(), Some("clustered-heterogeneous"));
    }

    #[test]
    fn scenario_overrides_respect_explicit_flags_only() {
        let args = ["--runs", "4", "--threads", "2"]
            .into_iter()
            .map(String::from);
        let opts = FigureOpts::parse(args);
        let mut scenario = nbiot_sim::Scenario::builtin("fig7").unwrap();
        let original_devices = scenario.devices.clone();
        let original_seed = scenario.master_seed;
        opts.apply_to_scenario(&mut scenario);
        assert_eq!(scenario.runs, 4);
        assert_eq!(scenario.threads, 2);
        // --devices/--seed were not passed: the scenario keeps its sweep.
        assert_eq!(scenario.devices, original_devices);
        assert_eq!(scenario.master_seed, original_seed);
    }
}
