//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in this crate regenerates one table/figure of the paper's
//! evaluation section (Sec. IV):
//!
//! | Binary        | Paper artifact | Metric |
//! |---------------|----------------|--------|
//! | `fig6a`       | Fig. 6(a)      | relative light-sleep uptime increase vs unicast |
//! | `fig6b`       | Fig. 6(b)      | relative connected-mode uptime increase vs unicast, per payload size |
//! | `fig7`        | Fig. 7         | mean multicast transmissions vs group size (DR-SC) |
//! | `all_figures` | all of the above | |
//! | `ablations`   | beyond-paper sensitivity studies | TI, notify policy, adaptation grid, RACH contention |
//!
//! Common flags: `--runs <u32>` (default 100, the paper's repetition
//! count), `--devices <usize>`, `--seed <u64>`, `--json` (machine-readable
//! output).

use std::fmt::Write as _;

/// Parsed command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureOpts {
    /// Number of runs to average over (paper: 100).
    pub runs: u32,
    /// Group size for the fixed-size figures (paper: 100–1000; default 500).
    pub devices: usize,
    /// Master seed.
    pub seed: u64,
    /// Emit JSON instead of a text table.
    pub json: bool,
}

impl Default for FigureOpts {
    fn default() -> Self {
        FigureOpts {
            runs: 100,
            devices: 500,
            seed: 0x4E42_494F_5421,
            json: false,
        }
    }
}

impl FigureOpts {
    /// Parses `--runs`, `--devices`, `--seed` and `--json` from the process
    /// arguments, falling back to defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values — appropriate for a
    /// CLI entry point.
    pub fn from_args() -> FigureOpts {
        let mut opts = FigureOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--runs" => {
                    opts.runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs a positive integer");
                }
                "--devices" => {
                    opts.devices = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--devices needs a positive integer");
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--json" => opts.json = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--runs N] [--devices N] [--seed N] [--json]\n\
                         defaults: --runs 100 --devices 500"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        opts
    }
}

/// Renders an aligned text table.
///
/// # Example
///
/// ```
/// let table = nbiot_bench::render_table(
///     &["mechanism", "value"],
///     &[vec!["DR-SC".into(), "0.0".into()]],
/// );
/// assert!(table.contains("DR-SC"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a fraction as a signed percentage with sensible precision.
pub fn pct(x: f64) -> String {
    if x.abs() < 0.0005 {
        format!("{:+.4}%", x * 100.0)
    } else {
        format!("{:+.2}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "longheader"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     longheader"));
    }

    #[test]
    fn pct_precision() {
        assert_eq!(pct(0.1234), "+12.34%");
        assert_eq!(pct(0.0001), "+0.0100%");
        assert_eq!(pct(-0.05), "-5.00%");
    }

    #[test]
    fn default_opts_match_paper() {
        let o = FigureOpts::default();
        assert_eq!(o.runs, 100);
        assert_eq!(o.devices, 500);
    }
}
