//! Optional allocation metering for `bench_report`'s per-stage memory
//! accounting.
//!
//! With the `bench-alloc` feature enabled, building any binary of this
//! crate installs a counting [`std::alloc::GlobalAlloc`] that tracks the
//! live allocated bytes and their high-water mark. `bench_report` resets
//! the mark at each stage boundary and attaches the peak (plus a derived
//! bytes-per-device figure) to the stage's `mem` block — the memory half
//! of the massive-n scale-tier accounting.
//!
//! Without the feature the probes return `None` and the report simply
//! omits the `mem` blocks; nothing else changes, and the default build
//! pays no per-allocation atomics.
//!
//! ```text
//! cargo run --release -p nbiot-bench --features bench-alloc --bin bench_report
//! ```

/// Resets the high-water mark to the currently live bytes, opening a new
/// measurement window. No-op without the `bench-alloc` feature.
pub fn reset_peak() {
    #[cfg(feature = "bench-alloc")]
    imp::reset_peak();
}

/// Peak allocated bytes since the last [`reset_peak`] (including
/// everything live at that point), or `None` when the crate was built
/// without the `bench-alloc` feature.
pub fn peak_bytes() -> Option<u64> {
    #[cfg(feature = "bench-alloc")]
    {
        Some(imp::peak_bytes())
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        None
    }
}

#[cfg(feature = "bench-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// [`System`], with live-byte and high-water-mark counters.
    struct CountingAlloc;

    fn add(n: usize) {
        let now = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    // SAFETY: every path delegates directly to `System` with the caller's
    // layout; the bookkeeping is plain relaxed atomics and never
    // allocates, so the allocator cannot recurse.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
                add(new_size);
            }
            p
        }
    }

    #[global_allocator]
    static METER: CountingAlloc = CountingAlloc;

    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn peak_bytes() -> u64 {
        PEAK.load(Ordering::Relaxed) as u64
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn peak_tracks_transient_allocations_when_enabled() {
        super::reset_peak();
        let before = super::peak_bytes();
        {
            let big = vec![0u8; 1 << 20];
            std::hint::black_box(&big);
        }
        let after = super::peak_bytes();
        match (before, after) {
            // Feature on: the dropped megabyte must register in the peak.
            (Some(b), Some(a)) => assert!(a >= b + (1 << 20), "peak {a} vs {b}"),
            (None, None) => {}
            other => panic!("probes disagree on feature state: {other:?}"),
        }
    }
}
