//! Mechanism-by-mechanism, point-by-point comparison of two
//! [`ScenarioResult`]s — the regression-gate half of the shard/merge/diff
//! workflow.
//!
//! Points are aligned **by index** — a `ScenarioResult`'s point order is
//! defined (device-major, payload-minor), so position is identity. Two
//! points at the same index must carry the same (device count, payload)
//! key; a key mismatch, a length mismatch, or a missing mechanism is a
//! *structural* violation. Index alignment is what makes degenerate
//! scenarios with *duplicate* sweep points (`devices = [100, 100]`) diff
//! correctly: the historical first-match-by-key alignment compared the
//! first duplicate twice and never looked at the second, silently passing
//! a perturbed duplicate. Mechanisms are still aligned by name (their
//! order is presentation order). Numeric metrics compare the mean and
//! 95 % CI half-width of every summary through a numpy-style tolerance
//! test: `|a - b| <= abs + rel * |baseline|`. Both tolerances default to
//! **zero**, making the default an exact bit-equality gate — which is how
//! CI verifies that a sharded run merged back together matches the
//! single-host run (and that a fresh run matches the committed golden
//! archive).

use nbiot_sim::{MechanismSummary, ScenarioResult};
use serde_json::{json, Value};

use crate::render_table;

/// Absolute/relative tolerance pair for metric comparisons; the zero
/// default demands exact equality.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiffTolerance {
    /// Absolute tolerance (same unit as the metric).
    pub abs: f64,
    /// Relative tolerance, as a fraction of the baseline magnitude.
    pub rel: f64,
}

impl DiffTolerance {
    /// Whether `baseline` and `candidate` agree within this tolerance.
    /// Bit-equal values (including two NaNs) always pass; otherwise any
    /// NaN fails.
    pub fn within(&self, baseline: f64, candidate: f64) -> bool {
        if baseline.to_bits() == candidate.to_bits() {
            return true;
        }
        (baseline - candidate).abs() <= self.abs + self.rel * baseline.abs()
    }
}

/// One metric comparison that exceeded tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Group size of the point.
    pub n_devices: usize,
    /// Payload of the point (display form, e.g. `"100 kB"`).
    pub payload: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Metric path, e.g. `"rel_light_sleep.mean"`.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
}

impl MetricDelta {
    /// Signed difference `candidate - baseline`.
    pub fn delta(&self) -> f64 {
        self.candidate - self.baseline
    }
}

/// The outcome of diffing two scenario results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Shape mismatches (missing points/mechanisms, differing run counts,
    /// compliance flips); each one is a violation on its own.
    pub structural: Vec<String>,
    /// Metric comparisons beyond tolerance, in result order.
    pub violations: Vec<MetricDelta>,
    /// Total numeric comparisons performed.
    pub compared: usize,
    /// Grid points successfully aligned between the two results.
    pub points: usize,
}

impl DiffReport {
    /// Whether the two results agree within tolerance everywhere.
    pub fn ok(&self) -> bool {
        self.structural.is_empty() && self.violations.is_empty()
    }
}

/// The compared metrics of one mechanism summary: (path, value) pairs for
/// the mean and 95 % CI half-width of every reported statistic.
fn summary_metrics(m: &MechanismSummary) -> [(&'static str, f64); 34] {
    [
        ("rel_light_sleep.mean", m.rel_light_sleep.mean),
        ("rel_light_sleep.ci95", m.rel_light_sleep.ci95),
        ("rel_connected.mean", m.rel_connected.mean),
        ("rel_connected.ci95", m.rel_connected.ci95),
        ("transmissions.mean", m.transmissions.mean),
        ("transmissions.ci95", m.transmissions.ci95),
        ("transmissions_ratio.mean", m.transmissions_ratio.mean),
        ("transmissions_ratio.ci95", m.transmissions_ratio.ci95),
        ("plan_airtime_ms.mean", m.plan_airtime_ms.mean),
        ("plan_airtime_ms.ci95", m.plan_airtime_ms.ci95),
        ("airtime_vs_count_ratio.mean", m.airtime_vs_count_ratio.mean),
        ("airtime_vs_count_ratio.ci95", m.airtime_vs_count_ratio.ci95),
        ("mean_wait_s.mean", m.mean_wait_s.mean),
        ("mean_wait_s.ci95", m.mean_wait_s.ci95),
        ("mean_connected_s.mean", m.mean_connected_s.mean),
        ("mean_connected_s.ci95", m.mean_connected_s.ci95),
        ("mean_energy_mj.mean", m.mean_energy_mj.mean),
        ("mean_energy_mj.ci95", m.mean_energy_mj.ci95),
        ("ra_failures.mean", m.ra_failures.mean),
        ("ra_failures.ci95", m.ra_failures.ci95),
        ("late_joins.mean", m.late_joins.mean),
        ("late_joins.ci95", m.late_joins.ci95),
        ("regroup_count.mean", m.regroup_count.mean),
        ("regroup_count.ci95", m.regroup_count.ci95),
        ("stale_miss_ratio.mean", m.stale_miss_ratio.mean),
        ("stale_miss_ratio.ci95", m.stale_miss_ratio.ci95),
        ("cover_cost_initial.mean", m.cover_cost_initial.mean),
        ("cover_cost_initial.ci95", m.cover_cost_initial.ci95),
        ("cover_cost_final.mean", m.cover_cost_final.mean),
        ("cover_cost_final.ci95", m.cover_cost_final.ci95),
        ("improve_moves.mean", m.improve_moves.mean),
        ("improve_moves.ci95", m.improve_moves.ci95),
        ("improve_budget.mean", m.improve_budget.mean),
        ("improve_budget.ci95", m.improve_budget.ci95),
    ]
}

/// Diffs `candidate` against `baseline` point-by-point and
/// mechanism-by-mechanism under the given tolerances.
pub fn diff_results(
    baseline: &ScenarioResult,
    candidate: &ScenarioResult,
    tolerance: DiffTolerance,
) -> DiffReport {
    let mut report = DiffReport::default();
    if baseline.runs != candidate.runs {
        report.structural.push(format!(
            "run counts differ: baseline {} vs candidate {}",
            baseline.runs, candidate.runs
        ));
    }
    // Align by index: a result's point order is defined (device-major,
    // payload-minor), so position is identity even when the sweep lists
    // duplicate points. First-match-by-key alignment mispaired those —
    // both duplicates matched the candidate's first copy, and a
    // perturbation in the second was never compared.
    for (index, point) in baseline.points.iter().enumerate() {
        let Some(other) = candidate.points.get(index) else {
            report.structural.push(format!(
                "point {index} ({} devices, {}) missing from candidate",
                point.n_devices, point.payload
            ));
            continue;
        };
        if (point.n_devices, point.payload) != (other.n_devices, other.payload) {
            report.structural.push(format!(
                "point {index} differs in kind: baseline ({} devices, {}) vs candidate \
                 ({} devices, {})",
                point.n_devices, point.payload, other.n_devices, other.payload
            ));
            continue;
        }
        report.points += 1;
        for summary in &point.comparison.mechanisms {
            let Some(counterpart) = other.comparison.mechanism(&summary.mechanism) else {
                report.structural.push(format!(
                    "mechanism {} missing from candidate at ({} devices, {})",
                    summary.mechanism, point.n_devices, point.payload
                ));
                continue;
            };
            if summary.standards_compliant != counterpart.standards_compliant {
                report.structural.push(format!(
                    "standards compliance flipped for {} at ({} devices, {}): {} -> {}",
                    summary.mechanism,
                    point.n_devices,
                    point.payload,
                    summary.standards_compliant,
                    counterpart.standards_compliant
                ));
            }
            for ((metric, a), (_, b)) in summary_metrics(summary)
                .into_iter()
                .zip(summary_metrics(counterpart))
            {
                report.compared += 1;
                if !tolerance.within(a, b) {
                    report.violations.push(MetricDelta {
                        n_devices: point.n_devices,
                        payload: point.payload.to_string(),
                        mechanism: summary.mechanism.clone(),
                        metric,
                        baseline: a,
                        candidate: b,
                    });
                }
            }
        }
        for summary in &other.comparison.mechanisms {
            if point.comparison.mechanism(&summary.mechanism).is_none() {
                report.structural.push(format!(
                    "mechanism {} present only in candidate at ({} devices, {})",
                    summary.mechanism, point.n_devices, point.payload
                ));
            }
        }
    }
    for (index, point) in candidate
        .points
        .iter()
        .enumerate()
        .skip(baseline.points.len())
    {
        report.structural.push(format!(
            "point {index} ({} devices, {}) present only in candidate",
            point.n_devices, point.payload
        ));
    }
    report
}

/// Renders the report as text: a violation table when anything exceeded
/// tolerance, a one-line all-clear otherwise.
pub fn render_diff(report: &DiffReport) -> String {
    let mut out = String::new();
    for issue in &report.structural {
        out.push_str(&format!("STRUCTURAL: {issue}\n"));
    }
    if !report.violations.is_empty() {
        let rows: Vec<Vec<String>> = report
            .violations
            .iter()
            .map(|v| {
                vec![
                    v.n_devices.to_string(),
                    v.payload.clone(),
                    v.mechanism.clone(),
                    v.metric.to_string(),
                    format!("{:.9e}", v.baseline),
                    format!("{:.9e}", v.candidate),
                    format!("{:+.3e}", v.delta()),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "devices",
                "payload",
                "mechanism",
                "metric",
                "baseline",
                "candidate",
                "delta",
            ],
            &rows,
        ));
    }
    out.push_str(&format!(
        "scenario_diff: {} points, {} comparisons, {} beyond tolerance, {} structural -> {}\n",
        report.points,
        report.compared,
        report.violations.len(),
        report.structural.len(),
        if report.ok() { "OK" } else { "FAIL" }
    ));
    out
}

/// The report as a machine-readable JSON value (the `--json` output).
pub fn diff_to_json(report: &DiffReport) -> Value {
    json!({
        "ok": report.ok(),
        "points": report.points as u64,
        "compared": report.compared as u64,
        "structural": report.structural,
        "violations": Value::Array(
            report
                .violations
                .iter()
                .map(|v| {
                    json!({
                        "n_devices": v.n_devices as u64,
                        "payload": v.payload,
                        "mechanism": v.mechanism,
                        "metric": v.metric,
                        "baseline": v.baseline,
                        "candidate": v.candidate,
                        "delta": v.delta(),
                    })
                })
                .collect(),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_sim::{run_scenario, Scenario};

    fn tiny_result() -> ScenarioResult {
        let mut s = Scenario::builtin("fig6a").unwrap();
        s.devices = vec![15];
        s.runs = 2;
        s.threads = 1;
        run_scenario(&s).unwrap()
    }

    #[test]
    fn identical_results_diff_clean_at_zero_tolerance() {
        let a = tiny_result();
        let report = diff_results(&a, &a.clone(), DiffTolerance::default());
        assert!(report.ok(), "{report:?}");
        assert!(report.compared > 0);
        assert_eq!(report.points, 1);
        assert!(render_diff(&report).contains("OK"));
    }

    #[test]
    fn injected_perturbation_is_detected_and_reported() {
        let baseline = tiny_result();
        let mut perturbed = baseline.clone();
        // Nudge one mechanism's connected-uptime mean by one part in 1e9 —
        // far below anything a rendered table would show.
        perturbed.points[0].comparison.mechanisms[1]
            .rel_connected
            .mean += 1e-9;
        let report = diff_results(&baseline, &perturbed, DiffTolerance::default());
        assert!(!report.ok());
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.metric, "rel_connected.mean");
        assert_eq!(
            v.mechanism,
            baseline.points[0].comparison.mechanisms[1].mechanism
        );
        let text = render_diff(&report);
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("rel_connected.mean"), "{text}");
        // The same perturbation passes under a loose absolute tolerance.
        let loose = diff_results(
            &baseline,
            &perturbed,
            DiffTolerance {
                abs: 1e-6,
                rel: 0.0,
            },
        );
        assert!(loose.ok());
    }

    #[test]
    fn relative_tolerance_scales_with_baseline() {
        let tol = DiffTolerance { abs: 0.0, rel: 0.1 };
        assert!(tol.within(100.0, 109.0));
        assert!(!tol.within(100.0, 111.0));
        assert!(tol.within(0.0, 0.0));
        assert!(
            !tol.within(0.0, 1e-12),
            "rel tolerance alone has no slack at zero"
        );
        assert!(tol.within(f64::NAN, f64::NAN), "bit-equal NaNs pass");
        assert!(!tol.within(1.0, f64::NAN));
    }

    #[test]
    fn structural_mismatches_are_violations() {
        let baseline = tiny_result();
        let mut missing_mechanism = baseline.clone();
        missing_mechanism.points[0].comparison.mechanisms.pop();
        let report = diff_results(&baseline, &missing_mechanism, DiffTolerance::default());
        assert!(!report.ok());
        assert!(report.structural[0].contains("missing from candidate"));

        // The reverse asymmetry must also fail: a candidate with an extra
        // mechanism compares clean metric-by-metric but differs in shape.
        let report = diff_results(&missing_mechanism, &baseline, DiffTolerance::default());
        assert!(!report.ok());
        assert!(report.structural[0].contains("present only in candidate"));

        let mut extra_point = baseline.clone();
        extra_point.points.push(baseline.points[0].clone());
        let mut with_different_devices = extra_point.points[1].clone();
        with_different_devices.n_devices += 1;
        extra_point.points[1] = with_different_devices;
        let report = diff_results(&baseline, &extra_point, DiffTolerance::default());
        assert!(report
            .structural
            .iter()
            .any(|s| s.contains("present only in candidate")));

        let mut fewer_runs = baseline.clone();
        fewer_runs.runs -= 1;
        let report = diff_results(&baseline, &fewer_runs, DiffTolerance::default());
        assert!(report.structural[0].contains("run counts differ"));
    }

    #[test]
    fn duplicate_sweep_points_align_by_index() {
        // The degenerate scenario the first-match alignment mispaired:
        // devices = [15, 15] produces two points with the same
        // (devices, payload) key. A perturbation in the SECOND duplicate
        // must be caught — historically both baseline duplicates matched
        // the candidate's first copy and the diff passed silently.
        let mut s = Scenario::builtin("fig6a").unwrap();
        s.devices = vec![15, 15];
        s.runs = 2;
        s.threads = 1;
        let baseline = run_scenario(&s).unwrap();
        assert_eq!(baseline.points.len(), 2);
        assert_eq!(
            (baseline.points[0].n_devices, baseline.points[0].payload),
            (baseline.points[1].n_devices, baseline.points[1].payload),
            "the degenerate sweep must produce identically-keyed points"
        );
        let mut perturbed = baseline.clone();
        perturbed.points[1].comparison.mechanisms[0]
            .transmissions
            .mean += 1.0;
        let report = diff_results(&baseline, &perturbed, DiffTolerance::default());
        assert!(
            !report.ok(),
            "perturbing the second duplicate must fail the diff: {report:?}"
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].metric, "transmissions.mean");
        assert_eq!(report.points, 2, "both duplicates compared");
        // And the unperturbed duplicates still diff clean.
        let clean = diff_results(&baseline, &baseline.clone(), DiffTolerance::default());
        assert!(clean.ok(), "{clean:?}");
    }

    #[test]
    fn reordered_points_are_structural_not_silent() {
        // Index alignment means a reordered candidate is a shape change,
        // reported as such rather than silently re-matched.
        let mut s = Scenario::builtin("fig6a").unwrap();
        s.devices = vec![10, 20];
        s.runs = 2;
        s.threads = 1;
        let baseline = run_scenario(&s).unwrap();
        let mut swapped = baseline.clone();
        swapped.points.swap(0, 1);
        let report = diff_results(&baseline, &swapped, DiffTolerance::default());
        assert!(!report.ok());
        assert!(
            report
                .structural
                .iter()
                .any(|m| m.contains("differs in kind")),
            "{report:?}"
        );
    }

    #[test]
    fn churn_metrics_are_compared() {
        // The churn summaries ride the same zero-tolerance gate as every
        // other metric.
        let baseline = tiny_result();
        let mut perturbed = baseline.clone();
        perturbed.points[0].comparison.mechanisms[0]
            .stale_miss_ratio
            .mean += 1e-12;
        let report = diff_results(&baseline, &perturbed, DiffTolerance::default());
        assert!(!report.ok());
        assert_eq!(report.violations[0].metric, "stale_miss_ratio.mean");
        let mut perturbed2 = baseline.clone();
        perturbed2.points[0].comparison.mechanisms[1]
            .regroup_count
            .ci95 += 0.5;
        let report2 = diff_results(&baseline, &perturbed2, DiffTolerance::default());
        assert_eq!(report2.violations[0].metric, "regroup_count.ci95");
    }

    #[test]
    fn json_report_carries_verdict_and_deltas() {
        let baseline = tiny_result();
        let mut perturbed = baseline.clone();
        perturbed.points[0].comparison.mechanisms[0]
            .transmissions
            .mean += 0.5;
        let report = diff_results(&baseline, &perturbed, DiffTolerance::default());
        let value = diff_to_json(&report);
        let text = serde_json::to_string(&value).unwrap();
        assert!(text.contains("\"ok\":false"), "{text}");
        assert!(text.contains("transmissions.mean"), "{text}");
    }
}
