//! Scenario loading and figure rendering shared by the `figures` driver
//! and the legacy figure-binary shims.
//!
//! A scenario is addressed either by registry name
//! ([`nbiot_sim::Scenario::REGISTRY`]) or by a `.json`/`.toml` file path;
//! captions are **derived from the executed configuration** (mix name,
//! device counts, TI, runs), so they cannot drift from what actually ran.

use nbiot_des::SeedSequence;
use nbiot_grouping::{analysis, GroupingInput, MechanismKind};
use nbiot_phy::DataSize;
use nbiot_sim::{run_scenario, Scenario, ScenarioArchive, ScenarioResult};

use crate::{pct, render_table};

/// Loads a scenario from a registry name or a `.json`/`.toml` file path.
///
/// # Errors
///
/// Returns a user-facing message listing the registry for unknown names,
/// or the underlying I/O/parse error for files.
pub fn load_scenario(spec: &str) -> Result<Scenario, String> {
    if spec.ends_with(".json") || spec.ends_with(".toml") {
        let text = std::fs::read_to_string(spec)
            .map_err(|e| format!("cannot read scenario file `{spec}`: {e}"))?;
        if spec.ends_with(".json") {
            serde_json::from_str(&text).map_err(|e| format!("bad scenario JSON in `{spec}`: {e}"))
        } else {
            let value = crate::toml_lite::parse(&text)
                .map_err(|e| format!("bad scenario TOML in `{spec}`: {e}"))?;
            <Scenario as serde::Deserialize>::from_value(&value)
                .map_err(|e| format!("scenario shape error in `{spec}`: {e}"))
        }
    } else {
        Scenario::builtin(spec).ok_or_else(|| {
            format!(
                "unknown scenario `{spec}`; built-ins: {} (or pass a .json/.toml path)",
                Scenario::REGISTRY.join(", ")
            )
        })
    }
}

/// Reads a [`ScenarioArchive`] from a JSON file.
///
/// # Errors
///
/// Returns a user-facing message on I/O, parse or archive-consistency
/// failure (every loaded archive is [`ScenarioArchive::validate`]d, so a
/// truncated or hand-edited file is caught at the door).
pub fn load_archive(path: &str) -> Result<ScenarioArchive, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read archive `{path}`: {e}"))?;
    let archive: ScenarioArchive = serde_json::from_str(&text).map_err(|e| {
        // A clean parse failure on an archive of another era deserves a
        // better message than "missing field": peek at the generic JSON
        // for a schema_version that this build simply doesn't speak.
        match archive_schema_version(&text) {
            Some(version) if version != nbiot_sim::ARCHIVE_SCHEMA_VERSION => format!(
                "archive `{path}` has schema version {version}; this build reads version {} — \
                 regenerate the archive with the current `figures --emit-archive`",
                nbiot_sim::ARCHIVE_SCHEMA_VERSION
            ),
            _ => format!("bad archive JSON in `{path}`: {e}"),
        }
    })?;
    archive
        .validate()
        .map_err(|e| format!("invalid archive `{path}`: {e}"))?;
    Ok(archive)
}

/// Extracts `schema_version` from archive JSON text without assuming any
/// other part of the shape parses.
fn archive_schema_version(text: &str) -> Option<u32> {
    let value: serde::Value = serde_json::from_str(text).ok()?;
    let entries = value.as_object()?;
    let version = entries
        .iter()
        .find(|(key, _)| key == "schema_version")
        .map(|(_, v)| v)?;
    match version {
        serde::Value::U64(v) => u32::try_from(*v).ok(),
        _ => None,
    }
}

/// Largest per-point device count for which `figures --emit-archive` will
/// write a full per-run archive.
///
/// Archives store every (point × run × mechanism) record, so their size
/// grows with the device grid; at the massive-n scale tier (10^5–10^6
/// devices) an archive would be gigabytes of redundant per-run state. The
/// summary path (`figures` without `--emit-archive`, or `bench_report`'s
/// massive stages) is the supported output above this limit.
pub const ARCHIVE_DEVICE_LIMIT: usize = 50_000;

/// Writes a [`ScenarioArchive`] to a JSON file (pretty-printed; floats use
/// shortest-roundtrip formatting, so records survive the text roundtrip
/// bit-exactly).
///
/// # Errors
///
/// Returns a user-facing message on I/O failure.
pub fn write_archive(path: &str, archive: &ScenarioArchive) -> Result<(), String> {
    let text = serde_json::to_string_pretty(archive).expect("archive is serializable");
    std::fs::write(path, text).map_err(|e| format!("cannot write archive `{path}`: {e}"))
}

/// The caption line of a figure, derived from the actual configuration —
/// never hardcoded, so it cannot lie when flags or files change the
/// workload.
pub fn caption(scenario: &Scenario) -> String {
    let devices = match scenario.devices.as_slice() {
        [one] => format!("{one} devices"),
        [first, .., last] => format!("{first}-{last} devices ({} points)", scenario.devices.len()),
        [] => "no devices".to_string(),
    };
    format!(
        "(mix: {}, {devices}, {} runs, TI = {} s, seed {:#x})",
        scenario.mix.name,
        scenario.runs,
        scenario.ti_seconds(),
        scenario.master_seed
    )
}

/// Fig. 6(a)-style table: relative light-sleep uptime increase vs unicast.
/// Devices/payload columns appear only when the scenario sweeps them.
pub fn render_light_sleep(scenario: &Scenario, result: &ScenarioResult) -> String {
    let multi_n = scenario.devices.len() > 1;
    let multi_p = scenario.payloads.len() > 1;
    let mut headers: Vec<&str> = Vec::new();
    if multi_n {
        headers.push("devices");
    }
    if multi_p {
        headers.push("payload");
    }
    headers.extend(["mechanism", "light-sleep increase", "±95%CI", "compliant"]);
    let mut rows = Vec::new();
    for point in &result.points {
        for m in &point.comparison.mechanisms {
            let mut row = Vec::new();
            if multi_n {
                row.push(point.n_devices.to_string());
            }
            if multi_p {
                row.push(point.payload.to_string());
            }
            row.extend([
                m.mechanism.clone(),
                pct(m.rel_light_sleep.mean),
                pct(m.rel_light_sleep.ci95),
                if m.standards_compliant { "yes" } else { "no" }.into(),
            ]);
            rows.push(row);
        }
    }
    render_table(&headers, &rows)
}

/// Fig. 6(b)-style table: relative connected-mode uptime increase vs
/// unicast, with the mean pre-transmission wait.
pub fn render_connected(scenario: &Scenario, result: &ScenarioResult) -> String {
    let multi_n = scenario.devices.len() > 1;
    let mut headers: Vec<&str> = Vec::new();
    if multi_n {
        headers.push("devices");
    }
    headers.extend([
        "payload",
        "mechanism",
        "connected increase",
        "±95%CI",
        "mean wait (s)",
    ]);
    let mut rows = Vec::new();
    for point in &result.points {
        for m in &point.comparison.mechanisms {
            let mut row = Vec::new();
            if multi_n {
                row.push(point.n_devices.to_string());
            }
            row.extend([
                point.payload.to_string(),
                m.mechanism.clone(),
                pct(m.rel_connected.mean),
                pct(m.rel_connected.ci95),
                format!("{:.1}", m.mean_wait_s.mean),
            ]);
            rows.push(row);
        }
    }
    render_table(&headers, &rows)
}

/// Fig. 7-style table: transmission counts and their ratio to the group
/// size, one row per (device point × mechanism), first payload only (the
/// plan — and therefore the count — is payload-independent). When DR-SC
/// is in the set, a fluid-model column shows the analytical estimate.
pub fn render_transmissions(scenario: &Scenario, result: &ScenarioResult) -> String {
    let with_fluid = scenario.mechanisms.contains(&MechanismKind::DrSc);
    let estimates = if with_fluid {
        fluid_estimates(scenario)
    } else {
        Vec::new()
    };
    let mut headers = vec!["devices", "mechanism", "transmissions", "±95%CI", "ratio"];
    if with_fluid {
        headers.push("fluid model (DR-SC)");
    }
    // Estimates looked up by group size, not column position: a scenario
    // listing duplicate payloads yields several columns per device point.
    let est_by_n: Vec<(usize, f64)> = scenario.devices.iter().copied().zip(estimates).collect();
    let first_payload = scenario.payloads[0];
    let mut rows = Vec::new();
    for point in result.payload_column(first_payload) {
        for m in &point.comparison.mechanisms {
            let mut row = vec![
                point.n_devices.to_string(),
                m.mechanism.clone(),
                format!("{:.1}", m.transmissions.mean),
                format!("{:.1}", m.transmissions.ci95),
                format!("{:.1}%", m.transmissions_ratio.mean * 100.0),
            ];
            if with_fluid {
                row.push(match est_by_n.iter().find(|(n, _)| *n == point.n_devices) {
                    Some((_, est)) if m.mechanism == "DR-SC" => format!("{est:.1}"),
                    _ => String::new(),
                });
            }
            rows.push(row);
        }
    }
    render_table(&headers, &rows)
}

/// Fluid-model DR-SC transmission estimates on a representative population
/// per device point — the "analytical" half of the paper's evaluation.
pub fn fluid_estimates(scenario: &Scenario) -> Vec<f64> {
    let seq = SeedSequence::new(scenario.master_seed);
    scenario
        .devices
        .iter()
        .map(|&n| {
            let pop = scenario
                .mix
                .generate(n, &mut seq.child(0).rng(0))
                .expect("population");
            let input = GroupingInput::from_population(&pop, scenario.grouping).expect("input");
            analysis::estimate_dr_sc_transmissions(&input).transmissions
        })
        .collect()
}

/// Churn table: plan recomputations and stale-miss ratio per mechanism,
/// first payload column only (like the plan, the churn trajectory is
/// payload-independent). Only rendered for scenarios declaring churn.
pub fn render_churn(scenario: &Scenario, result: &ScenarioResult) -> String {
    let headers = [
        "devices",
        "mechanism",
        "regroups",
        "±95%CI",
        "stale-miss ratio",
    ];
    let first_payload = scenario.payloads[0];
    let mut rows = Vec::new();
    for point in result.payload_column(first_payload) {
        for m in &point.comparison.mechanisms {
            rows.push(vec![
                point.n_devices.to_string(),
                m.mechanism.clone(),
                format!("{:.2}", m.regroup_count.mean),
                format!("{:.2}", m.regroup_count.ci95),
                pct(m.stale_miss_ratio.mean),
            ]);
        }
    }
    render_table(&headers, &rows)
}

/// Whether a scenario exercises the plan-improvement layer: an anytime
/// `DR-SC-tabu(N)` mechanism in the set, or the LNS `Repair` re-grouping
/// policy. Only such scenarios carry non-zero improvement metrics.
pub fn has_improvement(scenario: &Scenario) -> bool {
    scenario
        .mechanisms
        .iter()
        .any(|m| matches!(m, MechanismKind::DrScTabu(_)))
        || scenario.regroup == nbiot_sim::RegroupPolicy::Repair
}

/// Anytime-planning Pareto table: the budget each mechanism spent vs the
/// cover cost it bought, one row per (device point × mechanism), first
/// payload only (the plan is payload-independent). Zero-budget rows are
/// the greedy anchors of the front; reading down a device point shows
/// cover cost against planning budget.
pub fn render_pareto(scenario: &Scenario, result: &ScenarioResult) -> String {
    let headers = [
        "devices",
        "mechanism",
        "budget spent",
        "moves",
        "cover initial",
        "cover final",
        "transmissions",
        "±95%CI",
    ];
    let first_payload = scenario.payloads[0];
    let mut rows = Vec::new();
    for point in result.payload_column(first_payload) {
        for m in &point.comparison.mechanisms {
            rows.push(vec![
                point.n_devices.to_string(),
                m.mechanism.clone(),
                format!("{:.1}", m.improve_budget.mean),
                format!("{:.1}", m.improve_moves.mean),
                format!("{:.1}", m.cover_cost_initial.mean),
                format!("{:.1}", m.cover_cost_final.mean),
                format!("{:.1}", m.transmissions.mean),
                format!("{:.1}", m.transmissions.ci95),
            ]);
        }
    }
    render_table(&headers, &rows)
}

/// Renders the full report for a scenario result: derived caption, the
/// relative-uptime tables (only meaningful against a baseline), the
/// transmission table, the anytime-planning Pareto table (when the
/// scenario [`has_improvement`]), and — for churned scenarios — the
/// re-grouping table.
pub fn render_report(scenario: &Scenario, result: &ScenarioResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "==== scenario {}: {} ====\n{}\n\n",
        scenario.name,
        scenario.description,
        caption(scenario)
    ));
    if scenario.baseline {
        out.push_str("-- relative light-sleep uptime increase vs unicast --\n");
        out.push_str(&render_light_sleep(scenario, result));
        out.push('\n');
        out.push_str("-- relative connected-mode uptime increase vs unicast --\n");
        out.push_str(&render_connected(scenario, result));
        out.push('\n');
    }
    out.push_str("-- multicast transmissions --\n");
    out.push_str(&render_transmissions(scenario, result));
    if has_improvement(scenario) {
        out.push('\n');
        out.push_str("-- anytime planning Pareto front (budget spent vs cover cost) --\n");
        out.push_str(&render_pareto(scenario, result));
    }
    if let Some(churn) = &scenario.churn {
        out.push('\n');
        out.push_str(&format!(
            "-- re-grouping under churn ({} epochs, dep {:.0}% / arr {:.0}% / ho {:.0}% per \
             epoch, policy {:?}) --\n",
            churn.epochs,
            churn.departure_rate * 100.0,
            churn.arrival_rate * 100.0,
            churn.handover_rate * 100.0,
            scenario.regroup,
        ));
        out.push_str(&render_churn(scenario, result));
    }
    out
}

/// Executes a scenario and prints the report (or JSON): the shared body
/// of the `figures` driver and the legacy figure shims.
///
/// Exits with a one-line error on execution failure — appropriate for the
/// CLI entry points this backs.
pub fn run_and_print(scenario: &Scenario, json: bool) -> ScenarioResult {
    let result = run_scenario(scenario)
        .unwrap_or_else(|e| crate::fail(format!("scenario execution failed: {e}")));
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serializable")
        );
    } else {
        println!("{}", render_report(scenario, &result));
    }
    result
}

/// The payload sizes of the paper's Fig. 6(b) (100 kB, 1 MB, 10 MB).
pub fn paper_payloads() -> Vec<DataSize> {
    vec![
        DataSize::from_kb(100),
        DataSize::from_mb(1),
        DataSize::from_mb(10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::builtin("fig6a").unwrap();
        s.devices = vec![20];
        s.runs = 2;
        s.threads = 1;
        s
    }

    #[test]
    fn caption_is_derived_from_config() {
        let mut s = tiny_scenario();
        s.mix = nbiot_traffic::TrafficMix::bursty_alarm();
        s.runs = 7;
        s = nbiot_sim::with_ti(s, nbiot_time::SimDuration::from_secs(20));
        let c = caption(&s);
        assert!(c.contains("bursty-alarm"), "{c}");
        assert!(c.contains("TI = 20 s"), "{c}");
        assert!(c.contains("7 runs"), "{c}");
        assert!(c.contains("20 devices"), "{c}");
        // A sweep scenario reports its range instead.
        let fig7 = Scenario::builtin("fig7").unwrap();
        assert!(caption(&fig7).contains("100-1000 devices (10 points)"));
    }

    #[test]
    fn report_contains_all_tables_and_true_caption() {
        let s = tiny_scenario();
        let result = run_scenario(&s).unwrap();
        let report = render_report(&s, &result);
        assert!(report.contains("light-sleep increase"), "{report}");
        assert!(report.contains("connected increase"), "{report}");
        assert!(report.contains("transmissions"), "{report}");
        assert!(report.contains("mix: ericsson-city"), "{report}");
        assert!(report.contains("2 runs"), "{report}");
        assert!(report.contains("fluid model"), "{report}");
    }

    #[test]
    fn churn_report_includes_regroup_table() {
        let mut s = Scenario::builtin("mobility-churn").unwrap();
        s.devices = vec![25];
        s.runs = 2;
        s.threads = 1;
        let result = run_scenario(&s).unwrap();
        let report = render_report(&s, &result);
        assert!(report.contains("re-grouping under churn"), "{report}");
        assert!(report.contains("stale-miss ratio"), "{report}");
        assert!(report.contains("6 epochs"), "{report}");
        // Static scenarios stay churn-table-free.
        let s2 = tiny_scenario();
        let r2 = run_scenario(&s2).unwrap();
        assert!(!render_report(&s2, &r2).contains("re-grouping"));
    }

    #[test]
    fn pareto_table_renders_for_improvement_scenarios_only() {
        let mut s = Scenario::builtin("planning-pareto").unwrap();
        s.devices = vec![30];
        s.runs = 2;
        s.threads = 1;
        assert!(has_improvement(&s));
        let result = run_scenario(&s).unwrap();
        let report = render_report(&s, &result);
        assert!(report.contains("anytime planning Pareto front"), "{report}");
        let table = render_pareto(&s, &result);
        assert!(table.contains("budget spent"), "{table}");
        // The budget-0 row is the greedy anchor: zero budget spent, and
        // a cover no better than its own initial cost.
        assert!(table.contains("DR-SC-tabu(0)"), "{table}");
        // Plain greedy scenarios carry no Pareto table at all.
        let s2 = tiny_scenario();
        assert!(!has_improvement(&s2));
        let r2 = run_scenario(&s2).unwrap();
        assert!(!render_report(&s2, &r2).contains("Pareto"));
    }

    #[test]
    fn load_scenario_resolves_names_and_rejects_unknowns() {
        assert_eq!(load_scenario("fig7").unwrap().name, "fig7");
        let err = load_scenario("nope").unwrap_err();
        assert!(err.contains("built-ins"), "{err}");
    }

    #[test]
    fn scenario_files_roundtrip_through_json() {
        let s = tiny_scenario();
        let dir = std::env::temp_dir().join("nbiot_scenario_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        std::fs::write(&path, serde_json::to_string_pretty(&s).unwrap()).unwrap();
        let loaded = load_scenario(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, s);
    }

    #[test]
    fn archives_roundtrip_through_json_files() {
        let s = tiny_scenario();
        let shard = nbiot_sim::ShardSpec { index: 0, count: 2 };
        let archive = nbiot_sim::run_scenario_shard(&s, shard).unwrap();
        let dir = std::env::temp_dir().join("nbiot_archive_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.json");
        let path = path.to_str().unwrap();
        write_archive(path, &archive).unwrap();
        let loaded = load_archive(path).unwrap();
        assert_eq!(
            loaded, archive,
            "archive must survive the JSON roundtrip bit-exactly"
        );
        // A hand-edited archive fails validation at load time.
        let mut tampered = archive.clone();
        tampered.scenario.master_seed += 1;
        let bad_path = dir.join("tampered.json");
        let bad_path = bad_path.to_str().unwrap();
        std::fs::write(bad_path, serde_json::to_string_pretty(&tampered).unwrap()).unwrap();
        let err = load_archive(bad_path).unwrap_err();
        assert!(err.contains("invalid archive"), "{err}");
    }

    #[test]
    fn scenario_files_roundtrip_through_toml() {
        // Every built-in scenario survives Scenario -> TOML -> Scenario,
        // exercising tables, arrays of tables, nested enums and options.
        let dir = std::env::temp_dir().join("nbiot_scenario_test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in Scenario::REGISTRY {
            let s = Scenario::builtin(name).unwrap();
            let text = crate::toml_lite::to_toml(&serde_json::to_value(&s)).expect("TOML-writable");
            let path = dir.join(format!("{name}.toml"));
            std::fs::write(&path, &text).unwrap();
            let loaded = load_scenario(path.to_str().unwrap())
                .unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(loaded, s, "{name}");
        }
    }
}
