//! Fault-tolerant campaign coordination: supervised shard execution with
//! deterministic fault injection, checkpoint/resume, and partial-merge
//! degradation — the engine behind the `scenario_run` binary.
//!
//! A campaign partitions a scenario's (point × run) item pool into
//! [`ShardSpec`]s and executes every shard under supervision:
//!
//! * each attempt runs either **in-process** (a worker thread computing
//!   [`run_scenario_shard`]) or as a **child process** (re-invoking
//!   `figures --shard i/N --emit-archive`), bounded by a per-shard
//!   timeout;
//! * a failed, stalled or corrupt attempt is retried with **seeded
//!   exponential backoff** up to a bounded attempt budget — every backoff
//!   delay is a pure function of (master seed, shard, attempt), so a
//!   re-run of the same campaign schedules identically;
//! * every completed shard archive is **checkpointed** into the run
//!   directory; a resumed campaign skips shards whose checkpoints pass
//!   fingerprint + integrity validation and re-executes the rest;
//! * when a shard exhausts its budget the campaign can **degrade** via
//!   [`MergePolicy::Partial`] into a coverage-annotated partial archive
//!   instead of aborting.
//!
//! Failure handling is itself testable: a serde-round-trippable
//! [`FaultPlan`] injects crash-at-item-k, stall-past-timeout,
//! corrupt-archive-on-write and transient-spawn failures into chosen
//! (shard, attempt) slots, and [`FaultPlan::sampled`] draws a reproducible
//! random plan from the same seeded RNG tree the simulator uses. Fault
//! injection requires the in-process worker mode (a child process cannot
//! be made to lie on cue); supervision itself covers both modes.
//!
//! See `docs/RESILIENCE.md` for the full lifecycle, directory layout and
//! exit-code contract.

use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use nbiot_des::SeedSequence;
use nbiot_sim::{
    merge_archives_with, run_scenario_shard, scenario_fingerprint, MergePolicy, Scenario,
    ScenarioArchive, ShardSpec, SimError,
};
use rand::Rng;

use crate::scenarios::{load_archive, load_scenario, write_archive};

/// `SeedSequence` child offset for fault-plan sampling — far above the
/// per-run children (`child(run)`) and the churn stream block
/// (`child(1 << 40)`), so injected-failure draws can never collide with
/// simulation draws.
const FAULT_SEED_CHILD: u64 = 1 << 42;
/// `SeedSequence` child offset for backoff jitter (same reasoning).
const BACKOFF_SEED_CHILD: u64 = (1 << 42) + (1 << 41);

/// One injected failure mode for a single (shard, attempt) slot.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// The worker dies after archiving `after_items` items: a truncated
    /// (but parseable) archive lands in the attempt's scratch file and the
    /// worker never reports success.
    Crash {
        /// How many leading items make it into the truncated archive.
        after_items: usize,
    },
    /// The worker hangs past the coordinator's timeout and never delivers.
    Stall,
    /// The worker writes a corrupted archive (a flipped record checksum)
    /// and *claims success* — only load-time integrity validation can
    /// catch it.
    CorruptWrite,
    /// The worker cannot be started at all this attempt (transient spawn
    /// failure: fork limits, executable momentarily missing, ...).
    SpawnFailure,
}

/// An injected failure bound to one (shard, attempt) slot. Attempts are
/// 1-based, matching the attempt numbering in [`AttemptReport`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultRule {
    /// Zero-based shard index the fault applies to.
    pub shard: u32,
    /// 1-based attempt number the fault applies to.
    pub attempt: u32,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A reproducible failure schedule: which (shard, attempt) slots fail and
/// how. Serde-round-trippable so CI can pin a plan in a JSON file, and
/// sampleable from the seeded RNG tree so property tests can explore the
/// failure space deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// The injected failures. Order is irrelevant; at most one rule per
    /// (shard, attempt) slot is honored (the first listed wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan injecting no faults at all.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The fault injected into this (shard, 1-based attempt) slot, if any.
    pub fn fault_for(&self, shard: u32, attempt: u32) -> Option<&FaultKind> {
        self.rules
            .iter()
            .find(|rule| rule.shard == shard && rule.attempt == attempt)
            .map(|rule| &rule.kind)
    }

    /// Draws a reproducible random plan from the seeded RNG tree: each
    /// (shard, attempt) slot fails with probability `intensity`, with the
    /// fault kind drawn uniformly. The **final** attempt of every shard is
    /// always left clean, so a sampled plan is guaranteed to succeed
    /// within a `max_attempts` retry budget — the property the crash/
    /// resume determinism tests quantify over. `include_stall` gates the
    /// slowest fault kind (a stall burns a whole timeout window).
    pub fn sampled(
        seed: u64,
        shards: u32,
        max_attempts: u32,
        intensity: f64,
        include_stall: bool,
    ) -> FaultPlan {
        let seq = SeedSequence::new(seed);
        let mut rules = Vec::new();
        for shard in 0..shards {
            let shard_seq = seq.child(FAULT_SEED_CHILD + u64::from(shard));
            for attempt in 1..max_attempts {
                let mut rng = shard_seq.rng(u64::from(attempt));
                if !rng.gen_bool(intensity.clamp(0.0, 1.0)) {
                    continue;
                }
                let kind = match rng.gen_range(0..if include_stall { 4 } else { 3 }) {
                    0 => FaultKind::Crash {
                        after_items: rng.gen_range(0..4),
                    },
                    1 => FaultKind::CorruptWrite,
                    2 => FaultKind::SpawnFailure,
                    _ => FaultKind::Stall,
                };
                rules.push(FaultRule {
                    shard,
                    attempt,
                    kind,
                });
            }
        }
        FaultPlan { rules }
    }
}

/// How shard attempts are executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMode {
    /// A worker thread inside the coordinator process computes
    /// [`run_scenario_shard`] directly. Supports fault injection.
    InProcess,
    /// A supervised child process re-invokes
    /// `figures --scenario <run_dir>/scenario.json --shard i/N
    /// --emit-archive <tmp>` — the multi-host execution model, exercised
    /// locally.
    Process {
        /// Path to the `figures` binary.
        figures_bin: PathBuf,
    },
}

/// Everything a campaign needs: the scenario, the partition, the retry
/// budget, and the failure schedule under test.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The scenario to execute.
    pub scenario: Scenario,
    /// How many shards to partition the item pool into (`>= 1`).
    pub shards: u32,
    /// Checkpoint/run directory (created if absent). A directory holding
    /// checkpoints of a *different* scenario is refused.
    pub run_dir: PathBuf,
    /// Attempt budget per shard (`>= 1`; 1 = no retries).
    pub max_attempts: u32,
    /// Per-attempt timeout: an attempt not delivering within this window
    /// counts as stalled and is retried.
    pub timeout: Duration,
    /// Base of the exponential backoff between attempts, in milliseconds
    /// (`0` disables backoff; useful in tests).
    pub backoff_base_ms: u64,
    /// How shard attempts execute.
    pub workers: WorkerMode,
    /// The injected failure schedule (requires [`WorkerMode::InProcess`]).
    pub fault_plan: FaultPlan,
    /// With retries exhausted on some shard, degrade to a
    /// coverage-annotated partial merge instead of skipping the merge.
    pub allow_partial: bool,
    /// Stop the campaign (as a simulated kill) after this many *newly*
    /// completed shards: checkpoints stay on disk, no merge is attempted,
    /// and a later run with the same config resumes from them.
    pub halt_after: Option<u32>,
}

impl RunConfig {
    /// A config with production-shaped defaults: 3 attempts, a 10-minute
    /// per-shard timeout, 200 ms backoff base, in-process workers, no
    /// faults, strict merging.
    pub fn new(scenario: Scenario, shards: u32, run_dir: impl Into<PathBuf>) -> RunConfig {
        RunConfig {
            scenario,
            shards,
            run_dir: run_dir.into(),
            max_attempts: 3,
            timeout: Duration::from_secs(600),
            backoff_base_ms: 200,
            workers: WorkerMode::InProcess,
            fault_plan: FaultPlan::none(),
            allow_partial: false,
            halt_after: None,
        }
    }

    /// The deterministic backoff delay after a failed attempt, in
    /// milliseconds: `base * 2^(attempt-1)` capped at 30 s, plus up to
    /// 50 % seeded jitter drawn from the scenario's own RNG tree — so
    /// identical campaigns schedule identically, while distinct shards
    /// never thundering-herd in lockstep.
    pub fn backoff_ms(&self, shard: u32, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let exponent = attempt.saturating_sub(1).min(16);
        let base = self
            .backoff_base_ms
            .saturating_mul(1u64 << exponent)
            .min(30_000);
        let jitter = SeedSequence::new(self.scenario.master_seed)
            .child(BACKOFF_SEED_CHILD + u64::from(shard))
            .rng(u64::from(attempt))
            .gen_range(0..base / 2 + 1);
        base + jitter
    }

    /// Sanity-checks the configuration itself (not the filesystem).
    fn validate(&self) -> Result<(), CoordError> {
        if self.shards == 0 {
            return Err(CoordError::Config("shard count must be at least 1".into()));
        }
        if self.max_attempts == 0 {
            return Err(CoordError::Config(
                "attempt budget must be at least 1".into(),
            ));
        }
        if !self.fault_plan.is_empty() && !matches!(self.workers, WorkerMode::InProcess) {
            return Err(CoordError::Config(
                "fault injection requires in-process workers; a child process cannot be \
                 made to fail on cue"
                    .into(),
            ));
        }
        self.scenario.validate().map_err(CoordError::Sim)
    }
}

/// What one supervised attempt ended as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AttemptOutcome {
    /// The attempt delivered a validated archive; its checkpoint is on
    /// disk.
    Completed,
    /// The worker could not be started.
    SpawnFailed,
    /// The worker delivered nothing within the timeout and was abandoned
    /// (child processes are killed; in-process workers are detached and
    /// their late output lands in an attempt-unique scratch file that is
    /// never read).
    Stalled,
    /// The worker died or reported an execution failure.
    Crashed,
    /// The worker claimed success but its archive failed fingerprint or
    /// integrity validation.
    CorruptArchive,
}

/// The record of one supervised attempt.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AttemptReport {
    /// 1-based attempt number.
    pub attempt: u32,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// One-line human-readable detail (item count, error, ...).
    pub detail: String,
    /// Backoff scheduled after this attempt (0 on success, on the final
    /// attempt, and when backoff is disabled).
    pub backoff_ms: u64,
}

/// The record of one shard across the campaign.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardReport {
    /// Zero-based shard index.
    pub shard: u32,
    /// The shard's checkpoint from an earlier run passed validation and
    /// no attempt was needed.
    pub from_checkpoint: bool,
    /// The shard's archive is checkpointed (via attempt or resume).
    pub completed: bool,
    /// Every supervised attempt, in order (empty when resumed or skipped).
    pub attempts: Vec<AttemptReport>,
}

/// The full campaign record `scenario_run --report` serializes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario fingerprint (the merge-compatibility key).
    pub fingerprint: u64,
    /// Total shard count.
    pub shards: u32,
    /// The campaign stopped early via [`RunConfig::halt_after`].
    pub halted: bool,
    /// Zero-based indices of checkpointed shards.
    pub completed: Vec<u32>,
    /// Zero-based indices of shards that exhausted their attempt budget.
    pub failed: Vec<u32>,
    /// Zero-based indices of shards never attempted (halted campaign).
    pub skipped: Vec<u32>,
    /// Per-shard attempt logs.
    pub shard_reports: Vec<ShardReport>,
}

/// What a campaign produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The campaign record.
    pub report: RunReport,
    /// The merged archive: `Some` full archive on total success, `Some`
    /// coverage-annotated archive on a permitted partial merge, `None`
    /// when halted or when a failed campaign may not degrade.
    pub merged: Option<ScenarioArchive>,
    /// Where the merged (or partial) archive was written.
    pub merged_path: Option<PathBuf>,
}

/// Coordinator errors: campaign-level problems, as opposed to per-attempt
/// failures (which are retried and reported, not raised).
#[derive(Debug)]
pub enum CoordError {
    /// Scenario validation or final-merge failure.
    Sim(SimError),
    /// A filesystem operation on the run directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        detail: String,
    },
    /// The configuration contradicts itself or the run directory.
    Config(String),
}

impl core::fmt::Display for CoordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoordError::Sim(e) => write!(f, "{e}"),
            CoordError::Io { path, detail } => {
                write!(
                    f,
                    "run-directory I/O failed on `{}`: {detail}",
                    path.display()
                )
            }
            CoordError::Config(detail) => write!(f, "bad coordinator config: {detail}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<SimError> for CoordError {
    fn from(e: SimError) -> Self {
        CoordError::Sim(e)
    }
}

/// The checkpoint path of one shard inside the run directory.
pub fn checkpoint_path(run_dir: &Path, shard: ShardSpec) -> PathBuf {
    run_dir.join(format!("shard_{}_of_{}.json", shard.index, shard.count))
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> CoordError + '_ {
    move |e| CoordError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// Runs a campaign end-to-end: resume from checkpoints, supervise and
/// retry every remaining shard, then merge.
///
/// Per-attempt failures are **not** errors — they are retried within the
/// budget and recorded in the report; a shard exhausting its budget shows
/// up in `report.failed` (with `merged` degraded or absent per
/// [`RunConfig::allow_partial`]).
///
/// # Errors
///
/// [`CoordError`] only for campaign-level problems: an invalid config or
/// scenario, a run directory that belongs to a different scenario or
/// cannot be read/written, or a final merge that fails structurally.
pub fn run(config: &RunConfig) -> Result<RunOutcome, CoordError> {
    config.validate()?;
    std::fs::create_dir_all(&config.run_dir).map_err(io_err(&config.run_dir))?;
    let fingerprint = pin_scenario(config)?;

    let mut report = RunReport {
        scenario: config.scenario.name.clone(),
        fingerprint,
        shards: config.shards,
        halted: false,
        completed: Vec::new(),
        failed: Vec::new(),
        skipped: Vec::new(),
        shard_reports: Vec::new(),
    };
    let mut newly_completed = 0u32;
    for index in 0..config.shards {
        if config.halt_after.is_some_and(|n| newly_completed >= n) {
            report.halted = true;
        }
        let spec = ShardSpec {
            index,
            count: config.shards,
        };
        let mut shard_report = ShardReport {
            shard: index,
            from_checkpoint: false,
            completed: false,
            attempts: Vec::new(),
        };
        let ckpt = checkpoint_path(&config.run_dir, spec);
        if checkpoint_is_valid(&ckpt, fingerprint, spec) {
            shard_report.from_checkpoint = true;
            shard_report.completed = true;
        } else if report.halted {
            report.skipped.push(index);
            report.shard_reports.push(shard_report);
            continue;
        } else {
            // A checkpoint that exists but fails validation is stale or
            // corrupt: drop it and re-execute.
            let _ = std::fs::remove_file(&ckpt);
            for attempt in 1..=config.max_attempts {
                let fault = config.fault_plan.fault_for(index, attempt);
                let (outcome, detail) = execute_attempt(config, spec, attempt, fault, &ckpt);
                let done = outcome == AttemptOutcome::Completed;
                let backoff_ms = if done || attempt == config.max_attempts {
                    0
                } else {
                    config.backoff_ms(index, attempt)
                };
                shard_report.attempts.push(AttemptReport {
                    attempt,
                    outcome,
                    detail,
                    backoff_ms,
                });
                if done {
                    shard_report.completed = true;
                    newly_completed += 1;
                    break;
                }
                if backoff_ms > 0 {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                }
            }
        }
        if shard_report.completed {
            report.completed.push(index);
        } else {
            report.failed.push(index);
        }
        report.shard_reports.push(shard_report);
    }

    let (merged, merged_path) = if report.halted {
        (None, None)
    } else {
        merge_campaign(config, &report)?
    };
    Ok(RunOutcome {
        report,
        merged,
        merged_path,
    })
}

/// Writes the campaign's scenario into the run directory (process workers
/// load it from there) and returns its fingerprint. A run directory
/// already pinned to a *different* scenario is refused — mixing two
/// campaigns' checkpoints in one directory is always an operator error.
fn pin_scenario(config: &RunConfig) -> Result<u64, CoordError> {
    let fingerprint = scenario_fingerprint(&config.scenario);
    let path = config.run_dir.join("scenario.json");
    if path.exists() {
        let pinned = load_scenario(&path.to_string_lossy()).map_err(CoordError::Config)?;
        if scenario_fingerprint(&pinned) != fingerprint {
            return Err(CoordError::Config(format!(
                "run directory `{}` holds a campaign of a different scenario \
                 (fingerprint {:#018x}, this campaign is {fingerprint:#018x}); \
                 use a fresh --run-dir",
                config.run_dir.display(),
                scenario_fingerprint(&pinned),
            )));
        }
    } else {
        let text =
            serde_json::to_string_pretty(&config.scenario).expect("scenario is serializable");
        std::fs::write(&path, text).map_err(io_err(&path))?;
    }
    Ok(fingerprint)
}

/// Whether a checkpoint file exists, parses, passes archive integrity
/// validation, and belongs to this campaign's scenario and shard.
fn checkpoint_is_valid(path: &Path, fingerprint: u64, spec: ShardSpec) -> bool {
    path.exists()
        && load_archive(&path.to_string_lossy())
            .is_ok_and(|archive| archive.fingerprint == fingerprint && archive.shard == spec)
}

/// One supervised attempt: run the worker, bound it by the timeout,
/// validate whatever it delivered, and atomically promote a good archive
/// to the shard's checkpoint.
fn execute_attempt(
    config: &RunConfig,
    spec: ShardSpec,
    attempt: u32,
    fault: Option<&FaultKind>,
    ckpt: &Path,
) -> (AttemptOutcome, String) {
    if matches!(fault, Some(FaultKind::SpawnFailure)) {
        return (
            AttemptOutcome::SpawnFailed,
            "injected transient spawn failure".into(),
        );
    }
    // Attempt-unique scratch file: a stalled worker from an abandoned
    // attempt can finish late without clobbering a newer attempt's output.
    let tmp = config
        .run_dir
        .join(format!(".shard_{}_attempt_{attempt}.tmp.json", spec.index));
    let _ = std::fs::remove_file(&tmp);
    let verdict = match &config.workers {
        WorkerMode::InProcess => in_process_attempt(config, spec, fault, &tmp),
        WorkerMode::Process { figures_bin } => subprocess_attempt(config, spec, figures_bin, &tmp),
    };
    match verdict {
        WorkerVerdict::Finished => {
            // The worker claims success; trust nothing it wrote until the
            // archive passes fingerprint + integrity validation.
            let loaded = load_archive(&tmp.to_string_lossy());
            match loaded {
                Ok(archive)
                    if archive.fingerprint == scenario_fingerprint(&config.scenario)
                        && archive.shard == spec =>
                {
                    match std::fs::rename(&tmp, ckpt) {
                        Ok(()) => (
                            AttemptOutcome::Completed,
                            format!("{} items checkpointed", archive.items.len()),
                        ),
                        Err(e) => (
                            AttemptOutcome::Crashed,
                            format!("cannot promote checkpoint: {e}"),
                        ),
                    }
                }
                Ok(_) => (
                    AttemptOutcome::CorruptArchive,
                    "archive belongs to a different scenario or shard".into(),
                ),
                Err(e) => (AttemptOutcome::CorruptArchive, e),
            }
        }
        WorkerVerdict::Failed(detail) => (AttemptOutcome::Crashed, detail),
        WorkerVerdict::TimedOut => (
            AttemptOutcome::Stalled,
            format!("no archive within {} ms", config.timeout.as_millis()),
        ),
        WorkerVerdict::SpawnFailed(detail) => (AttemptOutcome::SpawnFailed, detail),
    }
}

/// What the worker (thread or child process) reported, before the
/// coordinator validates anything it wrote.
enum WorkerVerdict {
    /// Claims to have written the archive.
    Finished,
    /// Reported an execution failure (or died).
    Failed(String),
    /// Delivered nothing within the timeout.
    TimedOut,
    /// Could not be started.
    SpawnFailed(String),
}

/// Runs one attempt on a worker thread, honoring any injected fault. The
/// thread is detached on timeout — its late result is discarded and its
/// scratch file is attempt-unique, so it cannot interfere with retries.
fn in_process_attempt(
    config: &RunConfig,
    spec: ShardSpec,
    fault: Option<&FaultKind>,
    tmp: &Path,
) -> WorkerVerdict {
    let (tx, rx) = mpsc::channel();
    let scenario = config.scenario.clone();
    let fault = fault.cloned();
    let tmp = tmp.to_path_buf();
    // Long enough that the coordinator's recv_timeout always fires first.
    let stall_for = config.timeout + config.timeout / 2 + Duration::from_millis(50);
    std::thread::spawn(move || {
        let verdict = in_process_body(&scenario, spec, fault.as_ref(), &tmp, stall_for);
        let _ = tx.send(verdict);
    });
    match rx.recv_timeout(config.timeout) {
        Ok(verdict) => verdict,
        Err(_) => WorkerVerdict::TimedOut,
    }
}

/// The worker-thread body: compute the shard archive, then apply the
/// injected fault to what (if anything) lands on disk.
fn in_process_body(
    scenario: &Scenario,
    spec: ShardSpec,
    fault: Option<&FaultKind>,
    tmp: &Path,
    stall_for: Duration,
) -> WorkerVerdict {
    if matches!(fault, Some(FaultKind::Stall)) {
        std::thread::sleep(stall_for);
        return WorkerVerdict::Failed("stalled past the timeout".into());
    }
    let mut archive = match run_scenario_shard(scenario, spec) {
        Ok(archive) => archive,
        Err(e) => return WorkerVerdict::Failed(format!("shard execution failed: {e}")),
    };
    match fault {
        Some(FaultKind::Crash { after_items }) => {
            // A worker dying mid-write leaves a truncated archive behind
            // and never reports success.
            archive.items.truncate(*after_items);
            let _ = write_archive(&tmp.to_string_lossy(), &archive);
            WorkerVerdict::Failed(format!(
                "injected crash after {} archived items",
                archive.items.len()
            ))
        }
        Some(FaultKind::CorruptWrite) => {
            // Flip one record checksum (or the fingerprint of an empty
            // shard): valid JSON, corrupt content, and the worker *claims
            // success* — load-time integrity validation must catch it.
            match archive.items.first_mut() {
                Some(entry) => entry.checksum ^= 1,
                None => archive.fingerprint ^= 1,
            }
            match write_archive(&tmp.to_string_lossy(), &archive) {
                Ok(()) => WorkerVerdict::Finished,
                Err(e) => WorkerVerdict::Failed(e),
            }
        }
        _ => match write_archive(&tmp.to_string_lossy(), &archive) {
            Ok(()) => WorkerVerdict::Finished,
            Err(e) => WorkerVerdict::Failed(e),
        },
    }
}

/// Runs one attempt as a supervised child process re-invoking `figures`,
/// killing it if it overruns the timeout.
fn subprocess_attempt(
    config: &RunConfig,
    spec: ShardSpec,
    figures_bin: &Path,
    tmp: &Path,
) -> WorkerVerdict {
    use std::process::{Command, Stdio};
    let scenario_path = config.run_dir.join("scenario.json");
    let mut child = match Command::new(figures_bin)
        .arg("--scenario")
        .arg(&scenario_path)
        .arg("--shard")
        .arg(spec.to_string())
        .arg("--emit-archive")
        .arg(tmp)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => {
            return WorkerVerdict::SpawnFailed(format!(
                "cannot spawn `{}`: {e}",
                figures_bin.display()
            ))
        }
    };
    let deadline = Instant::now() + config.timeout;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let mut stderr = String::new();
                if let Some(mut pipe) = child.stderr.take() {
                    use std::io::Read as _;
                    let _ = pipe.read_to_string(&mut stderr);
                }
                return if status.success() {
                    WorkerVerdict::Finished
                } else {
                    let tail = stderr.lines().last().unwrap_or("no stderr").to_string();
                    WorkerVerdict::Failed(format!("worker exited with {status}: {tail}"))
                };
            }
            Ok(None) if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                return WorkerVerdict::TimedOut;
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return WorkerVerdict::Failed(format!("cannot supervise worker: {e}"));
            }
        }
    }
}

/// Merges whatever the campaign checkpointed: a strict merge when every
/// shard completed, a coverage-annotated partial merge when permitted,
/// nothing otherwise.
fn merge_campaign(
    config: &RunConfig,
    report: &RunReport,
) -> Result<(Option<ScenarioArchive>, Option<PathBuf>), CoordError> {
    let archives: Vec<ScenarioArchive> = report
        .completed
        .iter()
        .map(|&index| {
            let spec = ShardSpec {
                index,
                count: config.shards,
            };
            let path = checkpoint_path(&config.run_dir, spec);
            load_archive(&path.to_string_lossy()).map_err(|detail| CoordError::Io { path, detail })
        })
        .collect::<Result<_, _>>()?;
    let (policy, file) = if report.failed.is_empty() {
        (MergePolicy::Strict, "merged.json")
    } else if config.allow_partial && !archives.is_empty() {
        (MergePolicy::Partial, "partial.json")
    } else {
        return Ok((None, None));
    };
    let merged = merge_archives_with(&archives, policy)?;
    let path = config.run_dir.join(file);
    write_archive(&path.to_string_lossy(), &merged).map_err(|detail| CoordError::Io {
        path: path.clone(),
        detail,
    })?;
    Ok((Some(merged), Some(path)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_sim::run_scenario;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny() -> Scenario {
        let mut s = Scenario::builtin("fig6a").expect("builtin");
        s.devices = vec![10, 16];
        s.runs = 2;
        s.threads = 1;
        s
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nbiot_coord_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_config(tag: &str) -> RunConfig {
        let mut config = RunConfig::new(tiny(), 3, fresh_dir(tag));
        config.backoff_base_ms = 0;
        config.timeout = Duration::from_secs(60);
        config
    }

    #[test]
    fn fault_free_campaign_is_bit_identical_to_run_scenario() {
        let config = test_config("clean");
        let outcome = run(&config).expect("campaign");
        assert_eq!(outcome.report.completed, vec![0, 1, 2]);
        assert!(outcome.report.failed.is_empty());
        let merged = outcome.merged.expect("full merge");
        assert_eq!(
            merged.result().expect("complete"),
            run_scenario(&config.scenario).expect("direct")
        );
        assert!(outcome.merged_path.expect("path").ends_with("merged.json"));
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }

    #[test]
    fn every_fault_kind_is_survived_within_the_retry_budget() {
        let mut config = test_config("faults");
        config.timeout = Duration::from_millis(400);
        config.fault_plan = FaultPlan {
            rules: vec![
                FaultRule {
                    shard: 0,
                    attempt: 1,
                    kind: FaultKind::Crash { after_items: 1 },
                },
                FaultRule {
                    shard: 1,
                    attempt: 1,
                    kind: FaultKind::Stall,
                },
                FaultRule {
                    shard: 1,
                    attempt: 2,
                    kind: FaultKind::SpawnFailure,
                },
                FaultRule {
                    shard: 2,
                    attempt: 1,
                    kind: FaultKind::CorruptWrite,
                },
            ],
        };
        let outcome = run(&config).expect("campaign");
        let by_shard: Vec<Vec<AttemptOutcome>> = outcome
            .report
            .shard_reports
            .iter()
            .map(|s| s.attempts.iter().map(|a| a.outcome).collect())
            .collect();
        assert_eq!(
            by_shard[0],
            vec![AttemptOutcome::Crashed, AttemptOutcome::Completed]
        );
        assert_eq!(
            by_shard[1],
            vec![
                AttemptOutcome::Stalled,
                AttemptOutcome::SpawnFailed,
                AttemptOutcome::Completed
            ]
        );
        assert_eq!(
            by_shard[2],
            vec![AttemptOutcome::CorruptArchive, AttemptOutcome::Completed]
        );
        // Recovery is exact, not approximate.
        let merged = outcome.merged.expect("full merge after retries");
        assert_eq!(
            merged.result().expect("complete"),
            run_scenario(&config.scenario).expect("direct")
        );
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }

    #[test]
    fn exhausted_retries_degrade_to_an_annotated_partial_merge() {
        let mut config = test_config("degrade");
        config.allow_partial = true;
        config.fault_plan = FaultPlan {
            rules: (1..=config.max_attempts)
                .map(|attempt| FaultRule {
                    shard: 1,
                    attempt,
                    kind: FaultKind::SpawnFailure,
                })
                .collect(),
        };
        let outcome = run(&config).expect("campaign");
        assert_eq!(outcome.report.failed, vec![1]);
        let merged = outcome.merged.expect("partial merge");
        let coverage = merged.coverage.as_ref().expect("coverage annotation");
        assert_eq!(coverage.missing, vec![1]);
        assert_eq!(coverage.present, vec![0, 2]);
        assert!(matches!(
            merged.result(),
            Err(SimError::DegradedArchive { ref missing }) if missing == &vec![1]
        ));
        assert!(outcome.merged_path.expect("path").ends_with("partial.json"));
        // Without permission to degrade, the same campaign merges nothing.
        let mut strict = config.clone();
        strict.run_dir = fresh_dir("degrade_strict");
        strict.allow_partial = false;
        let outcome = run(&strict).expect("campaign");
        assert_eq!(outcome.report.failed, vec![1]);
        assert!(outcome.merged.is_none());
        std::fs::remove_dir_all(&config.run_dir).unwrap();
        std::fs::remove_dir_all(&strict.run_dir).unwrap();
    }

    #[test]
    fn halted_campaigns_resume_from_checkpoints_bit_identically() {
        let mut config = test_config("resume");
        config.halt_after = Some(1);
        let first = run(&config).expect("halted campaign");
        assert!(first.report.halted);
        assert_eq!(first.report.completed, vec![0]);
        assert_eq!(first.report.skipped, vec![1, 2]);
        assert!(first.merged.is_none());
        // Resume: shard 0 comes from its checkpoint, the rest execute.
        let mut resumed = config.clone();
        resumed.halt_after = None;
        let outcome = run(&resumed).expect("resumed campaign");
        assert!(outcome.report.shard_reports[0].from_checkpoint);
        assert!(!outcome.report.shard_reports[1].from_checkpoint);
        let merged = outcome.merged.expect("full merge");
        assert_eq!(
            merged.result().expect("complete"),
            run_scenario(&config.scenario).expect("direct")
        );
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_are_dropped_and_reexecuted_on_resume() {
        let config = test_config("ckpt_corrupt");
        run(&config).expect("first campaign");
        let ckpt = checkpoint_path(&config.run_dir, ShardSpec { index: 1, count: 3 });
        std::fs::write(&ckpt, "{ definitely not an archive").unwrap();
        let outcome = run(&config).expect("resumed campaign");
        let shard1 = &outcome.report.shard_reports[1];
        assert!(
            !shard1.from_checkpoint,
            "corrupt checkpoint must not resume"
        );
        assert!(shard1.completed);
        assert_eq!(
            outcome.merged.expect("merge").result().expect("complete"),
            run_scenario(&config.scenario).expect("direct")
        );
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }

    #[test]
    fn run_dir_pinned_to_another_scenario_is_refused() {
        let config = test_config("pin");
        run(&config).expect("first campaign");
        let mut other = config.clone();
        other.scenario.master_seed ^= 0xBAD;
        match run(&other) {
            Err(CoordError::Config(detail)) => {
                assert!(detail.contains("different scenario"), "{detail}")
            }
            other => panic!("expected a config refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }

    #[test]
    fn missing_worker_binary_fails_cleanly_not_panics() {
        let mut config = test_config("nobin");
        config.max_attempts = 2;
        config.workers = WorkerMode::Process {
            figures_bin: PathBuf::from("/nonexistent/figures"),
        };
        let outcome = run(&config).expect("campaign completes with failures");
        assert_eq!(outcome.report.failed, vec![0, 1, 2]);
        assert!(outcome.merged.is_none());
        for shard in &outcome.report.shard_reports {
            assert!(shard
                .attempts
                .iter()
                .all(|a| a.outcome == AttemptOutcome::SpawnFailed));
        }
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }

    #[test]
    fn fault_plans_roundtrip_and_sample_deterministically() {
        let plan = FaultPlan::sampled(42, 5, 3, 0.7, true);
        assert_eq!(plan, FaultPlan::sampled(42, 5, 3, 0.7, true));
        assert_ne!(plan, FaultPlan::sampled(43, 5, 3, 0.7, true));
        assert!(!plan.is_empty(), "intensity 0.7 over 10 slots");
        // No rule ever touches a shard's final attempt.
        assert!(plan.rules.iter().all(|rule| rule.attempt < 3));
        let text = serde_json::to_string(&plan).expect("serializable");
        let reloaded: FaultPlan = serde_json::from_str(&text).expect("roundtrip");
        assert_eq!(reloaded, plan);
        assert!(FaultPlan::sampled(7, 4, 3, 0.0, true).is_empty());
        assert!(FaultPlan::sampled(7, 4, 3, 0.9, false)
            .rules
            .iter()
            .all(|rule| rule.kind != FaultKind::Stall));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let config = RunConfig::new(tiny(), 3, fresh_dir("backoff"));
        for shard in 0..3 {
            for attempt in 1..=6 {
                let ms = config.backoff_ms(shard, attempt);
                assert_eq!(ms, config.backoff_ms(shard, attempt), "deterministic");
                let base = (config.backoff_base_ms << (attempt - 1)).min(30_000);
                assert!(ms >= base && ms <= base + base / 2, "jitter in [0, 50%]");
            }
        }
        // Exponential growth between consecutive attempts (below the cap).
        assert!(config.backoff_ms(0, 2) > config.backoff_ms(0, 1) / 2 * 2 - 1);
        let mut off = config;
        off.backoff_base_ms = 0;
        assert_eq!(off.backoff_ms(0, 5), 0);
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let mut config = test_config("report");
        config.fault_plan = FaultPlan {
            rules: vec![FaultRule {
                shard: 0,
                attempt: 1,
                kind: FaultKind::Crash { after_items: 0 },
            }],
        };
        let outcome = run(&config).expect("campaign");
        let text = serde_json::to_string_pretty(&outcome.report).expect("serializable");
        let reloaded: RunReport = serde_json::from_str(&text).expect("roundtrip");
        assert_eq!(reloaded, outcome.report);
        std::fs::remove_dir_all(&config.run_dir).unwrap();
    }
}
