//! Regenerates **Fig. 6(b)** of the paper: the relative increase in
//! *connected-mode* uptime (random access + waiting for the multicast +
//! reception) of each grouping mechanism compared to unicast, for the three
//! firmware sizes the paper evaluates (100 kB, 1 MB, 10 MB).
//!
//! Expected shape (paper): DR-SC and DR-SI sit slightly above unicast
//! (devices wait TI/2 on average for the transmission to start); DA-SC is
//! highest (it additionally runs a full page → random access → reconfigure
//! → release round for every adapted device); and all three increases
//! shrink as the payload grows, becoming practically negligible at and
//! above 1 MB.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin fig6b -- --runs 100 --devices 500
//! ```

use nbiot_bench::{pct, render_table, FigureOpts};
use nbiot_grouping::MechanismKind;
use nbiot_phy::DataSize;
use nbiot_sim::{run_comparison, ExperimentConfig};

fn main() {
    let opts = FigureOpts::from_args();
    let payloads = [
        ("100kB", DataSize::from_kb(100)),
        ("1MB", DataSize::from_mb(1)),
        ("10MB", DataSize::from_mb(10)),
    ];

    let mut json_out = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, payload) in payloads {
        let mut config = ExperimentConfig::default();
        opts.apply(&mut config);
        config.sim = config.sim.with_payload(payload);
        let cmp = run_comparison(&config, &MechanismKind::PAPER_MECHANISMS)
            .expect("fig6b comparison failed");
        for m in &cmp.mechanisms {
            rows.push(vec![
                label.to_string(),
                m.mechanism.clone(),
                pct(m.rel_connected.mean),
                pct(m.rel_connected.ci95),
                format!("{:.1}", m.mean_wait_s.mean),
            ]);
        }
        json_out.push((label, cmp));
    }

    if opts.json {
        let value: Vec<_> = json_out
            .iter()
            .map(|(label, cmp)| serde_json::json!({ "payload": label, "comparison": cmp }))
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("serializable")
        );
        return;
    }

    println!("Fig. 6(b) — relative connected-mode uptime increase vs unicast");
    println!(
        "(mix: ericsson-city, {} devices, {} runs, TI = 10 s)\n",
        opts.devices, opts.runs
    );
    println!(
        "{}",
        render_table(
            &[
                "payload",
                "mechanism",
                "connected increase",
                "±95%CI",
                "mean wait (s)"
            ],
            &rows
        )
    );
    println!("paper: DA-SC highest; all shrink with payload; negligible ≥ 1MB");
}
