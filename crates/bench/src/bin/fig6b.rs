//! Compat shim for **Fig. 6(b)** of the paper: the relative increase in
//! *connected-mode* uptime (random access + waiting for the multicast +
//! reception) of each grouping mechanism compared to unicast, for the three
//! firmware sizes the paper evaluates (100 kB, 1 MB, 10 MB). Equivalent to
//! `figures --scenario fig6b`; within each run the population and every
//! mechanism's plan are shared across the three payload columns.
//!
//! Expected shape (paper): DR-SC and DR-SI sit slightly above unicast
//! (devices wait TI/2 on average for the transmission to start); DA-SC is
//! highest (it additionally runs a full page → random access → reconfigure
//! → release round for every adapted device); and all three increases
//! shrink as the payload grows, becoming practically negligible at and
//! above 1 MB.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin fig6b -- --runs 100 --devices 500
//! ```

use nbiot_bench::{scenarios, FigureOpts};
use nbiot_sim::{run_scenario, Scenario};

fn main() {
    let opts = FigureOpts::from_args();
    let mut scenario = Scenario::builtin("fig6b").expect("registered scenario");
    opts.apply_to_scenario(&mut scenario);
    let result = run_scenario(&scenario).expect("fig6b comparison failed");

    if opts.json {
        // The historical shape: one {payload, comparison} entry per size.
        let value: Vec<_> = result
            .points
            .iter()
            .map(|p| {
                serde_json::json!({ "payload": p.payload.to_string(), "comparison": p.comparison })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("serializable")
        );
        return;
    }

    println!("Fig. 6(b) — relative connected-mode uptime increase vs unicast");
    println!("{}\n", scenarios::caption(&scenario));
    println!("{}", scenarios::render_connected(&scenario, &result));
    println!("paper: DA-SC highest; all shrink with payload; negligible ≥ 1MB");
}
