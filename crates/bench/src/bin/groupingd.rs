//! Long-lived grouping service driver: replays an event log through
//! `nbiot-service`, serving multicast plans and writing restorable
//! snapshots.
//!
//! ```text
//! groupingd --synth --mix mobility-churn --devices 100 --epochs 5 \
//!           --mechanism dr-sc --seed 7 --emit-events events.json
//! groupingd --events events.json --policy repair --seed 7
//! groupingd --events events.json --snapshot-every 40 --snapshot-out snap.json
//! groupingd --events events.json --restore snap.json
//! ```
//!
//! Stdout is a deterministic JSONL transcript: one line per served
//! campaign plus a final summary line — bit-identical for a given
//! (config, event log), across restarts from any snapshot, and for every
//! `--threads` setting, which is what the `service-smoke` CI stage
//! diffs. Exit codes: `0` success, `1` runtime failures (corrupt
//! logs/snapshots, foreign fingerprints, planning errors), `2` usage.

use nbiot_bench::{fail, fail_usage, OrFail};
use nbiot_service::{Applied, EventLog, GroupingService, ServiceConfig, ServiceSnapshot};
use nbiot_sim::RegroupPolicy;
use nbiot_traffic::{ChurnModel, TrafficMix};
use serde_json::json;

fn usage() -> ! {
    eprintln!(
        "usage: groupingd --events <log.json> [--policy <never|every-epoch|staleness:T|repair>]\n\
         \x20      [--seed N] [--threads N] [--snapshot-every N] [--snapshot-out PATH]\n\
         \x20      [--restore PATH]\n\
         \x20  or: groupingd --synth --emit-events PATH [--mix NAME] [--devices N] [--epochs N]\n\
         \x20      [--mechanism NAME] [--seed N] [--departure-rate F] [--arrival-rate F]\n\
         \x20      [--handover-rate F]\n\
         replays an epoch-stamped event log through the nbiot-service engine: fleet\n\
         changes fold incrementally, campaign requests serve plans under --policy\n\
         (default repair), and every served plan prints as one JSONL line followed by\n\
         a final summary line. --snapshot-every N writes a restorable checkpoint to\n\
         --snapshot-out after every N records (and at the log's snapshot marks);\n\
         --restore resumes from a checkpoint and continues bit-identically to an\n\
         uninterrupted run. --synth deterministically generates a churned event log\n\
         (--devices fleet over --epochs epochs of the churn model) to --emit-events.\n\
         exit codes: 0 success, 1 runtime failure, 2 usage"
    );
    std::process::exit(0);
}

fn main() {
    let mut events_path: Option<String> = None;
    let mut policy = String::from("repair");
    let mut seed = 0u64;
    let mut threads = 1usize;
    let mut snapshot_every: Option<u64> = None;
    let mut snapshot_out: Option<String> = None;
    let mut restore: Option<String> = None;
    let mut synth = false;
    let mut emit_events: Option<String> = None;
    let mut mix_name = String::from("mobility-churn");
    let mut devices = 100usize;
    let mut epochs = 5u32;
    let mut mechanism = String::from("dr-sc");
    let mut departure_rate = 0.1f64;
    let mut arrival_rate = 0.1f64;
    let mut handover_rate = 0.2f64;

    let mut args = std::env::args().skip(1);
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next()
            .unwrap_or_else(|| fail_usage(format!("{flag} needs a value; try --help")))
    }
    fn parsed<T: core::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
        value(args, flag)
            .parse()
            .unwrap_or_else(|_| fail_usage(format!("{flag} needs a valid number; try --help")))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => events_path = Some(value(&mut args, "--events")),
            "--policy" => policy = value(&mut args, "--policy"),
            "--seed" => seed = parsed(&mut args, "--seed"),
            "--threads" => threads = parsed(&mut args, "--threads"),
            "--snapshot-every" => snapshot_every = Some(parsed(&mut args, "--snapshot-every")),
            "--snapshot-out" => snapshot_out = Some(value(&mut args, "--snapshot-out")),
            "--restore" => restore = Some(value(&mut args, "--restore")),
            "--synth" => synth = true,
            "--emit-events" => emit_events = Some(value(&mut args, "--emit-events")),
            "--mix" => mix_name = value(&mut args, "--mix"),
            "--devices" => devices = parsed(&mut args, "--devices"),
            "--epochs" => epochs = parsed(&mut args, "--epochs"),
            "--mechanism" => mechanism = value(&mut args, "--mechanism"),
            "--departure-rate" => departure_rate = parsed(&mut args, "--departure-rate"),
            "--arrival-rate" => arrival_rate = parsed(&mut args, "--arrival-rate"),
            "--handover-rate" => handover_rate = parsed(&mut args, "--handover-rate"),
            "--help" | "-h" => usage(),
            other => fail_usage(format!("unknown flag `{other}`; try --help")),
        }
    }

    if synth {
        let out = emit_events
            .unwrap_or_else(|| fail_usage("--synth needs --emit-events (where does the log go?)"));
        let mix = TrafficMix::by_name(&mix_name)
            .unwrap_or_else(|| fail_usage(format!("unknown mix `{mix_name}`")));
        let model = ChurnModel {
            epochs,
            departure_rate,
            arrival_rate,
            handover_rate,
        };
        let log = EventLog::synthesize(&mix, devices, &model, &mechanism, seed).or_fail();
        std::fs::write(&out, log.to_json_pretty())
            .unwrap_or_else(|e| fail(format!("cannot write event log `{out}`: {e}")));
        eprintln!(
            "groupingd: synthesized {} records ({} campaigns) -> {out}",
            log.records.len(),
            log.campaign_count()
        );
        return;
    }

    let events_path = events_path.unwrap_or_else(|| fail_usage("--events is required; try --help"));
    if snapshot_every.is_some() && snapshot_out.is_none() {
        fail_usage("--snapshot-every needs --snapshot-out (where do snapshots go?)");
    }
    let policy = RegroupPolicy::by_name(&policy).unwrap_or_else(|| {
        fail_usage(format!(
            "unknown policy `{policy}` (expected never, every-epoch, staleness:T or repair)"
        ))
    });
    let config = ServiceConfig {
        policy,
        seed,
        threads,
        ..ServiceConfig::default()
    };

    let text = std::fs::read_to_string(&events_path)
        .unwrap_or_else(|e| fail(format!("cannot read event log `{events_path}`: {e}")));
    let log = EventLog::from_json(&text).or_fail();

    let mut service = match &restore {
        None => GroupingService::new(config, &log).or_fail(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read snapshot `{path}`: {e}")));
            let snapshot = ServiceSnapshot::from_json(&text).or_fail();
            let expected =
                nbiot_service::service_fingerprint(&config, &log.mix_name, &log.class_names);
            snapshot.expect_fingerprint(expected).or_fail();
            GroupingService::restore(&snapshot).or_fail()
        }
    };

    let start = usize::try_from(service.next_record()).unwrap_or(usize::MAX);
    if start > log.records.len() {
        fail(format!(
            "snapshot is ahead of the event log ({} records consumed, log has {})",
            start,
            log.records.len()
        ));
    }
    let mut since_snapshot = 0u64;
    for record in log.records.iter().skip(start) {
        let applied = service.apply(record).or_fail();
        let mut write_snapshot = false;
        match applied {
            Applied::Fleet => {}
            Applied::Served(summary) => {
                println!(
                    "{}",
                    serde_json::to_string(&summary).expect("summaries always serialize")
                );
            }
            Applied::SnapshotRequested => write_snapshot = snapshot_out.is_some(),
        }
        since_snapshot += 1;
        if let Some(every) = snapshot_every {
            if every > 0 && since_snapshot >= every {
                write_snapshot = snapshot_out.is_some();
            }
        }
        if write_snapshot {
            let out = snapshot_out.as_deref().expect("checked above");
            std::fs::write(out, service.snapshot().to_json_pretty())
                .unwrap_or_else(|e| fail(format!("cannot write snapshot `{out}`: {e}")));
            since_snapshot = 0;
        }
    }
    println!(
        "{}",
        serde_json::to_string(&json!({
            "records": service.next_record(),
            "serves": service.serves(),
            "epoch": service.epoch(),
            "fleet": service.fleet().len(),
            "policy": policy.name(),
            "mechanism": service.plan_mechanism().unwrap_or("none"),
            "fingerprint": format!("{:#018x}", service.fingerprint()),
        }))
        .expect("summary always serializes")
    );
}
