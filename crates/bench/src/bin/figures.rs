//! The one figure driver: executes any named or file-loaded [`Scenario`]
//! through the shared (point × run) scheduler and renders the figure
//! tables with captions derived from the actual configuration.
//!
//! ```text
//! figures --scenario fig6b                     # built-in, paper settings
//! figures --scenario fig7 --runs 20 --threads 4
//! figures --scenario clustered --mix bursty-alarm
//! figures --scenario my_study.toml --json      # file-loaded (.toml/.json)
//! figures --scenario fig6a --dump toml         # print an editable template
//! figures --scenario fig6a --emit-archive full.json        # result archive
//! figures --scenario fig6a --shard 0/3 --emit-archive s0.json  # one shard
//! figures --list                               # registry + mixes
//! ```
//!
//! Shared flags (`--runs --devices --seed --threads --mix --json`)
//! override the scenario's own values only when explicitly passed;
//! `--mechanisms DR-SC,DA-SC` replaces the mechanism set. Results are
//! bit-identical for every `--threads` setting.
//!
//! `--shard i/N` executes only the i-th (zero-based) of N deterministic
//! partitions of the (point × run) item pool and requires
//! `--emit-archive`; `scenario_merge` reassembles the N partial archives
//! into a result bit-identical to the unsharded run, and `scenario_diff`
//! compares two archives.

use nbiot_bench::{fail, fail_usage, scenarios, FigureOpts, OrFail};
use nbiot_grouping::MechanismKind;
use nbiot_sim::{run_scenario_shard, Scenario, ShardSpec};
use nbiot_traffic::TrafficMix;

fn main() {
    // Split driver-private flags off before the shared parser (which
    // rejects unknown flags) sees the argument list.
    let mut scenario_spec: Option<String> = None;
    let mut mechanisms: Option<Vec<MechanismKind>> = None;
    let mut dump: Option<String> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut emit_archive: Option<String> = None;
    let mut shared_args = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                scenario_spec =
                    Some(args.next().unwrap_or_else(|| {
                        fail_usage("--scenario needs a name or .json/.toml path")
                    }))
            }
            "--shard" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--shard needs index/count, e.g. 0/3"));
                shard = Some(
                    spec.parse()
                        .unwrap_or_else(|e| fail_usage(format!("bad --shard: {e}"))),
                );
            }
            "--emit-archive" => {
                emit_archive = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--emit-archive needs a path")),
                );
            }
            "--mechanisms" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--mechanisms needs a comma-separated set"));
                mechanisms = Some(MechanismKind::parse_set(&list).unwrap_or_else(|bad| {
                    fail_usage(format!(
                        "unknown mechanism `{bad}`; known: {}",
                        MechanismKind::ALL.map(|k| k.to_string()).join(", ")
                    ))
                }));
            }
            "--dump" => {
                dump = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--dump needs a format: json or toml")),
                )
            }
            "--list" => {
                println!("built-in scenarios:");
                for name in Scenario::REGISTRY {
                    let s = Scenario::builtin(name).expect("registered");
                    println!("  {name:<16} {}", s.description);
                }
                println!(
                    "\nregistered traffic mixes (for --mix): {}",
                    TrafficMix::REGISTRY.join(", ")
                );
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures --scenario <name|path.json|path.toml> \
                     [--runs N] [--devices N] [--seed N] [--threads N] [--mix NAME]\n\
                     \x20      [--mechanisms A,B,...] [--json] [--dump json|toml]\n\
                     \x20      [--shard i/N --emit-archive PATH] [--emit-archive PATH] | --list\n\
                     built-in scenarios: {}",
                    Scenario::REGISTRY.join(", ")
                );
                return;
            }
            other => shared_args.push(other.to_string()),
        }
    }
    let opts = FigureOpts::parse(shared_args.into_iter());
    let spec = scenario_spec
        .unwrap_or_else(|| fail_usage("--scenario is required (try --list or --help)"));
    let mut scenario = scenarios::load_scenario(&spec).or_fail();
    opts.apply_to_scenario(&mut scenario);
    if let Some(kinds) = mechanisms {
        scenario.mechanisms = kinds;
    }

    if let Some(format) = dump {
        let value = serde_json::to_value(&scenario);
        match format.as_str() {
            "json" => println!(
                "{}",
                serde_json::to_string_pretty(&scenario).expect("serializable")
            ),
            "toml" => println!(
                "{}",
                nbiot_bench::toml_lite::to_toml(&value).expect("TOML-writable")
            ),
            other => fail_usage(format!("unknown dump format `{other}`; use json or toml")),
        }
        return;
    }

    if shard.is_some() || emit_archive.is_some() {
        // Archives record every (point × run × mechanism) outcome; at the
        // massive-n scale tier that is gigabytes of per-run state nobody
        // can diff or merge. Refuse early, before any simulation runs.
        if let Some(&largest) = scenario.devices.iter().max() {
            if largest > scenarios::ARCHIVE_DEVICE_LIMIT {
                fail_usage(format!(
                    "--emit-archive refused: scenario `{}` has a {largest}-device point, above \
                     the {}-device archive limit; run without --emit-archive for summary output \
                     or cap the grid with --devices <= {}",
                    scenario.name,
                    scenarios::ARCHIVE_DEVICE_LIMIT,
                    scenarios::ARCHIVE_DEVICE_LIMIT
                ));
            }
        }
        let shard = shard.unwrap_or(ShardSpec::FULL);
        let path = emit_archive.unwrap_or_else(|| {
            fail_usage("--shard needs --emit-archive <path>: a partial grid cannot be rendered")
        });
        let archive = run_scenario_shard(&scenario, shard)
            .unwrap_or_else(|e| fail(format!("scenario execution failed: {e}")));
        scenarios::write_archive(&path, &archive).or_fail();
        if archive.is_complete() {
            // A 1/1 archive is a whole run: render it like a normal run.
            let result = archive.result().expect("complete archive folds");
            if opts.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&result).expect("serializable")
                );
            } else {
                println!("{}", scenarios::render_report(&scenario, &result));
            }
        }
        eprintln!(
            "figures: shard {} of scenario {} ({} of {} items) -> {path}",
            archive.shard,
            scenario.name,
            archive.items.len(),
            archive.total_items(),
        );
        return;
    }

    scenarios::run_and_print(&scenario, opts.json);
}
