//! Compares two full [`ScenarioArchive`]s mechanism-by-mechanism and
//! point-by-point, exiting nonzero when any metric moves beyond tolerance
//! — the CI regression gate of the shard/merge/diff workflow.
//!
//! ```text
//! scenario_diff baseline.json candidate.json             # exact equality
//! scenario_diff --rel-tol 0.02 baseline.json candidate.json
//! scenario_diff --abs-tol 1e-9 --json a.json b.json      # machine report
//! ```
//!
//! Both tolerances default to **zero** (bit-exact equality), which is how
//! `ci.sh --stage shard-smoke` proves that a 3-way sharded run merges back
//! to the single-host result. Partial archives are refused: merge shards
//! with `scenario_merge` first.
//!
//! Exit status: 0 when the archives agree within tolerance, 1 otherwise
//! (including structural mismatches: missing points/mechanisms, differing
//! run counts, compliance flips).

use nbiot_bench::diff::{diff_results, diff_to_json, render_diff, DiffTolerance};
use nbiot_bench::{fail, fail_usage, scenarios, OrFail};
use nbiot_sim::ScenarioResult;

fn load_result(path: &str) -> ScenarioResult {
    let archive = scenarios::load_archive(path).or_fail();
    archive.result().unwrap_or_else(|e| {
        fail(format!(
            "`{path}`: {e} (merge partial shards with scenario_merge first)"
        ))
    })
}

fn main() {
    let mut tolerance = DiffTolerance::default();
    let mut json = false;
    let mut structural_only = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--abs-tol" => {
                tolerance.abs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail_usage("--abs-tol needs a number"));
            }
            "--rel-tol" => {
                tolerance.rel = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    fail_usage("--rel-tol needs a number (fraction of the baseline)")
                });
            }
            "--json" => json = true,
            "--structural-only" => structural_only = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scenario_diff [--abs-tol X] [--rel-tol X] [--json] \
                     [--structural-only] <baseline.json> <candidate.json>\n\
                     compares two full scenario archives; default tolerances are zero\n\
                     (bit-exact); exits 1 on any delta beyond tolerance\n\
                     --structural-only: metric deltas are report-only — exit 1 only on\n\
                     shape mismatches (missing points/mechanisms, run counts, compliance)"
                );
                return;
            }
            flag if flag.starts_with("--") => {
                fail_usage(format!("unknown flag {flag}; try --help"))
            }
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        fail_usage(format!(
            "scenario_diff needs exactly a baseline and a candidate archive (got {}); try --help",
            paths.len()
        ));
    };

    let baseline = load_result(baseline_path);
    let candidate = load_result(candidate_path);
    let report = diff_results(&baseline, &candidate, tolerance);

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&diff_to_json(&report)).expect("serializable")
        );
    } else {
        print!("{}", render_diff(&report));
    }
    // Base-vs-PR artifact diffs run with --structural-only: two archives
    // built from different code revisions are *expected* to drift on
    // metrics (that drift is the report's payload), but a shape mismatch
    // means the candidate no longer measures what the base measured.
    let failed = if structural_only {
        if !report.structural.is_empty() {
            true
        } else {
            if !report.violations.is_empty() {
                eprintln!(
                    "scenario_diff: {} metric delta(s) beyond tolerance (report-only \
                     under --structural-only)",
                    report.violations.len()
                );
            }
            false
        }
    } else {
        !report.ok()
    };
    if failed {
        std::process::exit(1);
    }
}
