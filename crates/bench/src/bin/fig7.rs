//! Compat shim for **Fig. 7** of the paper: the average number of multicast
//! transmissions DR-SC needs to update all devices, as the group size grows
//! from 100 to 1000 (averaged over `--runs` repetitions). Equivalent to
//! `figures --scenario fig7`; the whole sweep executes as one scheduler
//! grid, so `--threads` workers span every (size × run) pair at once.
//!
//! Expected shape (paper): around 50 % of the number of devices for small
//! groups, falling to around 40 % at 1000 devices — i.e. DR-SC is only
//! modestly more bandwidth-efficient than plain unicast.
//!
//! An extra column shows the fluid-model prediction
//! ([`nbiot_grouping::analysis`]) next to the simulated mean — the
//! "analytical" half of the evaluation.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin fig7 -- --runs 100
//! ```

use nbiot_bench::{scenarios, FigureOpts};
use nbiot_sim::{run_scenario, Scenario};

fn main() {
    let opts = FigureOpts::from_args();
    let mut scenario = Scenario::builtin("fig7").expect("registered scenario");
    opts.apply_to_scenario(&mut scenario);
    let result = run_scenario(&scenario).expect("fig7 sweep failed");

    if opts.json {
        // The historical shape: one {point, fluid_estimate} entry per size.
        let estimates = scenarios::fluid_estimates(&scenario);
        let value: Vec<_> = result
            .points
            .iter()
            .zip(&estimates)
            .map(|(p, est)| {
                let point = serde_json::json!({
                    "n_devices": p.n_devices,
                    "transmissions": p.comparison.mechanisms[0].transmissions,
                    "ratio_to_devices": p.comparison.mechanisms[0].transmissions_ratio,
                });
                serde_json::json!({ "point": point, "fluid_estimate": est })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("serializable")
        );
        return;
    }

    println!("Fig. 7 — DR-SC multicast transmissions vs group size");
    println!("{}\n", scenarios::caption(&scenario));
    println!("{}", scenarios::render_transmissions(&scenario, &result));
    println!("paper: ratio ≈ 50% at small N, falling to ≈ 40% at N = 1000");
}
