//! Regenerates **Fig. 7** of the paper: the average number of multicast
//! transmissions DR-SC needs to update all devices, as the group size grows
//! from 100 to 1000 (averaged over `--runs` repetitions).
//!
//! Expected shape (paper): around 50 % of the number of devices for small
//! groups, falling to around 40 % at 1000 devices — i.e. DR-SC is only
//! modestly more bandwidth-efficient than plain unicast.
//!
//! An extra column shows the fluid-model prediction
//! ([`nbiot_grouping::analysis`]) next to the simulated mean — the
//! "analytical" half of the evaluation.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin fig7 -- --runs 100
//! ```

use nbiot_bench::{render_table, FigureOpts};
use nbiot_des::SeedSequence;
use nbiot_grouping::{analysis, GroupingInput, MechanismKind};
use nbiot_sim::{sweep_devices, ExperimentConfig};

fn main() {
    let opts = FigureOpts::from_args();
    let mut config = ExperimentConfig::default();
    opts.apply(&mut config);
    let sizes: Vec<usize> = (1..=10).map(|k| k * 100).collect();
    let points = sweep_devices(&config, MechanismKind::DrSc, &sizes).expect("fig7 sweep failed");

    // Fluid-model prediction on a representative population per size.
    let seq = SeedSequence::new(config.master_seed);
    let estimates: Vec<f64> = sizes
        .iter()
        .map(|&n| {
            let pop = config
                .mix
                .generate(n, &mut seq.child(0).rng(0))
                .expect("population");
            let input = GroupingInput::from_population(&pop, config.grouping).expect("input");
            analysis::estimate_dr_sc_transmissions(&input).transmissions
        })
        .collect();

    if opts.json {
        let value: Vec<_> = points
            .iter()
            .zip(&estimates)
            .map(|(p, est)| serde_json::json!({ "point": p, "fluid_estimate": est }))
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("serializable")
        );
        return;
    }

    println!("Fig. 7 — DR-SC multicast transmissions vs group size");
    println!(
        "(mix: ericsson-city, TI = 10 s, {} runs, seed {:#x})\n",
        opts.runs, opts.seed
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .zip(&estimates)
        .map(|(p, est)| {
            vec![
                p.n_devices.to_string(),
                format!("{:.1}", p.transmissions.mean),
                format!("{:.1}", p.transmissions.ci95),
                format!("{:.1}%", p.ratio_to_devices.mean * 100.0),
                format!("{est:.1}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "devices",
                "transmissions",
                "±95%CI",
                "ratio to devices",
                "fluid model"
            ],
            &rows
        )
    );
    println!("paper: ratio ≈ 50% at small N, falling to ≈ 40% at N = 1000");
}
