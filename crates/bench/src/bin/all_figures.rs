//! Compat shim regenerating every figure of the paper's evaluation section
//! in one go (Fig. 6(a), Fig. 6(b), Fig. 7), printing the same tables as
//! the individual binaries. Used to produce EXPERIMENTS.md. Equivalent to
//! running `figures --scenario paper-suite` plus `figures --scenario fig7`
//! — Fig. 6(a) and 6(b) come out of *one* scenario grid, sharing each
//! run's population and plans across the payload columns.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin all_figures -- --runs 100
//! ```

use nbiot_bench::{scenarios, FigureOpts};
use nbiot_sim::{run_scenario, Scenario};

fn main() {
    let opts = FigureOpts::from_args();

    // Fig. 6(a) + 6(b): one grid over the three payload sizes; the 100 kB
    // column doubles as Fig. 6(a).
    let mut suite = Scenario::builtin("paper-suite").expect("registered scenario");
    opts.apply_to_scenario(&mut suite);
    let result = run_scenario(&suite).expect("paper-suite comparison failed");

    println!("==== Fig. 6(a): relative light-sleep uptime increase vs unicast ====");
    println!("{}\n", scenarios::caption(&suite));
    let fig6a_view = Scenario {
        payloads: vec![suite.payloads[0]],
        ..suite.clone()
    };
    let fig6a_points = nbiot_sim::ScenarioResult {
        points: result
            .payload_column(suite.payloads[0])
            .into_iter()
            .cloned()
            .collect(),
        ..result.clone()
    };
    println!(
        "{}",
        scenarios::render_light_sleep(&fig6a_view, &fig6a_points)
    );

    println!("==== Fig. 6(b): relative connected-mode uptime increase vs unicast ====");
    println!("{}\n", scenarios::caption(&suite));
    println!("{}", scenarios::render_connected(&suite, &result));

    // Fig. 7: the device sweep.
    let mut fig7 = Scenario::builtin("fig7").expect("registered scenario");
    opts.apply_to_scenario(&mut fig7);
    let sweep = run_scenario(&fig7).expect("fig7 sweep failed");
    println!("==== Fig. 7: DR-SC multicast transmissions vs group size ====");
    println!("{}\n", scenarios::caption(&fig7));
    println!("{}", scenarios::render_transmissions(&fig7, &sweep));
}
