//! Regenerates every figure of the paper's evaluation section in one go
//! (Fig. 6(a), Fig. 6(b), Fig. 7), printing the same tables as the
//! individual binaries. Used to produce EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin all_figures -- --runs 100
//! ```

use nbiot_bench::{pct, render_table, FigureOpts};
use nbiot_grouping::MechanismKind;
use nbiot_phy::DataSize;
use nbiot_sim::{run_comparison, sweep_devices, ExperimentConfig};

fn main() {
    let opts = FigureOpts::from_args();
    let mut base = ExperimentConfig::default();
    opts.apply(&mut base);

    // ---------- Fig. 6(a) ----------
    let cmp =
        run_comparison(&base, &MechanismKind::PAPER_MECHANISMS).expect("fig6a comparison failed");
    println!("==== Fig. 6(a): relative light-sleep uptime increase vs unicast ====");
    println!(
        "(mix: ericsson-city, {} devices, {} runs, TI = 10 s)\n",
        opts.devices, opts.runs
    );
    let rows: Vec<Vec<String>> = cmp
        .mechanisms
        .iter()
        .map(|m| {
            vec![
                m.mechanism.clone(),
                pct(m.rel_light_sleep.mean),
                pct(m.rel_light_sleep.ci95),
                if m.standards_compliant { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["mechanism", "light-sleep increase", "±95%CI", "compliant"],
            &rows
        )
    );

    // ---------- Fig. 6(b) ----------
    println!("==== Fig. 6(b): relative connected-mode uptime increase vs unicast ====");
    println!(
        "(mix: ericsson-city, {} devices, {} runs, TI = 10 s)\n",
        opts.devices, opts.runs
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, payload) in [
        ("100kB", DataSize::from_kb(100)),
        ("1MB", DataSize::from_mb(1)),
        ("10MB", DataSize::from_mb(10)),
    ] {
        let mut config = base.clone();
        config.sim = config.sim.with_payload(payload);
        let cmp = run_comparison(&config, &MechanismKind::PAPER_MECHANISMS)
            .expect("fig6b comparison failed");
        for m in &cmp.mechanisms {
            rows.push(vec![
                label.to_string(),
                m.mechanism.clone(),
                pct(m.rel_connected.mean),
                pct(m.rel_connected.ci95),
                format!("{:.1}", m.mean_wait_s.mean),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "payload",
                "mechanism",
                "connected increase",
                "±95%CI",
                "mean wait (s)"
            ],
            &rows
        )
    );

    // ---------- Fig. 7 ----------
    println!("==== Fig. 7: DR-SC multicast transmissions vs group size ====");
    println!("(mix: ericsson-city, TI = 10 s, {} runs)\n", opts.runs);
    let sizes: Vec<usize> = (1..=10).map(|k| k * 100).collect();
    let points = sweep_devices(&base, MechanismKind::DrSc, &sizes).expect("fig7 sweep failed");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n_devices.to_string(),
                format!("{:.1}", p.transmissions.mean),
                format!("{:.1}", p.transmissions.ci95),
                format!("{:.1}%", p.ratio_to_devices.mean * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["devices", "transmissions", "±95%CI", "ratio to devices"],
            &rows
        )
    );
}
