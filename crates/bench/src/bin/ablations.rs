//! Beyond-paper sensitivity studies (the "design choices" index of
//! DESIGN.md):
//!
//! 1. **TI sweep** — how the inactivity-timer length moves the DR-SC
//!    transmission count and the DA-SC/DR-SI waiting overhead,
//! 2. **DR-SI notification policy** — last-PO-before-window (default) vs
//!    first-PO-after-start,
//! 3. **DA-SC adaptation grid** — paper-style anchored grid vs the
//!    standard TS 36.304 formula,
//! 4. **RACH contention** — connected-uptime inflation when random access
//!    collides,
//! 5. **SC-PTM baseline** — the light-sleep cost of periodic SC-MCCH
//!    monitoring that motivated the on-demand scheme in the first place,
//! 6. **paging density `nB`** — coalescing paging frames aligns device POs
//!    within a frame; a negative result for eDRX-heavy mixes (diversity
//!    lives in the paging-hyperframe phase),
//! 7. **channel serialization** — the cost of the single NB-IoT carrier
//!    when transfers must queue (ideal channel vs serialized).
//!
//! The comparison-based studies (1, 4, 5, 7) are thin shims over the
//! scenario engine — each is one [`Scenario`] variant executed by
//! [`run_scenario`], sharing populations within runs and fanning (point ×
//! run) items across `--threads` workers. The plan-level studies (2, 3, 6)
//! inspect [`MulticastPlan`](nbiot_grouping::MulticastPlan)s directly and
//! stay bespoke.
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin ablations -- --runs 20
//! ```

use nbiot_bench::{pct, render_table, FigureOpts};
use nbiot_des::{RunningStats, SeedSequence};
use nbiot_grouping::{AdaptationGrid, DaSc, DrSi, GroupingInput, MechanismKind, NotifyPolicy};
use nbiot_sim::{run_scenario, with_ti, Scenario, SimConfig};
use nbiot_time::SimDuration;

/// The ablation base point with every shared flag applied unconditionally
/// (the historical behaviour of this binary's `opts.apply`).
fn base_scenario(opts: &FigureOpts) -> Scenario {
    let mut s = Scenario {
        name: "ablation".into(),
        description: "sensitivity-study base point".into(),
        ..Scenario::default()
    };
    s.runs = opts.runs;
    s.devices = vec![opts.devices];
    s.master_seed = opts.seed;
    s.threads = opts.threads;
    if let Some(mix) = &opts.mix {
        s.mix = nbiot_bench::resolve_mix(mix);
    }
    s
}

fn main() {
    let opts = FigureOpts::from_args();
    let base = base_scenario(&opts);

    ti_sweep(&base);
    notify_policy(&base);
    adaptation_grid(&base);
    rach_contention(&base);
    scptm_cost(&base);
    nb_density(&base);
    channel_serialization(&base);
}

fn ti_sweep(base: &Scenario) {
    println!("==== Ablation 1: inactivity timer TI (paper range 10-30 s) ====\n");
    let mut rows = Vec::new();
    for ti_s in [10u64, 20, 30] {
        let scenario = with_ti(base.clone(), SimDuration::from_secs(ti_s));
        let result = run_scenario(&scenario).expect("TI sweep failed");
        for m in &result.points[0].comparison.mechanisms {
            rows.push(vec![
                format!("{ti_s}"),
                m.mechanism.clone(),
                format!("{:.1}", m.transmissions.mean),
                pct(m.rel_connected.mean),
                pct(m.rel_light_sleep.mean),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "TI (s)",
                "mechanism",
                "transmissions",
                "connected incr",
                "light-sleep incr"
            ],
            &rows
        )
    );
    println!("longer TI: fewer DR-SC transmissions, more waiting for everyone\n");
}

fn notify_policy(base: &Scenario) {
    println!("==== Ablation 2: DR-SI notification policy ====\n");
    let seq = SeedSequence::new(base.master_seed);
    let n_devices = base.devices[0];
    let mut rows = Vec::new();
    for (name, policy) in [
        ("last-before-window", NotifyPolicy::LastBeforeWindow),
        ("first-after-start", NotifyPolicy::FirstAfterStart),
    ] {
        let mut lead = RunningStats::new();
        for run in 0..base.runs {
            let run_seq = seq.child(run as u64);
            let pop = base
                .mix
                .generate(n_devices, &mut run_seq.rng(0))
                .expect("population");
            let input = GroupingInput::from_population(&pop, base.grouping).expect("input");
            let mut rng = run_seq.rng(7);
            let plan = nbiot_grouping::GroupingMechanism::plan(
                &DrSi::with_policy(policy),
                &input,
                &mut rng,
            )
            .expect("plan");
            // Mean notification lead time (time-remaining carried in the
            // extension) across notified devices.
            let leads: Vec<f64> = plan
                .device_plans
                .iter()
                .filter_map(|p| p.mltc.map(|m| m.time_remaining.as_secs_f64()))
                .collect();
            if !leads.is_empty() {
                lead.push(leads.iter().sum::<f64>() / leads.len() as f64);
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", lead.summary().mean),
            format!("{:.0}", lead.summary().ci95),
        ]);
    }
    println!(
        "{}",
        render_table(&["policy", "mean T322 lead time (s)", "±95%CI"], &rows)
    );
    println!("earlier notification = longer armed timers (same energy, more state)\n");
}

fn adaptation_grid(base: &Scenario) {
    println!("==== Ablation 3: DA-SC adaptation grid ====\n");
    let seq = SeedSequence::new(base.master_seed);
    let n_devices = base.devices[0];
    let mut rows = Vec::new();
    for (name, grid) in [
        (
            "anchored (paper Fig. 5)",
            AdaptationGrid::AnchoredAtAdaptation,
        ),
        (
            "standard TS 36.304 formula",
            AdaptationGrid::StandardFormula,
        ),
    ] {
        let mut extra_pos = RunningStats::new();
        for run in 0..base.runs {
            let run_seq = seq.child(run as u64);
            let pop = base
                .mix
                .generate(n_devices, &mut run_seq.rng(0))
                .expect("population");
            let input = GroupingInput::from_population(&pop, base.grouping).expect("input");
            let mut rng = run_seq.rng(8);
            let plan =
                nbiot_grouping::GroupingMechanism::plan(&DaSc::with_grid(grid), &input, &mut rng)
                    .expect("plan");
            let total: u64 = plan
                .device_plans
                .iter()
                .filter_map(|p| p.adaptation.map(|a| a.monitored_adapted_pos))
                .sum();
            extra_pos.push(total as f64 / n_devices as f64);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", extra_pos.summary().mean),
            format!("{:.1}", extra_pos.summary().ci95),
        ]);
    }
    println!(
        "{}",
        render_table(&["grid", "extra POs per device", "±95%CI"], &rows)
    );
    println!("the grids are near-equivalent: the cycle choice dominates, not the phase\n");
}

fn rach_contention(base: &Scenario) {
    println!("==== Ablation 4: RACH contention (DR-SI wake-up draws) ====\n");
    let mut rows = Vec::new();
    for contenders in [0u32, 10, 50, 200] {
        let scenario = Scenario {
            mechanisms: vec![MechanismKind::DrSi],
            baseline: false,
            sim: SimConfig {
                ra_contenders: contenders,
                ..base.sim
            },
            ..base.clone()
        };
        let result = run_scenario(&scenario).expect("RACH sweep failed");
        let m = &result.points[0].comparison.mechanisms[0];
        rows.push(vec![
            contenders.to_string(),
            format!("{:.2}", m.mean_connected_s.mean),
            format!("{:.2}", m.ra_failures.mean),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["contenders", "mean connected (s)", "RA failures/run"],
            &rows
        )
    );
    println!("the random T322 spread keeps contention tolerable until extreme loads\n");
}

fn scptm_cost(base: &Scenario) {
    println!("==== Ablation 5: SC-PTM baseline (why on-demand multicast exists) ====\n");
    let scenario = Scenario {
        mechanisms: vec![
            MechanismKind::ScPtm,
            MechanismKind::DrSi,
            MechanismKind::DaSc,
        ],
        ..base.clone()
    };
    let result = run_scenario(&scenario).expect("scptm comparison failed");
    let rows: Vec<Vec<String>> = result.points[0]
        .comparison
        .mechanisms
        .iter()
        .map(|m| {
            vec![
                m.mechanism.clone(),
                pct(m.rel_light_sleep.mean),
                pct(m.rel_connected.mean),
                format!("{:.1}", m.transmissions.mean),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mechanism",
                "light-sleep incr",
                "connected incr",
                "transmissions"
            ],
            &rows
        )
    );
    println!("SC-PTM pays continuous SC-MCCH monitoring; the paper's mechanisms do not");
}

fn nb_density(base: &Scenario) {
    println!("\n==== Ablation 6: paging density nB (PO alignment) ====\n");
    use nbiot_grouping::{DrSc, GroupingMechanism};
    use nbiot_time::NbParam;
    let seq = SeedSequence::new(base.master_seed);
    let n_devices = base.devices[0];
    let mut rows = Vec::new();
    for (label, nb) in [
        ("nB = T (default)", NbParam::OneT),
        ("nB = T/4", NbParam::QuarterT),
        ("nB = T/32", NbParam::ThirtySecondT),
    ] {
        let mut tx = RunningStats::new();
        for run in 0..base.runs {
            let run_seq = seq.child(run as u64);
            let pop = base
                .mix
                .generate(n_devices, &mut run_seq.rng(0))
                .expect("population");
            // Re-point every device at the swept cell-wide nB.
            let mut devices = pop.profiles();
            for d in &mut devices {
                d.paging.nb = nb;
            }
            let input = GroupingInput::from_devices(devices, base.grouping).expect("input");
            let mut rng = run_seq.rng(11);
            let plan = DrSc::new().plan(&input, &mut rng).expect("plan");
            tx.push(plan.transmission_count() as f64);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", tx.summary().mean),
            format!("{:.1}", tx.summary().ci95),
        ]);
    }
    println!(
        "{}",
        render_table(&["paging density", "DR-SC transmissions", "±95%CI"], &rows)
    );
    println!(
        "negative result: for eDRX-dominated populations PO diversity comes from\n\
         the paging-hyperframe phase, not the PF offset, so nB barely moves DR-SC"
    );
}

fn channel_serialization(base: &Scenario) {
    println!("\n==== Ablation 7: single-carrier serialization ====\n");
    let mut rows = Vec::new();
    for (label, serialize) in [
        ("ideal channel (paper)", false),
        ("serialized carrier", true),
    ] {
        let scenario = Scenario {
            mechanisms: vec![MechanismKind::Unicast, MechanismKind::DaSc],
            baseline: false,
            sim: SimConfig {
                serialize_channel: serialize,
                ..base.sim
            },
            ..base.clone()
        };
        let result = run_scenario(&scenario).expect("serialization sweep failed");
        let cmp = &result.points[0].comparison;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", cmp.mechanisms[0].mean_connected_s.mean),
            format!("{:.1}", cmp.mechanisms[1].mean_connected_s.mean),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "channel model",
                "unicast connected (s)",
                "DA-SC connected (s)"
            ],
            &rows
        )
    );
    println!("queueing on the real single carrier hits unicast hard; one multicast never queues");
}
