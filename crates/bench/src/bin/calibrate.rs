//! Internal calibration tool: sweeps candidate traffic mixes and TI values
//! to find the combination whose DR-SC transmission curve best matches the
//! paper's Fig. 7 shape (≈50 % of N at N = 100 falling to ≈40 % at
//! N = 1000). Not part of the reproduction itself; kept for transparency of
//! how the default mix was chosen (see EXPERIMENTS.md).

use nbiot_grouping::{GroupingParams, MechanismKind};
use nbiot_rrc::InactivityTimer;
use nbiot_sim::{sweep_devices, ExperimentConfig};
use nbiot_time::{DrxCycle, EdrxCycle, PagingCycle, SimDuration};
use nbiot_traffic::{ClassSpec, TrafficMix};

fn mix(name: &str, classes: Vec<(&str, f64, PagingCycle)>) -> TrafficMix {
    TrafficMix::new(
        name,
        classes
            .into_iter()
            .map(|(n, share, cycle)| ClassSpec::new(n, share, cycle, SimDuration::from_secs(3600)))
            .collect(),
    )
    .expect("valid mix")
}

fn main() {
    let e = PagingCycle::edrx;
    let candidates: Vec<(TrafficMix, u64)> = vec![
        (
            mix(
                "city-v1 (pre-calib)",
                vec![
                    ("alarm", 0.05, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.10, e(EdrxCycle::Hf8)),
                    ("parking", 0.10, e(EdrxCycle::Hf64)),
                    ("environment", 0.15, e(EdrxCycle::Hf128)),
                    ("electricity", 0.25, e(EdrxCycle::Hf256)),
                    ("water", 0.21, e(EdrxCycle::Hf512)),
                    ("gas", 0.14, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "meters-heavy",
                vec![
                    ("environment", 0.10, e(EdrxCycle::Hf128)),
                    ("electricity", 0.35, e(EdrxCycle::Hf256)),
                    ("water", 0.35, e(EdrxCycle::Hf512)),
                    ("gas", 0.20, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "meters-heavy-ti10",
                vec![
                    ("environment", 0.10, e(EdrxCycle::Hf128)),
                    ("electricity", 0.35, e(EdrxCycle::Hf256)),
                    ("water", 0.35, e(EdrxCycle::Hf512)),
                    ("gas", 0.20, e(EdrxCycle::Hf1024)),
                ],
            ),
            10,
        ),
        (
            mix(
                "long-tail",
                vec![
                    ("electricity", 0.30, e(EdrxCycle::Hf256)),
                    ("water", 0.40, e(EdrxCycle::Hf512)),
                    ("gas", 0.30, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "city-v2",
                vec![
                    ("alarm", 0.02, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("parking", 0.08, e(EdrxCycle::Hf128)),
                    ("environment", 0.15, e(EdrxCycle::Hf256)),
                    ("electricity", 0.30, e(EdrxCycle::Hf512)),
                    ("water", 0.30, e(EdrxCycle::Hf512)),
                    ("gas", 0.15, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "city-v3-ti10",
                vec![
                    ("alarm", 0.02, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("parking", 0.08, e(EdrxCycle::Hf64)),
                    ("environment", 0.15, e(EdrxCycle::Hf128)),
                    ("electricity", 0.25, e(EdrxCycle::Hf256)),
                    ("water", 0.30, e(EdrxCycle::Hf512)),
                    ("gas", 0.20, e(EdrxCycle::Hf1024)),
                ],
            ),
            10,
        ),
        (
            mix(
                "city-v4-bimodal",
                vec![
                    ("street-light", 0.20, e(EdrxCycle::Hf2)),
                    ("alarm", 0.07, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.15, e(EdrxCycle::Hf4)),
                    ("parking", 0.10, e(EdrxCycle::Hf4)),
                    ("environment", 0.08, e(EdrxCycle::Hf512)),
                    ("electricity", 0.18, e(EdrxCycle::Hf1024)),
                    ("water", 0.14, e(EdrxCycle::Hf1024)),
                    ("gas", 0.08, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "city-v5-bimodal",
                vec![
                    ("street-light", 0.22, e(EdrxCycle::Hf2)),
                    ("alarm", 0.08, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.12, e(EdrxCycle::Hf4)),
                    ("parking", 0.08, e(EdrxCycle::Hf8)),
                    ("environment", 0.10, e(EdrxCycle::Hf512)),
                    ("electricity", 0.20, e(EdrxCycle::Hf1024)),
                    ("water", 0.12, e(EdrxCycle::Hf1024)),
                    ("gas", 0.08, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "city-v6",
                vec![
                    ("street-light", 0.22, e(EdrxCycle::Hf2)),
                    ("alarm", 0.08, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.11, e(EdrxCycle::Hf4)),
                    ("environment", 0.04, e(EdrxCycle::Hf512)),
                    ("electricity", 0.25, e(EdrxCycle::Hf1024)),
                    ("water", 0.20, e(EdrxCycle::Hf1024)),
                    ("gas", 0.10, e(EdrxCycle::Hf1024)),
                ],
            ),
            20,
        ),
        (
            mix(
                "city-v7",
                vec![
                    ("street-light", 0.20, e(EdrxCycle::Hf2)),
                    ("alarm", 0.08, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.10, e(EdrxCycle::Hf4)),
                    ("environment", 0.06, e(EdrxCycle::Hf512)),
                    ("electricity", 0.28, e(EdrxCycle::Hf1024)),
                    ("water", 0.18, e(EdrxCycle::Hf1024)),
                    ("gas", 0.10, e(EdrxCycle::Hf1024)),
                ],
            ),
            10,
        ),
        (
            mix(
                "city-v8",
                vec![
                    ("street-light", 0.25, e(EdrxCycle::Hf2)),
                    ("alarm", 0.10, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.12, e(EdrxCycle::Hf4)),
                    ("environment", 0.04, e(EdrxCycle::Hf512)),
                    ("electricity", 0.26, e(EdrxCycle::Hf1024)),
                    ("water", 0.15, e(EdrxCycle::Hf1024)),
                    ("gas", 0.08, e(EdrxCycle::Hf1024)),
                ],
            ),
            10,
        ),
        (
            mix(
                "city-v10",
                vec![
                    ("street-light", 0.22, e(EdrxCycle::Hf2)),
                    ("alarm", 0.09, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.11, e(EdrxCycle::Hf4)),
                    ("environment", 0.05, e(EdrxCycle::Hf512)),
                    ("electricity", 0.27, e(EdrxCycle::Hf1024)),
                    ("water", 0.17, e(EdrxCycle::Hf1024)),
                    ("gas", 0.09, e(EdrxCycle::Hf1024)),
                ],
            ),
            10,
        ),
        (
            mix(
                "city-v9",
                vec![
                    ("street-light", 0.28, e(EdrxCycle::Hf2)),
                    ("alarm", 0.10, PagingCycle::Drx(DrxCycle::Rf256)),
                    ("tracker", 0.14, e(EdrxCycle::Hf4)),
                    ("environment", 0.03, e(EdrxCycle::Hf512)),
                    ("electricity", 0.25, e(EdrxCycle::Hf1024)),
                    ("water", 0.13, e(EdrxCycle::Hf1024)),
                    ("gas", 0.07, e(EdrxCycle::Hf1024)),
                ],
            ),
            10,
        ),
    ];

    let mut candidates = candidates;
    candidates.push((nbiot_traffic::TrafficMix::ericsson_city(), 10));

    for (m, ti_s) in candidates {
        let config = ExperimentConfig {
            mix: m.clone(),
            runs: 10,
            threads: 0, // calibration sweeps are embarrassingly parallel

            grouping: GroupingParams {
                ti: InactivityTimer::new(SimDuration::from_secs(ti_s)),
                ..GroupingParams::default()
            },
            ..ExperimentConfig::default()
        };
        let points = sweep_devices(&config, MechanismKind::DrSc, &[100, 300, 500, 1000])
            .expect("sweep failed");
        print!("{:<22} TI={ti_s:>2}s  ", m.name);
        for p in points {
            print!(
                "N={:<4} {:>5.1}%  ",
                p.n_devices,
                p.ratio_to_devices.mean * 100.0
            );
        }
        println!();
    }
}
