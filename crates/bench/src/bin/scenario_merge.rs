//! Reassembles partial [`ScenarioArchive`]s (written by
//! `figures --shard i/N --emit-archive`) into one full archive and renders
//! the figure tables from the merged result — which is **bit-identical**
//! to the unsharded single-host run.
//!
//! ```text
//! scenario_merge s0.json s1.json s2.json                 # tables to stdout
//! scenario_merge --out merged.json s0.json s1.json s2.json
//! scenario_merge --json --out merged.json shards/*.json  # result as JSON
//! ```
//!
//! Exits nonzero (with a clear message) on mismatched scenario
//! fingerprints, duplicate shards or missing shards — a merge can only
//! succeed on exactly the complete shard set of one scenario
//! configuration.

use nbiot_bench::scenarios;
use nbiot_sim::{merge_archives, ScenarioArchive};

fn main() {
    let mut out: Option<String> = None;
    let mut json = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scenario_merge [--out merged.json] [--json] <shard.json>...\n\
                     merges the complete shard set of one scenario run into a full archive\n\
                     and renders the figure tables (bit-identical to the unsharded run)"
                );
                return;
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}; try --help"),
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        panic!("scenario_merge needs at least one shard archive; try --help");
    }

    let archives: Vec<ScenarioArchive> = paths
        .iter()
        .map(|path| scenarios::load_archive(path).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let merged = merge_archives(&archives).unwrap_or_else(|e| panic!("merge failed: {e}"));
    let result = merged.result().expect("merged archive is complete");

    if let Some(path) = &out {
        scenarios::write_archive(path, &merged).unwrap_or_else(|e| panic!("{e}"));
        eprintln!(
            "scenario_merge: {} shards, {} items -> {path}",
            archives.len(),
            merged.items.len()
        );
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serializable")
        );
    } else {
        println!("{}", scenarios::render_report(&merged.scenario, &result));
    }
}
