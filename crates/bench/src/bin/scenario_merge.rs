//! Reassembles partial [`ScenarioArchive`]s (written by
//! `figures --shard i/N --emit-archive`) into one full archive and renders
//! the figure tables from the merged result — which is **bit-identical**
//! to the unsharded single-host run.
//!
//! ```text
//! scenario_merge s0.json s1.json s2.json                 # tables to stdout
//! scenario_merge --out merged.json s0.json s1.json s2.json
//! scenario_merge --json --out merged.json shards/*.json  # result as JSON
//! scenario_merge --partial --out part.json s0.json s2.json  # degrade
//! ```
//!
//! Exits nonzero (with a clear message) on mismatched scenario
//! fingerprints, conflicting duplicate shards or missing shards — except
//! that **byte-identical** duplicates (a retried worker re-submitting the
//! archive it already delivered) merge idempotently, and `--partial`
//! accepts missing shards by emitting a coverage-annotated degraded
//! archive (exit status 3) instead of a result.

use nbiot_bench::{fail, fail_usage, scenarios, OrFail, EXIT_DEGRADED};
use nbiot_sim::{merge_archives_with, MergePolicy, ScenarioArchive};

fn main() {
    let mut out: Option<String> = None;
    let mut json = false;
    let mut partial = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--out needs a path")),
                )
            }
            "--json" => json = true,
            "--partial" => partial = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scenario_merge [--out merged.json] [--json] [--partial] \
                     <shard.json>...\n\
                     merges the complete shard set of one scenario run into a full archive\n\
                     and renders the figure tables (bit-identical to the unsharded run);\n\
                     byte-identical duplicate shards merge idempotently; --partial tolerates\n\
                     missing shards and writes a coverage-annotated degraded archive\n\
                     (exit status 3 when degraded)"
                );
                return;
            }
            flag if flag.starts_with("--") => {
                fail_usage(format!("unknown flag {flag}; try --help"))
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        fail_usage("scenario_merge needs at least one shard archive; try --help");
    }

    let archives: Vec<ScenarioArchive> = paths
        .iter()
        .map(|path| scenarios::load_archive(path).or_fail())
        .collect();
    let policy = if partial {
        MergePolicy::Partial
    } else {
        MergePolicy::Strict
    };
    let merged = merge_archives_with(&archives, policy)
        .unwrap_or_else(|e| fail(format!("merge failed: {e}")));

    if let Some(path) = &out {
        scenarios::write_archive(path, &merged).or_fail();
        eprintln!(
            "scenario_merge: {} shards, {} items -> {path}",
            archives.len(),
            merged.items.len()
        );
    }
    if let Some(coverage) = &merged.coverage {
        // A degraded merge has no foldable result: report the coverage
        // instead of tables, and exit distinctly so automation notices.
        println!(
            "scenario_merge: DEGRADED merge of {}: shards {:?} missing, \
             item coverage {:.1}% ({} of {} shards present)",
            merged.scenario.name,
            coverage.missing,
            coverage.item_coverage * 100.0,
            coverage.present.len(),
            coverage.shard_count
        );
        std::process::exit(EXIT_DEGRADED);
    }
    let result = merged
        .result()
        .unwrap_or_else(|e| fail(format!("merged archive does not fold: {e}")));
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serializable")
        );
    } else {
        println!("{}", scenarios::render_report(&merged.scenario, &result));
    }
}
