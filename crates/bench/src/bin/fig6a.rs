//! Compat shim for **Fig. 6(a)** of the paper: the relative increase in
//! *light-sleep* uptime (PO monitoring + paging reception) of each grouping
//! mechanism compared to unicast delivery. Equivalent to
//! `figures --scenario fig6a`; the caption is derived from the executed
//! configuration, so `--mix`/`--devices`/`--runs` overrides show up in it.
//!
//! Expected shape (paper): DR-SC adds exactly nothing, DR-SI a negligible
//! sliver (the longer extended paging message), DA-SC a minor increase (the
//! extra paging occasions of the temporarily shortened DRX cycle plus the
//! second paging).
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin fig6a -- --runs 100 --devices 500
//! ```

use nbiot_bench::{scenarios, FigureOpts};
use nbiot_sim::{run_scenario, Scenario};

fn main() {
    let opts = FigureOpts::from_args();
    let mut scenario = Scenario::builtin("fig6a").expect("registered scenario");
    opts.apply_to_scenario(&mut scenario);
    let result = run_scenario(&scenario).expect("fig6a comparison failed");

    if opts.json {
        // The historical shape: one ComparisonResult object.
        println!(
            "{}",
            serde_json::to_string_pretty(&result.points[0].comparison).expect("serializable")
        );
        return;
    }

    println!("Fig. 6(a) — relative light-sleep uptime increase vs unicast");
    println!("{}\n", scenarios::caption(&scenario));
    println!("{}", scenarios::render_light_sleep(&scenario, &result));
    println!("paper: DR-SC = 0, DR-SI negligible, DA-SC minor");
}
