//! Regenerates **Fig. 6(a)** of the paper: the relative increase in
//! *light-sleep* uptime (PO monitoring + paging reception) of each grouping
//! mechanism compared to unicast delivery.
//!
//! Expected shape (paper): DR-SC adds exactly nothing, DR-SI a negligible
//! sliver (the longer extended paging message), DA-SC a minor increase (the
//! extra paging occasions of the temporarily shortened DRX cycle plus the
//! second paging).
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin fig6a -- --runs 100 --devices 500
//! ```

use nbiot_bench::{pct, render_table, FigureOpts};
use nbiot_grouping::MechanismKind;
use nbiot_sim::{run_comparison, ExperimentConfig};

fn main() {
    let opts = FigureOpts::from_args();
    let mut config = ExperimentConfig::default();
    opts.apply(&mut config);
    let cmp =
        run_comparison(&config, &MechanismKind::PAPER_MECHANISMS).expect("fig6a comparison failed");

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&cmp).expect("serializable")
        );
        return;
    }

    println!("Fig. 6(a) — relative light-sleep uptime increase vs unicast");
    println!(
        "(mix: ericsson-city, {} devices, {} runs, TI = 10 s)\n",
        opts.devices, opts.runs
    );
    let rows: Vec<Vec<String>> = cmp
        .mechanisms
        .iter()
        .map(|m| {
            vec![
                m.mechanism.clone(),
                pct(m.rel_light_sleep.mean),
                pct(m.rel_light_sleep.ci95),
                if m.standards_compliant { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["mechanism", "light-sleep increase", "±95%CI", "compliant"],
            &rows
        )
    );
    println!("paper: DR-SC = 0, DR-SI negligible, DA-SC minor");
}
