//! Machine-trackable macro-benchmark: runs a fixed workload through every
//! pipeline stage (population generation, planning, set-cover kernels,
//! campaign execution, full comparison serial vs parallel) and writes
//! `BENCH_results.json` with wall-clock per stage, so the perf trajectory
//! of the repository is comparable PR over PR.
//!
//! Default workload: 5 mechanisms × 500 devices × 20 runs (override with
//! `--devices`/`--runs`; `--threads` sets the *parallel* comparison's
//! worker count, 0 = all cores). The massive-n scale-tier stages solve a
//! `--massive-devices` (default 10^6) frame-cover point and race the
//! serial vs parallel kernel index build. `--out <path>` redirects the
//! report. Building with `--features bench-alloc` adds a `mem` block to
//! every stage (peak allocated bytes in the stage's window, plus
//! bytes-per-device where the stage has a device count).
//! The default `BENCH_results.json` is gitignored scratch; the committed
//! full-workload snapshot is `BENCH_baseline.json` (regenerate it with
//! `--out BENCH_baseline.json` when a change moves performance).
//!
//! `--compare <baseline.json>` turns the run into a **regression gate**:
//! every stage's wall clock is compared against the same-keyed stage of
//! the baseline report, and the process exits nonzero when any stage is
//! slower by more than `--tolerance-pct <p>` percent (default 25).
//! `--warn-only` downgrades the gate to a report — the right setting on
//! noisy shared hardware like the 1-core CI container, where wall-clock
//! ratios are not trustworthy (see ROADMAP).
//!
//! ```text
//! cargo run --release -p nbiot-bench --bin bench_report
//! cargo run --release -p nbiot-bench --bin bench_report -- --runs 2 --devices 40 --out /tmp/bench.json
//! cargo run --release -p nbiot-bench --bin bench_report -- \
//!     --compare BENCH_baseline.json --tolerance-pct 25 --warn-only
//! ```
//!
//! # `BENCH_results.json` schema
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "workload": { "devices": 500, "runs": 20, "mechanisms": 5,
//!                  "seed": 86085268470817, "parallel_threads": 0 },
//!   "stages": [
//!     { "name": "population_generation", "wall_clock_ms": 1.2,
//!       "detail": { ... stage-specific numbers ... },
//!       "mem": { "peak_alloc_bytes": 123456, "bytes_per_device": 246.9 } },
//!     ...                              // "mem" only with --features bench-alloc
//!   ],
//!   "derived": {
//!     "set_cover_speedup": 3.4,        // reference greedy / bitset greedy
//!     "set_cover_incremental_speedup": 8.0,  // bitset / incremental, 1000 devices
//!     "set_cover_stress_speedup": 20.0,      // bitset / incremental, 10k devices
//!     "weighted_airtime_gain": 3.4,    // count-greedy airtime / weighted airtime, 10k devices
//!     "set_cover_massive_speedup": 30.0,     // bitset / incremental, --massive-devices
//!     "index_build_parallel_speedup": 2.5,   // serial / 4-worker index build (<= 1 on 1 core)
//!     "index_build_warm_gain": 1.3,          // cold parallel build / warm-arena rebuild
//!     "regroup_churn_speedup": 10.0,   // bitset / incremental, churned re-grouping sequence
//!     "window_cover_speedup": 1.2,     // reference / incremental timeline solver
//!     "window_cover_incremental_speedup": 5.0, // per-round sweep / incremental
//!     "comparison_parallel_speedup": 5.9,
//!     "population_sharing_speedup": 5.0,     // per-mechanism regeneration / once-per-run
//!     "sweep_parallel_speedup": 5.5,         // serial full device sweep / one (point × run) pool
//!     "sweep_pipeline_gain": 1.3,            // per-point barriers (PR-1) / one (point × run) pool
//!     "figure_suite_sharing_speedup": 2.5,   // per-payload comparisons / one shared-plan grid
//!     "coordinator_overhead": 1.05           // supervised 2-shard run / direct run_scenario
//!   }
//! }
//! ```
//!
//! Stage wall-clocks are milliseconds (f64). `detail` keys are stable per
//! stage name; new stages may be appended over time.

use std::time::Instant;

use nbiot_bench::coordinator::{self, RunConfig};
use nbiot_bench::{fail, fail_usage, workload, FigureOpts};
use nbiot_des::SeedSequence;
use nbiot_grouping::set_cover::{self, reference, WindowCover};
use nbiot_grouping::{
    improve, repair_plan, GroupingInput, GroupingParams, MechanismKind, MulticastPlan,
};
use nbiot_service::{EventLog, GroupingService, ServeAction, ServiceConfig};
use nbiot_sim::{
    run_campaign, run_comparison, run_scenario, ExperimentConfig, RegroupPolicy, Scenario,
    SimConfig,
};
use nbiot_time::SimDuration;
use serde_json::{json, Value};

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

/// Best-of-`reps` wall clock after one warmup — used for the sub-10ms
/// kernel stages where a single cold measurement is dominated by cache
/// and page-fault noise.
fn timed_min<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f(); // warmup (and the returned value)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        out = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    (out, best)
}

/// Events per second from a count and an elapsed wall-clock in
/// milliseconds. A zero (or pathological negative) elapsed reports 0.0
/// instead of the bare division's inf/NaN — sub-millisecond stages on a
/// coarse clock must not poison the JSON report (`inf` is not even valid
/// JSON).
fn per_sec(count: usize, elapsed_ms: f64) -> f64 {
    if elapsed_ms <= 0.0 {
        0.0
    } else {
        count as f64 / (elapsed_ms / 1000.0)
    }
}

/// Builds one stage record and closes its memory-measurement window.
///
/// Built with `--features bench-alloc`, each stage carries a `mem` block:
/// the peak allocated bytes since the previous stage record (the window
/// covers that stage's measurement) and, when the stage's detail names a
/// device count, the derived bytes-per-device. Without the feature the
/// block is omitted and the schema is unchanged.
fn stage(name: &str, wall_clock_ms: f64, detail: Value) -> Value {
    let mut entries = vec![
        ("name".to_string(), json!(name)),
        ("wall_clock_ms".to_string(), json!(wall_clock_ms)),
        ("detail".to_string(), detail),
    ];
    if let Some(peak) = nbiot_bench::alloc_meter::peak_bytes() {
        let devices = entries
            .iter()
            .find(|(k, _)| k == "detail")
            .and_then(|(_, d)| lookup(d, "devices").or_else(|| lookup(d, "devices_each")))
            .and_then(as_f64);
        let mem = match devices {
            Some(n) if n > 0.0 => json!({
                "peak_alloc_bytes": peak,
                "bytes_per_device": peak as f64 / n,
            }),
            _ => json!({ "peak_alloc_bytes": peak }),
        };
        entries.push(("mem".to_string(), mem));
    }
    nbiot_bench::alloc_meter::reset_peak();
    Value::Object(entries)
}

// ---- the --compare regression gate ----

fn lookup<'v>(value: &'v Value, key: &str) -> Option<&'v Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn as_f64(value: &Value) -> Option<f64> {
    match *value {
        Value::F64(x) => Some(x),
        Value::U64(x) => Some(x as f64),
        Value::I64(x) => Some(x as f64),
        _ => None,
    }
}

/// The identity of a stage across reports: its name, qualified by the
/// mechanism when the stage repeats per mechanism (`plan`, `campaign`).
fn stage_key(stage: &Value) -> Option<String> {
    let name = lookup(stage, "name")?.as_str()?.to_string();
    match lookup(stage, "detail").and_then(|d| lookup(d, "mechanism")) {
        Some(mech) => Some(format!("{name}[{}]", mech.as_str()?)),
        None => Some(name),
    }
}

///`(key, wall_clock_ms)` of every well-formed stage in a report.
fn stage_times(report: &Value) -> Vec<(String, f64)> {
    lookup(report, "stages")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|s| Some((stage_key(s)?, as_f64(lookup(s, "wall_clock_ms")?)?)))
        .collect()
}

/// One row of the comparison table.
struct StageDelta {
    key: String,
    baseline_ms: f64,
    current_ms: f64,
}

impl StageDelta {
    fn change_pct(&self) -> f64 {
        (self.current_ms / self.baseline_ms - 1.0) * 100.0
    }
}

/// Pairs the current report's stages with the baseline's by key and
/// splits them into (compared rows, keys with no baseline counterpart).
/// Stages only in the baseline are ignored — a renamed or retired stage
/// must not fail the gate forever.
fn compare_stages(current: &Value, baseline: &Value) -> (Vec<StageDelta>, Vec<String>) {
    let baseline_times = stage_times(baseline);
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (key, current_ms) in stage_times(current) {
        match baseline_times.iter().find(|(k, _)| *k == key) {
            Some(&(_, baseline_ms)) if baseline_ms > 0.0 => rows.push(StageDelta {
                key,
                baseline_ms,
                current_ms,
            }),
            _ => unmatched.push(key),
        }
    }
    (rows, unmatched)
}

/// Runs the gate: prints the per-stage comparison and returns the keys of
/// stages regressing beyond `tolerance_pct`.
fn run_gate(current: &Value, baseline: &Value, tolerance_pct: f64) -> Vec<String> {
    let (rows, unmatched) = compare_stages(current, baseline);
    let mut violations = Vec::new();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let regressed = row.change_pct() > tolerance_pct;
            if regressed {
                violations.push(row.key.clone());
            }
            vec![
                row.key.clone(),
                format!("{:.3}", row.baseline_ms),
                format!("{:.3}", row.current_ms),
                format!("{:+.1}%", row.change_pct()),
                if regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    eprintln!(
        "\nbench gate vs baseline (tolerance {tolerance_pct}%):\n{}",
        nbiot_bench::render_table(
            &["stage", "baseline ms", "current ms", "change", "verdict"],
            &table,
        )
    );
    if !unmatched.is_empty() {
        eprintln!(
            "stages without a baseline entry (skipped): {}",
            unmatched.join(", ")
        );
    }
    violations
}

fn main() {
    // Split off the binary-specific flags before the shared figure-flag
    // parser (which rejects unknown flags) sees the args.
    let mut out_path = String::from("BENCH_results.json");
    let mut compare: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    let mut warn_only = false;
    let mut massive_devices = 1_000_000usize;
    let mut figure_args = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_report [--runs N] [--devices N] [--seed N] [--threads N] \
                     [--mix NAME]\n\
                     \x20      [--massive-devices N] [--out PATH] [--compare BASELINE.json] \
                     [--tolerance-pct P]\n\
                     \x20      [--warn-only]\n\
                     runs the fixed macro workload through every pipeline stage and writes\n\
                     a BENCH_results.json report (default workload: 5 mechanisms x 500\n\
                     devices x 20 runs). --massive-devices sizes the scale-tier kernel\n\
                     stages (default 1000000). --compare turns the run into a regression\n\
                     gate against a baseline report; --warn-only downgrades it to a report.\n\
                     build with --features bench-alloc to add per-stage memory accounting."
                );
                return;
            }
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--out needs a path"));
            }
            "--massive-devices" => {
                massive_devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| fail_usage("--massive-devices needs a positive integer"));
            }
            "--compare" => {
                compare = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--compare needs a baseline path")),
                );
            }
            "--tolerance-pct" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail_usage("--tolerance-pct needs a number (percent)"));
            }
            "--warn-only" => warn_only = true,
            _ => figure_args.push(arg),
        }
    }
    let mut opts = FigureOpts::parse(figure_args.into_iter());
    // This binary's workload default is the ISSUE's macro shape
    // (5 mechanisms × 500 devices × 20 runs), not the figures' 100 runs.
    if !opts.given.runs {
        opts.runs = 20;
    }
    let seq = SeedSequence::new(opts.seed);
    let params = GroupingParams::default();
    let sim = SimConfig::default();
    let mix = opts
        .mix
        .as_deref()
        .map(nbiot_bench::resolve_mix)
        .unwrap_or_else(nbiot_traffic::TrafficMix::ericsson_city);
    let mut stages: Vec<Value> = Vec::new();
    // Open the first stage's memory window after setup, not at startup.
    nbiot_bench::alloc_meter::reset_peak();

    // ---- Stage 1: population generation ----
    let (populations, pop_ms) = timed(|| {
        (0..opts.runs as u64)
            .map(|run| {
                mix.generate(opts.devices, &mut seq.child(run).rng(0))
                    .expect("population")
            })
            .collect::<Vec<_>>()
    });
    stages.push(stage(
        "population_generation",
        pop_ms,
        json!({ "populations": opts.runs, "devices_each": opts.devices }),
    ));

    // ---- Stage 1b: population sharing (once per run) vs the historical
    // regeneration (once per mechanism per run). The scenario engine
    // generates population + grouping input once per run and shares it
    // across all mechanisms and payload variants; this stage measures the
    // generation cost that sharing removes.
    let mechanisms = MechanismKind::ALL.len() as u32;
    let gen_inputs = |copies: u32| {
        for run in 0..opts.runs as u64 {
            for _ in 0..copies {
                let pop = mix
                    .generate(opts.devices, &mut seq.child(run).rng(0))
                    .expect("population");
                let input = GroupingInput::from_population(&pop, params).expect("input");
                std::hint::black_box(&input);
            }
        }
    };
    let ((), shared_ms) = timed(|| gen_inputs(1));
    let ((), regen_ms) = timed(|| gen_inputs(mechanisms));
    let population_sharing_speedup = regen_ms / shared_ms;
    stages.push(stage(
        "population_shared_per_run",
        shared_ms,
        json!({ "generations": opts.runs, "devices_each": opts.devices }),
    ));
    stages.push(stage(
        "population_regenerated_per_mechanism",
        regen_ms,
        json!({ "generations": opts.runs * mechanisms, "devices_each": opts.devices }),
    ));

    let input = GroupingInput::from_population(&populations[0], params).expect("input");

    // ---- Stage 2: planners ----
    for kind in MechanismKind::ALL {
        let mechanism = kind.instantiate();
        let ((), ms) = timed(|| {
            let mut rng = seq.child(1_000).rng(2);
            let plan = mechanism.as_ref().plan(&input, &mut rng).expect("plan");
            std::hint::black_box(&plan);
        });
        stages.push(stage(
            "plan",
            ms,
            json!({ "mechanism": kind.to_string(), "devices": opts.devices }),
        ));
    }

    // ---- Stage 3: set-cover kernels — incremental vs bitset vs
    // reference on the 1000-device frame-cover instance, then incremental
    // vs bitset on a 10k-device large-n-stress point (the regime the
    // inverted-index update model targets; the reference oracle is too
    // slow to rerun there).
    let (universe, sets) = workload::frame_cover_instance(1_000, opts.seed);
    let (picked_inc, incremental_ms) = timed_min(5, || {
        set_cover::greedy_set_cover(universe, &sets).expect("coverable")
    });
    let (picked_fast, bitset_ms) = timed_min(5, || {
        set_cover::greedy_set_cover_bitset(universe, &sets).expect("coverable")
    });
    let (picked_ref, reference_ms) = timed_min(5, || {
        reference::greedy_set_cover(universe, &sets).expect("coverable")
    });
    assert_eq!(picked_fast, picked_ref, "solvers must agree pick-for-pick");
    assert_eq!(picked_inc, picked_ref, "solvers must agree pick-for-pick");
    let set_cover_speedup = reference_ms / bitset_ms;
    let set_cover_incremental_speedup = bitset_ms / incremental_ms;
    stages.push(stage(
        "set_cover_incremental",
        incremental_ms,
        json!({ "devices": universe, "sets": sets.len(), "picks": picked_inc.len() }),
    ));
    stages.push(stage(
        "set_cover_bitset",
        bitset_ms,
        json!({ "devices": universe, "sets": sets.len(), "picks": picked_fast.len() }),
    ));
    stages.push(stage(
        "set_cover_reference",
        reference_ms,
        json!({ "devices": universe, "sets": sets.len(), "picks": picked_ref.len() }),
    ));

    // The stress point uses the post-dense-filtering shape (dense share
    // 0): at scale the DR-SC pipeline hands the cover kernel only the
    // long-cycle tail — see `workload::frame_cover_instance_with`.
    let (universe10k, sets10k) = workload::frame_cover_instance_with(10_000, 0.0, opts.seed);
    let (stress_inc, stress_incremental_ms) = timed_min(3, || {
        set_cover::greedy_set_cover(universe10k, &sets10k).expect("coverable")
    });
    let (stress_bitset, stress_bitset_ms) = timed_min(3, || {
        set_cover::greedy_set_cover_bitset(universe10k, &sets10k).expect("coverable")
    });
    assert_eq!(
        stress_inc, stress_bitset,
        "solvers must agree pick-for-pick"
    );
    let set_cover_stress_speedup = stress_bitset_ms / stress_incremental_ms;
    stages.push(stage(
        "set_cover_stress_incremental",
        stress_incremental_ms,
        json!({ "devices": universe10k, "sets": sets10k.len(), "picks": stress_inc.len() }),
    ));
    stages.push(stage(
        "set_cover_stress_bitset",
        stress_bitset_ms,
        json!({ "devices": universe10k, "sets": sets10k.len(), "picks": stress_bitset.len() }),
    ));

    // ---- Stage 3a1: the airtime-weighted cover kernel — cost-aware
    // Chvátal greedy on the umbrella-vs-pieces instance whose costs are
    // the CE0/CE1/CE2 block airtimes (see `workload::weighted_cover_instance`).
    // The derived `weighted_airtime_gain` (count-greedy plan airtime /
    // weighted plan airtime, measured at the 10k-device stress point) is
    // an acceptance invariant: the weighted kernel must never pay more
    // airtime than the count-greedy on the instance built to separate
    // them, so the report hard-fails if the gain ever drops below 1.
    let plan_airtime =
        |picks: &[usize], costs: &[u32]| picks.iter().map(|&s| u64::from(costs[s])).sum::<u64>();
    let (wn, wsets, wcosts) = workload::weighted_cover_instance(1_000, opts.seed);
    let mut weighted_arena = set_cover::KernelArena::new();
    let (weighted_picks, weighted_ms) = timed_min(5, || {
        set_cover::greedy_set_cover_weighted(wn, &wsets, &wcosts, 1, &mut weighted_arena)
            .expect("coverable")
    });
    assert_eq!(
        Some(weighted_picks.clone()),
        reference::greedy_set_cover_weighted(wn, &wsets, &wcosts),
        "weighted kernel must agree with the oracle pick-for-pick"
    );
    let count_picks = set_cover::greedy_set_cover(wn, &wsets).expect("coverable");
    stages.push(stage(
        "set_cover_weighted",
        weighted_ms,
        json!({
            "devices": wn,
            "sets": wsets.len(),
            "picks": weighted_picks.len(),
            "plan_airtime": plan_airtime(&weighted_picks, &wcosts),
            "count_greedy_airtime": plan_airtime(&count_picks, &wcosts),
        }),
    ));

    let (wn10k, wsets10k, wcosts10k) = workload::weighted_cover_instance(10_000, opts.seed);
    let (stress_weighted, weighted_stress_ms) = timed_min(3, || {
        set_cover::greedy_set_cover_weighted(wn10k, &wsets10k, &wcosts10k, 1, &mut weighted_arena)
            .expect("coverable")
    });
    let stress_count = set_cover::greedy_set_cover(wn10k, &wsets10k).expect("coverable");
    let stress_weighted_airtime = plan_airtime(&stress_weighted, &wcosts10k);
    let stress_count_airtime = plan_airtime(&stress_count, &wcosts10k);
    let weighted_airtime_gain = stress_count_airtime as f64 / stress_weighted_airtime as f64;
    assert!(
        weighted_airtime_gain >= 1.0,
        "the weighted kernel must never pay more airtime than count-greedy \
         on the stress instance ({stress_weighted_airtime} vs {stress_count_airtime} subframes)"
    );
    stages.push(stage(
        "set_cover_weighted_stress",
        weighted_stress_ms,
        json!({
            "devices": wn10k,
            "sets": wsets10k.len(),
            "picks": stress_weighted.len(),
            "plan_airtime": stress_weighted_airtime,
            "count_greedy_airtime": stress_count_airtime,
        }),
    ));

    // ---- Stage 3a2: the anytime tabu pass over the greedy stress cover
    // — the plan-improvement kernel spending a deterministic iteration
    // budget on the 10k-device instance. Strict improvement here is an
    // acceptance invariant: the committed baseline must show the anytime
    // pass beating plain greedy, so the assert fails the whole report if
    // the kernel ever stops finding the known slack in this instance.
    let tabu_budget = 256u32;
    let ((tabu_picks, tabu_stats), tabu_improve_ms) = timed_min(3, || {
        improve::improve_cover(universe10k, &sets10k, &stress_inc, tabu_budget, opts.seed)
    });
    assert!(
        tabu_stats.final_cost < tabu_stats.initial_cost,
        "tabu pass must strictly improve the greedy stress cover ({} -> {})",
        tabu_stats.initial_cost,
        tabu_stats.final_cost
    );
    assert_eq!(tabu_picks.len() as u32, tabu_stats.final_cost);
    let tabu_cover_gain = f64::from(tabu_stats.initial_cost) / f64::from(tabu_stats.final_cost);
    stages.push(stage(
        "tabu_improve_stress",
        tabu_improve_ms,
        json!({
            "devices": universe10k,
            "budget": tabu_budget,
            "initial_cost": tabu_stats.initial_cost,
            "final_cost": tabu_stats.final_cost,
            "moves_accepted": tabu_stats.moves_accepted,
            "budget_spent": tabu_stats.budget_spent,
        }),
    ));

    // ---- Stage 3b: re-grouping cost under churn — every epoch of a
    // churned cover sequence is a fresh set-cover solve on a
    // mostly-unchanged fleet (the every-epoch re-grouping policy's
    // workload); the incremental and bitset kernels race over the whole
    // sequence.
    let churn_sequence = workload::churned_frame_cover_sequence(2_000, 8, 0.15, opts.seed);
    let (churn_inc_picks, regroup_incremental_ms) = timed_min(3, || {
        churn_sequence
            .iter()
            .map(|(n, sets)| set_cover::greedy_set_cover(*n, sets).expect("coverable"))
            .collect::<Vec<_>>()
    });
    let (churn_bitset_picks, regroup_bitset_ms) = timed_min(3, || {
        churn_sequence
            .iter()
            .map(|(n, sets)| set_cover::greedy_set_cover_bitset(*n, sets).expect("coverable"))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        churn_inc_picks, churn_bitset_picks,
        "solvers must agree pick-for-pick on every churned epoch"
    );
    let regroup_churn_speedup = regroup_bitset_ms / regroup_incremental_ms;
    let churn_picks_total: usize = churn_inc_picks.iter().map(Vec::len).sum();
    stages.push(stage(
        "regroup_churn_incremental",
        regroup_incremental_ms,
        json!({
            "devices": 2_000u64,
            "epochs": churn_sequence.len(),
            "picks_total": churn_picks_total,
        }),
    ));
    stages.push(stage(
        "regroup_churn_bitset",
        regroup_bitset_ms,
        json!({
            "devices": 2_000u64,
            "epochs": churn_sequence.len(),
            "picks_total": churn_picks_total,
        }),
    ));

    // ---- Stage 3b2: LNS plan repair vs full re-planning — the
    // `RegroupPolicy::Repair` economics end to end. One DR-SC plan is
    // built for the initial fleet, the churn model evolves that fleet
    // for several epochs, and the two re-planning strategies race over
    // the identical epoch inputs: a fresh DR-SC solve per epoch vs
    // `repair_plan` chained from the epoch-0 plan. The repaired chain
    // must still validate against the final fleet — the speedup only
    // counts because both sides end with a feasible plan.
    let repair_devices = 2_000usize;
    let repair_epochs = 6u32;
    let repair_model = nbiot_traffic::ChurnModel {
        epochs: repair_epochs,
        departure_rate: 0.05,
        arrival_rate: 0.05,
        handover_rate: 0.08,
    };
    let repair_mix = nbiot_traffic::TrafficMix::mobility_churn();
    let repair_seq = seq.child(4_000);
    let repair_pop0 = repair_mix
        .generate(repair_devices, &mut repair_seq.rng(0))
        .expect("population");
    let mut repair_fleets = Vec::with_capacity(repair_epochs as usize);
    {
        let mut prev = repair_pop0.clone();
        let mut next_id = repair_devices as u32;
        for epoch in 0..repair_epochs {
            let (pop, _) = repair_model
                .step(
                    &repair_mix,
                    &prev,
                    repair_devices,
                    &mut next_id,
                    &mut repair_seq.rng(1 + epoch as u64),
                )
                .expect("churn step");
            repair_fleets.push(pop.clone());
            prev = pop;
        }
    }
    let epoch_inputs: Vec<GroupingInput> = repair_fleets
        .iter()
        .map(|pop| GroupingInput::from_population(pop, params).expect("input"))
        .collect();
    let repair_input0 = GroupingInput::from_population(&repair_pop0, params).expect("input");
    let dr_sc = MechanismKind::DrSc.instantiate();
    let repair_plan0 = dr_sc
        .plan(&repair_input0, &mut repair_seq.rng(100))
        .expect("plan");
    let (full_plans, replan_full_ms) = timed_min(3, || {
        epoch_inputs
            .iter()
            .enumerate()
            .map(|(epoch, input)| {
                dr_sc
                    .plan(input, &mut repair_seq.rng(200 + epoch as u64))
                    .expect("plan")
            })
            .collect::<Vec<_>>()
    });
    let (repaired_final, replan_repair_ms) = timed_min(3, || {
        let mut current = repair_plan0.clone();
        for input in &epoch_inputs {
            current = repair_plan(&current, input)
                .expect("DR-SC plans are repairable")
                .expect("repair");
        }
        current
    });
    repaired_final
        .validate(epoch_inputs.last().expect("epochs"))
        .expect("repaired chain must validate against the final fleet");
    let repair_vs_full_replan_speedup = replan_full_ms / replan_repair_ms;
    let full_tx_total: usize = full_plans
        .iter()
        .map(MulticastPlan::transmission_count)
        .sum();
    stages.push(stage(
        "replan_churn_full",
        replan_full_ms,
        json!({
            "devices": repair_devices,
            "epochs": repair_epochs,
            "transmissions_total": full_tx_total,
        }),
    ));
    stages.push(stage(
        "replan_churn_repair",
        replan_repair_ms,
        json!({
            "devices": repair_devices,
            "epochs": repair_epochs,
            "transmissions_final": repaired_final.transmission_count(),
        }),
    ));

    // ---- Stage 3b3: sustained-load service replay — the `groupingd`
    // engine end to end. One churned event log (fleet events + a
    // campaign request per epoch) is replayed through `GroupingService`
    // twice: under the `repair` policy (LNS patches through the
    // persistent arena) and under `every-epoch` full re-planning. The
    // ratio is the online price of `RegroupPolicy::Repair` including
    // all engine bookkeeping, not just the kernel race of Stage 3b2.
    let service_devices = 1_000usize;
    let service_model = nbiot_traffic::ChurnModel {
        epochs: 8,
        departure_rate: 0.05,
        arrival_rate: 0.05,
        handover_rate: 0.10,
    };
    let service_log = EventLog::synthesize(
        &nbiot_traffic::TrafficMix::mobility_churn(),
        service_devices,
        &service_model,
        "dr-sc",
        opts.seed,
    )
    .expect("event log");
    let service_cfg = |policy| ServiceConfig {
        policy,
        seed: opts.seed,
        threads: 1,
        ..ServiceConfig::default()
    };
    let (repair_serves, service_repair_ms) = timed_min(3, || {
        let mut svc = GroupingService::new(service_cfg(RegroupPolicy::Repair), &service_log)
            .expect("service");
        svc.replay(&service_log).expect("replay")
    });
    let (full_serves, service_full_ms) = timed_min(3, || {
        let mut svc = GroupingService::new(service_cfg(RegroupPolicy::EveryEpoch), &service_log)
            .expect("service");
        svc.replay(&service_log).expect("replay")
    });
    assert_eq!(
        repair_serves.len(),
        full_serves.len(),
        "both policies must serve every campaign request"
    );
    let repair_share = repair_serves
        .iter()
        .filter(|s| s.action == ServeAction::Repair)
        .count() as f64
        / repair_serves.len().max(1) as f64;
    let max_stale_fraction = repair_serves
        .iter()
        .map(|s| s.stale_fraction)
        .fold(0.0f64, f64::max);
    let service_replay_repair_speedup = service_full_ms / service_repair_ms;
    stages.push(stage(
        "service_replay_repair",
        service_repair_ms,
        json!({
            "devices": service_devices,
            "records": service_log.records.len(),
            "serves": repair_serves.len(),
            "repair_share": repair_share,
            "max_stale_fraction": max_stale_fraction,
            "serves_per_sec": per_sec(repair_serves.len(), service_repair_ms),
        }),
    ));
    stages.push(stage(
        "service_replay_full",
        service_full_ms,
        json!({
            "devices": service_devices,
            "records": service_log.records.len(),
            "serves": full_serves.len(),
            "serves_per_sec": per_sec(full_serves.len(), service_full_ms),
        }),
    ));

    // ---- Stage 3c: the massive-n scale tier — the 10^5-10^6-device
    // frame-cover point (post-dense-filter shape, so entries scale with
    // the event count). Single measurement per stage: at this scale a run
    // is milliseconds-to-seconds and cache noise is irrelevant. The index
    // build is raced serial vs parallel (4 workers, the acceptance
    // point); checksum equality locks bit-identity, and the ratio is an
    // honest measurement — on the 1-core CI container it is ≤ 1 (thread
    // spawn overhead with no cores to win back; see ROADMAP), which is
    // exactly what the report should say there.
    let massive_threads = 4usize;
    let ((massive_universe, massive_sets), massive_instance_ms) =
        timed(|| workload::frame_cover_instance_with(massive_devices, 0.0, opts.seed));
    stages.push(stage(
        "massive_instance_generation",
        massive_instance_ms,
        json!({ "devices": massive_universe, "sets": massive_sets.len() }),
    ));
    let mut massive_arena = set_cover::KernelArena::new();
    let (serial_stats, index_serial_ms) = timed(|| {
        set_cover::build_cover_index(massive_universe, &massive_sets, 1, &mut massive_arena)
    });
    stages.push(stage(
        "index_build_serial",
        index_serial_ms,
        json!({
            "devices": massive_universe,
            "sets": massive_sets.len(),
            "entries": serial_stats.entries,
            "workers": serial_stats.workers,
        }),
    ));
    // Fresh arena: the parallel build pays its own allocations, exactly
    // like the serial leg above.
    drop(massive_arena);
    let mut massive_arena = set_cover::KernelArena::new();
    let (parallel_stats, index_parallel_ms) = timed(|| {
        set_cover::build_cover_index(
            massive_universe,
            &massive_sets,
            massive_threads,
            &mut massive_arena,
        )
    });
    assert_eq!(
        parallel_stats.checksum, serial_stats.checksum,
        "parallel index build must be bit-identical to serial"
    );
    stages.push(stage(
        "index_build_parallel",
        index_parallel_ms,
        json!({
            "devices": massive_universe,
            "sets": massive_sets.len(),
            "entries": parallel_stats.entries,
            "workers": parallel_stats.workers,
        }),
    ));
    // Same build again on the now-sized arena: what the reuse contract
    // saves once the first instance has been seen.
    let (warm_stats, index_warm_ms) = timed(|| {
        set_cover::build_cover_index(
            massive_universe,
            &massive_sets,
            massive_threads,
            &mut massive_arena,
        )
    });
    assert_eq!(warm_stats.checksum, serial_stats.checksum);
    stages.push(stage(
        "index_build_parallel_warm",
        index_warm_ms,
        json!({
            "devices": massive_universe,
            "sets": massive_sets.len(),
            "entries": warm_stats.entries,
            "workers": warm_stats.workers,
        }),
    ));
    let (massive_inc, massive_incremental_ms) = timed(|| {
        set_cover::greedy_set_cover_with(
            massive_universe,
            &massive_sets,
            massive_threads,
            &mut massive_arena,
        )
        .expect("coverable")
    });
    let (massive_bitset, massive_bitset_ms) = timed(|| {
        set_cover::greedy_set_cover_bitset(massive_universe, &massive_sets).expect("coverable")
    });
    assert_eq!(
        massive_inc, massive_bitset,
        "solvers must agree pick-for-pick at massive n"
    );
    stages.push(stage(
        "set_cover_massive_incremental",
        massive_incremental_ms,
        json!({
            "devices": massive_universe,
            "sets": massive_sets.len(),
            "entries": serial_stats.entries,
            "picks": massive_inc.len(),
            "build_threads": massive_threads,
        }),
    ));
    stages.push(stage(
        "set_cover_massive_bitset",
        massive_bitset_ms,
        json!({
            "devices": massive_universe,
            "sets": massive_sets.len(),
            "picks": massive_bitset.len(),
        }),
    ));
    let index_build_parallel_speedup = index_serial_ms / index_parallel_ms;
    let index_build_warm_gain = index_parallel_ms / index_warm_ms;
    let set_cover_massive_speedup = massive_bitset_ms / massive_incremental_ms;
    // The scale tier holds the largest allocations of the whole report
    // (~hundreds of MB at 10^6 devices); release them before the
    // campaign stages.
    drop(massive_arena);
    drop(massive_sets);

    let (events, dense) = workload::window_cover_instance(1_000, 2_600, opts.seed);
    let ti = SimDuration::from_secs(10);
    let start = nbiot_time::SimInstant::ZERO;
    let (slots_fast, window_incremental_ms) = timed_min(5, || {
        WindowCover::new(ti)
            .solve_incremental(start, &events, &dense)
            .expect("coverable")
    });
    let (slots_sweep, window_sweep_ms) = timed_min(5, || {
        WindowCover::new(ti)
            .solve_sweep(start, &events, &dense)
            .expect("coverable")
    });
    let (slots_ref, window_ref_ms) = timed_min(5, || {
        reference::window_cover_solve(ti, start, &events, &dense).expect("coverable")
    });
    assert_eq!(slots_fast, slots_ref, "timeline solvers must agree");
    assert_eq!(slots_sweep, slots_ref, "timeline solvers must agree");
    let window_cover_speedup = window_ref_ms / window_incremental_ms;
    let window_cover_incremental_speedup = window_sweep_ms / window_incremental_ms;
    stages.push(stage(
        "window_cover_incremental",
        window_incremental_ms,
        json!({ "devices": events.len(), "slots": slots_fast.len() }),
    ));
    stages.push(stage(
        "window_cover_sweep",
        window_sweep_ms,
        json!({ "devices": events.len(), "slots": slots_sweep.len() }),
    ));
    stages.push(stage(
        "window_cover_reference",
        window_ref_ms,
        json!({ "devices": events.len(), "slots": slots_ref.len() }),
    ));

    // ---- Stage 4: single campaign execution per mechanism ----
    for kind in MechanismKind::ALL {
        let mechanism = kind.instantiate();
        let ((), ms) = timed(|| {
            let mut rng = seq.child(2_000).rng(3);
            let result =
                run_campaign(mechanism.as_ref(), &input, &sim, &mut rng).expect("campaign");
            std::hint::black_box(&result);
        });
        stages.push(stage(
            "campaign",
            ms,
            json!({ "mechanism": kind.to_string(), "devices": opts.devices }),
        ));
    }

    // ---- Stage 5: the full comparison, serial then parallel ----
    let mut config = ExperimentConfig::default();
    opts.apply(&mut config);
    config.threads = 1;
    let (serial_result, serial_ms) =
        timed(|| run_comparison(&config, &MechanismKind::ALL).expect("comparison"));
    stages.push(stage(
        "comparison_serial",
        serial_ms,
        json!({
            "mechanisms": MechanismKind::ALL.len(),
            "devices": opts.devices,
            "runs": opts.runs,
        }),
    ));
    config.threads = opts.threads;
    let (parallel_result, parallel_ms) =
        timed(|| run_comparison(&config, &MechanismKind::ALL).expect("comparison"));
    assert_eq!(
        serial_result, parallel_result,
        "parallel comparison must be bit-identical to serial"
    );
    stages.push(stage(
        "comparison_parallel",
        parallel_ms,
        json!({
            "mechanisms": MechanismKind::ALL.len(),
            "devices": opts.devices,
            "runs": opts.runs,
            "threads": opts.threads,
        }),
    ));

    // ---- Stage 6: the full device sweep (Fig. 7 workload) through the
    // (point × run) scheduler: serial, per-point barriers (the PR-1
    // behaviour: the pool drains one point before starting the next), and
    // the whole grid as one item pool.
    let mut sweep = Scenario::builtin("fig7").expect("registered scenario");
    sweep.runs = opts.runs;
    sweep.master_seed = opts.seed;
    sweep.threads = 1;
    if let Some(mix) = &opts.mix {
        sweep.mix = nbiot_bench::resolve_mix(mix);
    }
    let (sweep_serial_result, sweep_serial_ms) = timed(|| run_scenario(&sweep).expect("sweep"));
    stages.push(stage(
        "sweep_serial",
        sweep_serial_ms,
        json!({ "points": sweep.devices.len(), "runs": opts.runs, "threads": 1u64 }),
    ));
    let (barrier_result, sweep_barrier_ms) = timed(|| {
        let mut points = Vec::new();
        for &n in &sweep.devices {
            let mut one = sweep.clone();
            one.devices = vec![n];
            one.threads = opts.threads;
            points.extend(run_scenario(&one).expect("sweep point").points);
        }
        points
    });
    stages.push(stage(
        "sweep_point_barrier",
        sweep_barrier_ms,
        json!({ "points": sweep.devices.len(), "runs": opts.runs, "threads": opts.threads }),
    ));
    sweep.threads = opts.threads;
    let (sweep_parallel_result, sweep_parallel_ms) = timed(|| run_scenario(&sweep).expect("sweep"));
    stages.push(stage(
        "sweep_point_parallel",
        sweep_parallel_ms,
        json!({ "points": sweep.devices.len(), "runs": opts.runs, "threads": opts.threads }),
    ));
    assert_eq!(
        sweep_serial_result, sweep_parallel_result,
        "point-parallel sweep must be bit-identical to serial"
    );
    assert_eq!(
        sweep_serial_result.points, barrier_result,
        "per-point execution must be bit-identical to the full grid"
    );

    // ---- Stage 7: the Fig. 6 suite — three payload columns executed as
    // separate comparisons (regenerating populations and plans per
    // payload, the historical figure-binary behaviour) vs one scenario
    // grid sharing them. Both serial, isolating the sharing win.
    let payloads = nbiot_bench::scenarios::paper_payloads();
    let (separate_results, suite_separate_ms) = timed(|| {
        payloads
            .iter()
            .map(|&payload| {
                let mut config = ExperimentConfig::default();
                opts.apply(&mut config);
                config.threads = 1;
                config.sim = config.sim.with_payload(payload);
                run_comparison(&config, &MechanismKind::PAPER_MECHANISMS).expect("comparison")
            })
            .collect::<Vec<_>>()
    });
    stages.push(stage(
        "figure_suite_separate",
        suite_separate_ms,
        json!({ "payloads": payloads.len(), "devices": opts.devices, "runs": opts.runs }),
    ));
    let mut suite = Scenario::builtin("paper-suite").expect("registered scenario");
    suite.devices = vec![opts.devices];
    suite.runs = opts.runs;
    suite.master_seed = opts.seed;
    suite.threads = 1;
    if let Some(mix) = &opts.mix {
        // The "separate" path above inherits --mix via opts.apply(); the
        // scenario must run the same population or the bit-identity
        // assert below would (rightly) fire.
        suite.mix = nbiot_bench::resolve_mix(mix);
    }
    let (suite_result, suite_shared_ms) = timed(|| run_scenario(&suite).expect("suite"));
    stages.push(stage(
        "figure_suite_shared",
        suite_shared_ms,
        json!({ "payloads": payloads.len(), "devices": opts.devices, "runs": opts.runs }),
    ));
    for (point, separate) in suite_result.points.iter().zip(&separate_results) {
        assert_eq!(
            &point.comparison, separate,
            "shared-population suite must be bit-identical to separate comparisons"
        );
    }
    let figure_suite_sharing_speedup = suite_separate_ms / suite_shared_ms;

    // ---- Stage 8: coordinator overhead — the same suite grid executed
    // through the fault-tolerant shard coordinator (2 supervised
    // in-process shards, checkpointing to a scratch run dir) vs the
    // direct `run_scenario` call of Stage 7. The merged archive must fold
    // to the exact Stage-7 result; the derived ratio tracks what the
    // supervision machinery (spawn, checkpoint write + re-validate,
    // merge) costs on a fault-free run.
    let coord_dir = std::env::temp_dir().join(format!("bench_report_coord_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&coord_dir);
    let coord_shards = 2u32;
    let (coord_outcome, coordinator_ms) = timed(|| {
        let mut config = RunConfig::new(suite.clone(), coord_shards, &coord_dir);
        config.backoff_base_ms = 0;
        coordinator::run(&config).unwrap_or_else(|e| fail(format!("supervised suite run: {e}")))
    });
    let merged = coord_outcome
        .merged
        .unwrap_or_else(|| fail("supervised suite run produced no merged archive"));
    assert_eq!(
        merged.result().expect("complete archive"),
        suite_result,
        "supervised sharded run must fold to the direct run's exact result"
    );
    let _ = std::fs::remove_dir_all(&coord_dir);
    let coordinator_overhead = coordinator_ms / suite_shared_ms;
    stages.push(stage(
        "coordinator_supervised_suite",
        coordinator_ms,
        json!({
            "shards": coord_shards,
            "payloads": payloads.len(),
            "devices": opts.devices,
            "runs": opts.runs,
        }),
    ));

    let report = json!({
        "schema_version": 1u64,
        "workload": json!({
            "devices": opts.devices,
            "runs": opts.runs,
            "mechanisms": MechanismKind::ALL.len(),
            "seed": opts.seed,
            "parallel_threads": opts.threads,
            "massive_devices": massive_devices,
            "massive_build_threads": massive_threads,
        }),
        // Runner facts a reader needs to interpret the parallel-speedup
        // numbers: a detected_parallelism of 1 explains a ≤ 1 parallel
        // "speedup" without consulting the runner itself.
        "notes": json!({
            "detected_parallelism": std::thread::available_parallelism()
                .map_or(0u64, |n| n.get() as u64),
        }),
        "stages": Value::Array(stages),
        "derived": json!({
            "set_cover_speedup": set_cover_speedup,
            "set_cover_incremental_speedup": set_cover_incremental_speedup,
            "set_cover_stress_speedup": set_cover_stress_speedup,
            "weighted_airtime_gain": weighted_airtime_gain,
            "set_cover_massive_speedup": set_cover_massive_speedup,
            "index_build_parallel_speedup": index_build_parallel_speedup,
            "index_build_warm_gain": index_build_warm_gain,
            "regroup_churn_speedup": regroup_churn_speedup,
            "tabu_cover_gain": tabu_cover_gain,
            "repair_vs_full_replan_speedup": repair_vs_full_replan_speedup,
            "service_replay_repair_speedup": service_replay_repair_speedup,
            "window_cover_speedup": window_cover_speedup,
            "window_cover_incremental_speedup": window_cover_incremental_speedup,
            "comparison_parallel_speedup": serial_ms / parallel_ms,
            "population_sharing_speedup": population_sharing_speedup,
            "sweep_parallel_speedup": sweep_serial_ms / sweep_parallel_ms,
            "sweep_pipeline_gain": sweep_barrier_ms / sweep_parallel_ms,
            "figure_suite_sharing_speedup": figure_suite_sharing_speedup,
            "coordinator_overhead": coordinator_overhead,
        }),
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, &text)
        .unwrap_or_else(|e| fail(format!("cannot write benchmark report `{out_path}`: {e}")));
    println!("{text}");
    eprintln!(
        "\nbench_report: set-cover bitset speedup {set_cover_speedup:.2}x \
         (incremental {set_cover_incremental_speedup:.2}x over bitset, \
         {set_cover_stress_speedup:.2}x at 10k devices, \
         {set_cover_massive_speedup:.2}x at {massive_devices} devices, \
         {regroup_churn_speedup:.2}x on the churned re-grouping sequence), \
         tabu cover gain {tabu_cover_gain:.3}x at budget {tabu_budget}, \
         churn repair {repair_vs_full_replan_speedup:.2}x over full re-planning \
         (service replay {service_replay_repair_speedup:.2}x), \
         index build parallel speedup {index_build_parallel_speedup:.2}x \
         (warm-arena gain {index_build_warm_gain:.2}x), \
         window-cover speedup {window_cover_speedup:.2}x \
         (incremental {window_cover_incremental_speedup:.2}x over sweep), \
         parallel comparison speedup {:.2}x, \
         sweep point-parallel speedup {:.2}x (pipeline gain {:.2}x vs per-point barriers), \
         figure-suite sharing speedup {figure_suite_sharing_speedup:.2}x, \
         coordinator overhead {coordinator_overhead:.2}x -> {out_path}",
        serial_ms / parallel_ms,
        sweep_serial_ms / sweep_parallel_ms,
        sweep_barrier_ms / sweep_parallel_ms,
    );

    if let Some(baseline_path) = compare {
        let baseline: Value = serde_json::from_str(
            &std::fs::read_to_string(&baseline_path)
                .unwrap_or_else(|e| fail(format!("cannot read baseline `{baseline_path}`: {e}"))),
        )
        .unwrap_or_else(|e| fail(format!("bad baseline JSON in `{baseline_path}`: {e}")));
        let violations = run_gate(&report, &baseline, tolerance_pct);
        if !violations.is_empty() {
            eprintln!(
                "bench gate: {} stage(s) regressed beyond {tolerance_pct}%: {}",
                violations.len(),
                violations.join(", ")
            );
            if warn_only {
                eprintln!("bench gate: --warn-only set, not failing the build");
            } else {
                std::process::exit(1);
            }
        } else {
            eprintln!("bench gate: no stage regressed beyond {tolerance_pct}%");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(stages: &[(&str, Option<&str>, f64)]) -> Value {
        let stages: Vec<Value> = stages
            .iter()
            .map(|&(name, mechanism, ms)| {
                let detail = match mechanism {
                    Some(m) => json!({ "mechanism": m }),
                    None => json!({}),
                };
                stage(name, ms, detail)
            })
            .collect();
        json!({ "schema_version": 1u64, "stages": Value::Array(stages) })
    }

    #[test]
    fn stage_keys_qualify_repeated_stages_by_mechanism() {
        let r = report(&[
            ("plan", Some("DR-SC"), 1.0),
            ("plan", Some("DA-SC"), 2.0),
            ("comparison_serial", None, 3.0),
        ]);
        let times = stage_times(&r);
        assert_eq!(
            times,
            vec![
                ("plan[DR-SC]".to_string(), 1.0),
                ("plan[DA-SC]".to_string(), 2.0),
                ("comparison_serial".to_string(), 3.0),
            ]
        );
    }

    #[test]
    fn gate_flags_only_regressions_beyond_tolerance() {
        let baseline = report(&[("a", None, 100.0), ("b", None, 100.0), ("c", None, 100.0)]);
        let current = report(&[
            ("a", None, 109.0),  // +9% — within a 10% gate
            ("b", None, 150.0),  // +50% — regression
            ("c", None, 50.0),   // improvement
            ("new", None, 10.0), // no baseline: skipped, never a failure
        ]);
        let (rows, unmatched) = compare_stages(&current, &baseline);
        assert_eq!(rows.len(), 3);
        assert_eq!(unmatched, vec!["new".to_string()]);
        let violations = run_gate(&current, &baseline, 10.0);
        assert_eq!(violations, vec!["b".to_string()]);
        assert!(run_gate(&current, &baseline, 60.0).is_empty());
    }
}
