//! Fault-tolerant campaign coordinator: executes a whole scenario as
//! supervised shards with timeouts, seeded-backoff retries, checkpointing
//! into a run directory (re-running resumes from valid checkpoints), and
//! optional degradation to a coverage-annotated partial merge.
//!
//! ```text
//! scenario_run --scenario fig6b --shards 4 --run-dir runs/fig6b
//! scenario_run --scenario fig6b --shards 4 --run-dir runs/fig6b   # resume
//! scenario_run --scenario fig7 --shards 8 --run-dir runs/fig7 \
//!              --workers process --max-attempts 5 --timeout-ms 600000
//! scenario_run --scenario fig6b --shards 3 --run-dir runs/ft \
//!              --fault-plan faults.json --allow-partial --out merged.json
//! ```
//!
//! Exit status is the campaign verdict, distinctly:
//! `0` all shards merged (archive at `<run-dir>/merged.json`);
//! `3` retries exhausted on some shard — degraded: with `--allow-partial`
//! a coverage-annotated partial archive lands at `<run-dir>/partial.json`;
//! `4` halted early via `--halt-after` (checkpoints written, no merge);
//! `2` usage errors; `1` campaign-level failures (bad scenario/run dir).
//!
//! See `docs/RESILIENCE.md` for the coordinator lifecycle, the `FaultPlan`
//! schema and the checkpoint directory layout.

use std::path::PathBuf;
use std::time::Duration;

use nbiot_bench::coordinator::{
    self, AttemptOutcome, FaultPlan, RunConfig, RunOutcome, WorkerMode,
};
use nbiot_bench::{
    fail, fail_usage, render_table, scenarios, FigureOpts, OrFail, EXIT_DEGRADED, EXIT_HALTED,
};

fn usage() -> ! {
    eprintln!(
        "usage: scenario_run --scenario <name|path.json|path.toml> --shards N --run-dir DIR\n\
         \x20      [--runs N] [--devices N] [--seed N] [--threads N] [--mix NAME]\n\
         \x20      [--max-attempts N] [--timeout-ms N] [--backoff-ms N]\n\
         \x20      [--workers in-process|process] [--figures-bin PATH]\n\
         \x20      [--fault-plan PATH] [--allow-partial] [--halt-after N]\n\
         \x20      [--out PATH] [--report PATH] [--json]\n\
         supervised sharded campaign: per-shard timeout (--timeout-ms, default 600000),\n\
         bounded retries (--max-attempts, default 3) with seeded exponential backoff\n\
         (--backoff-ms base, default 200), checkpoint/resume in --run-dir, and -- with\n\
         --allow-partial -- degradation to a coverage-annotated partial archive when a\n\
         shard exhausts its budget. --workers process re-invokes figures per shard\n\
         (--figures-bin overrides the sibling default); --fault-plan injects a JSON\n\
         failure schedule (in-process workers only); --halt-after K stops after K newly\n\
         completed shards (simulated kill, for resume testing); --out copies the merged\n\
         or partial archive; --report writes the campaign report JSON; --json prints it.\n\
         exit codes: 0 merged, 1 error, 2 usage, 3 degraded/failed shards, 4 halted"
    );
    std::process::exit(0);
}

fn main() {
    let mut scenario_spec: Option<String> = None;
    let mut shards: Option<u32> = None;
    let mut run_dir: Option<PathBuf> = None;
    let mut max_attempts = 3u32;
    let mut timeout_ms = 600_000u64;
    let mut backoff_ms = 200u64;
    let mut workers = String::from("in-process");
    let mut figures_bin: Option<PathBuf> = None;
    let mut fault_plan_path: Option<String> = None;
    let mut allow_partial = false;
    let mut halt_after: Option<u32> = None;
    let mut out: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut shared_args = Vec::new();
    let mut args = std::env::args().skip(1);

    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next()
            .unwrap_or_else(|| fail_usage(format!("{flag} needs a value; try --help")))
    }
    fn parsed<T: core::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
        value(args, flag)
            .parse()
            .unwrap_or_else(|_| fail_usage(format!("{flag} needs a valid number; try --help")))
    }

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => scenario_spec = Some(value(&mut args, "--scenario")),
            "--shards" => shards = Some(parsed(&mut args, "--shards")),
            "--run-dir" => run_dir = Some(PathBuf::from(value(&mut args, "--run-dir"))),
            "--max-attempts" => max_attempts = parsed(&mut args, "--max-attempts"),
            "--timeout-ms" => timeout_ms = parsed(&mut args, "--timeout-ms"),
            "--backoff-ms" => backoff_ms = parsed(&mut args, "--backoff-ms"),
            "--workers" => workers = value(&mut args, "--workers"),
            "--figures-bin" => figures_bin = Some(PathBuf::from(value(&mut args, "--figures-bin"))),
            "--fault-plan" => fault_plan_path = Some(value(&mut args, "--fault-plan")),
            "--allow-partial" => allow_partial = true,
            "--halt-after" => halt_after = Some(parsed(&mut args, "--halt-after")),
            "--out" => out = Some(value(&mut args, "--out")),
            "--report" => report_path = Some(value(&mut args, "--report")),
            "--help" | "-h" => usage(),
            other => shared_args.push(other.to_string()),
        }
    }
    let opts = FigureOpts::parse(shared_args.into_iter());
    let spec = scenario_spec.unwrap_or_else(|| fail_usage("--scenario is required; try --help"));
    let shards =
        shards.unwrap_or_else(|| fail_usage("--shards is required (how many partitions?)"));
    let run_dir =
        run_dir.unwrap_or_else(|| fail_usage("--run-dir is required (where do checkpoints live?)"));

    let mut scenario = scenarios::load_scenario(&spec).or_fail();
    opts.apply_to_scenario(&mut scenario);

    let workers = match workers.as_str() {
        "in-process" => WorkerMode::InProcess,
        "process" => WorkerMode::Process {
            figures_bin: figures_bin.unwrap_or_else(default_figures_bin),
        },
        other => fail_usage(format!(
            "--workers must be `in-process` or `process`, got `{other}`"
        )),
    };
    let fault_plan = match &fault_plan_path {
        None => FaultPlan::none(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read fault plan `{path}`: {e}")));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| fail(format!("bad fault plan JSON in `{path}`: {e}")))
        }
    };

    let config = RunConfig {
        scenario,
        shards,
        run_dir,
        max_attempts,
        timeout: Duration::from_millis(timeout_ms),
        backoff_base_ms: backoff_ms,
        workers,
        fault_plan,
        allow_partial,
        halt_after,
    };
    let outcome = coordinator::run(&config).unwrap_or_else(|e| fail(e));

    if let Some(path) = &report_path {
        let text = serde_json::to_string_pretty(&outcome.report).expect("serializable");
        std::fs::write(path, text)
            .unwrap_or_else(|e| fail(format!("cannot write report `{path}`: {e}")));
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome.report).expect("serializable")
        );
    } else {
        print_summary(&outcome);
    }
    if let (Some(dest), Some(src)) = (&out, &outcome.merged_path) {
        std::fs::copy(src, dest).unwrap_or_else(|e| {
            fail(format!(
                "cannot copy archive `{}` to `{dest}`: {e}",
                src.display()
            ))
        });
        eprintln!("scenario_run: archive -> {dest}");
    } else if out.is_some() {
        eprintln!("scenario_run: no archive produced; --out not written");
    }

    if outcome.report.halted {
        std::process::exit(EXIT_HALTED);
    }
    if !outcome.report.failed.is_empty() {
        std::process::exit(EXIT_DEGRADED);
    }
}

/// The `figures` binary next to the running `scenario_run` executable —
/// cargo places sibling binaries of one package in the same directory.
fn default_figures_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("figures")))
        .unwrap_or_else(|| PathBuf::from("figures"))
}

/// Human-readable campaign summary: one row per shard plus the verdict.
fn print_summary(outcome: &RunOutcome) {
    let report = &outcome.report;
    let rows: Vec<Vec<String>> = report
        .shard_reports
        .iter()
        .map(|shard| {
            let status = if shard.from_checkpoint {
                "resumed"
            } else if shard.completed {
                "completed"
            } else if report.skipped.contains(&shard.shard) {
                "skipped"
            } else {
                "FAILED"
            };
            let trail = shard
                .attempts
                .iter()
                .map(|a| {
                    match a.outcome {
                        AttemptOutcome::Completed => "ok",
                        AttemptOutcome::SpawnFailed => "spawn-failed",
                        AttemptOutcome::Stalled => "stalled",
                        AttemptOutcome::Crashed => "crashed",
                        AttemptOutcome::CorruptArchive => "corrupt",
                    }
                    .to_string()
                })
                .collect::<Vec<_>>()
                .join(" > ");
            vec![
                shard.shard.to_string(),
                status.to_string(),
                shard.attempts.len().to_string(),
                if trail.is_empty() { "-".into() } else { trail },
            ]
        })
        .collect();
    println!(
        "==== campaign {} ({} shards, fingerprint {:#018x}) ====",
        report.scenario, report.shards, report.fingerprint
    );
    print!(
        "{}",
        render_table(&["shard", "status", "attempts", "trail"], &rows)
    );
    match (&outcome.merged, report.halted) {
        (_, true) => println!(
            "verdict: HALTED after {} completed shard(s); resume with the same --run-dir",
            report.completed.len()
        ),
        (Some(merged), _) => match &merged.coverage {
            None => println!(
                "verdict: complete — {} items merged -> {}",
                merged.items.len(),
                outcome
                    .merged_path
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            ),
            Some(coverage) => println!(
                "verdict: DEGRADED — shards {:?} missing, item coverage {:.1}% -> {}",
                coverage.missing,
                coverage.item_coverage * 100.0,
                outcome
                    .merged_path
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            ),
        },
        (None, false) if !report.failed.is_empty() => println!(
            "verdict: FAILED — shards {:?} exhausted {} attempt(s); re-run to retry, or pass \
             --allow-partial to degrade",
            report.failed,
            report
                .shard_reports
                .iter()
                .map(|s| s.attempts.len())
                .max()
                .unwrap_or(0)
        ),
        (None, false) => println!("verdict: nothing to merge"),
    }
}
