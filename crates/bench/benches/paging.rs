//! Criterion micro-benchmarks for the TS 36.304 paging-occasion kernel —
//! the substrate every mechanism queries millions of times.

use criterion::{criterion_group, criterion_main, Criterion};

use nbiot_time::{
    DrxCycle, EdrxCycle, PagingConfig, PagingSchedule, SimDuration, SimInstant, TimeWindow, UeId,
};

fn bench_po_queries(c: &mut Criterion) {
    let drx = PagingSchedule::new(&PagingConfig::drx(DrxCycle::Rf128), UeId(77)).unwrap();
    let edrx = PagingSchedule::new(&PagingConfig::edrx(EdrxCycle::Hf256), UeId(77)).unwrap();
    let t = SimInstant::from_secs(12_345);

    c.bench_function("first_po_at_or_after/drx", |b| {
        b.iter(|| drx.first_po_at_or_after(std::hint::black_box(t)))
    });
    c.bench_function("first_po_at_or_after/edrx", |b| {
        b.iter(|| edrx.first_po_at_or_after(std::hint::black_box(t)))
    });
    c.bench_function("last_po_before/edrx", |b| {
        b.iter(|| edrx.last_po_before(std::hint::black_box(t)))
    });
    c.bench_function("count_pos_between/edrx", |b| {
        b.iter(|| {
            edrx.count_pos_between(
                std::hint::black_box(SimInstant::ZERO),
                std::hint::black_box(SimInstant::from_secs(21_000)),
            )
        })
    });
    c.bench_function("pos_in/2maxdrx_horizon/drx", |b| {
        let w = TimeWindow::starting_at(SimInstant::ZERO, SimDuration::from_secs(2 * 10_486));
        b.iter(|| drx.pos_in(std::hint::black_box(w)).len())
    });
}

criterion_group!(benches, bench_po_queries);
criterion_main!(benches);
