//! Criterion micro-benchmarks for the DR-SC set-cover kernels
//! (the algorithmic core behind Fig. 7): the incremental-gain production
//! solver against the bitset re-sweep and the retained reference
//! implementations, on the 1000-device frame-cover instance and a
//! 10k-device large-N stress point (see `docs/KERNELS.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nbiot_bench::workload;
use nbiot_des::SeedSequence;
use nbiot_grouping::set_cover::{
    greedy_set_cover, greedy_set_cover_bitset, reference, WindowCover,
};
use nbiot_time::{SimDuration, SimInstant};
use rand::Rng;

/// Synthetic PO timelines: `n` devices, POs every `cycle_s` seconds with a
/// random phase, over a fixed horizon.
fn synth_events(n: usize, cycle_s: u64, horizon_s: u64, seed: u64) -> Vec<Vec<SimInstant>> {
    let mut rng = SeedSequence::new(seed).rng(0);
    (0..n)
        .map(|_| {
            let phase: u64 = rng.gen_range(0..cycle_s * 1000);
            (0..)
                .map(|k| SimInstant::from_ms(phase + k * cycle_s * 1000))
                .take_while(|t| t.as_ms() < horizon_s * 1000)
                .collect()
        })
        .collect()
}

fn bench_window_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_cover");
    for &n in &[100usize, 500, 1000] {
        let events = synth_events(n, 2600, 2 * 10_486, 42);
        let dense = vec![false; n];
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                WindowCover::new(SimDuration::from_secs(10))
                    .solve_incremental(SimInstant::ZERO, &events, &dense)
                    .expect("coverable")
            })
        });
        group.bench_with_input(BenchmarkId::new("sweep", n), &n, |b, _| {
            b.iter(|| {
                WindowCover::new(SimDuration::from_secs(10))
                    .solve_sweep(SimInstant::ZERO, &events, &dense)
                    .expect("coverable")
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| {
                reference::window_cover_solve(
                    SimDuration::from_secs(10),
                    SimInstant::ZERO,
                    &events,
                    &dense,
                )
                .expect("coverable")
            })
        });
    }
    group.finish();
}

fn bench_generic_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("generic_greedy");
    for &n in &[50usize, 200] {
        let mut rng = SeedSequence::new(7).rng(1);
        let mut sets: Vec<Vec<usize>> = (0..n * 4)
            .map(|_| {
                let len = rng.gen_range(1..8);
                (0..len).map(|_| rng.gen_range(0..n)).collect()
            })
            .collect();
        // Ensure coverability.
        sets.push((0..n).collect());
        group.bench_with_input(BenchmarkId::new("chvatal", n), &n, |b, _| {
            b.iter(|| greedy_set_cover(n, &sets).expect("coverable"))
        });
    }
    group.finish();
}

/// All three kernels on the realistic frame-cover shape: wide sets (the
/// paper's dense devices appear in every candidate window).
fn bench_frame_cover_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_cover_1000");
    let (universe, sets) = workload::frame_cover_instance(1_000, 42);
    let oracle = reference::greedy_set_cover(universe, &sets);
    assert_eq!(
        greedy_set_cover(universe, &sets),
        oracle,
        "solvers must agree before being compared"
    );
    assert_eq!(greedy_set_cover_bitset(universe, &sets), oracle);
    group.bench_with_input(
        BenchmarkId::new("incremental", universe),
        &universe,
        |b, _| b.iter(|| greedy_set_cover(universe, &sets).expect("coverable")),
    );
    group.bench_with_input(BenchmarkId::new("bitset", universe), &universe, |b, _| {
        b.iter(|| greedy_set_cover_bitset(universe, &sets).expect("coverable"))
    });
    group.bench_with_input(
        BenchmarkId::new("reference", universe),
        &universe,
        |b, _| b.iter(|| reference::greedy_set_cover(universe, &sets).expect("coverable")),
    );
    group.finish();
}

/// Incremental vs bitset at the `large-n-stress` scale (10k devices), on
/// the post-dense-filtering shape the DR-SC pipeline actually hands the
/// kernel — the regime the inverted-index update model targets (same
/// instance as bench_report's `set_cover_stress_*` stages).
fn bench_stress_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_cover_10000");
    let (universe, sets) = workload::frame_cover_instance_with(10_000, 0.0, 42);
    assert_eq!(
        greedy_set_cover(universe, &sets),
        greedy_set_cover_bitset(universe, &sets),
        "solvers must agree before being compared"
    );
    group.bench_with_input(
        BenchmarkId::new("incremental", universe),
        &universe,
        |b, _| b.iter(|| greedy_set_cover(universe, &sets).expect("coverable")),
    );
    group.bench_with_input(BenchmarkId::new("bitset", universe), &universe, |b, _| {
        b.iter(|| greedy_set_cover_bitset(universe, &sets).expect("coverable"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_cover,
    bench_generic_greedy,
    bench_frame_cover_kernels,
    bench_stress_kernels
);
criterion_main!(benches);
