//! Criterion micro-benchmarks for the three grouping planners on realistic
//! populations (plan computation only, no simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nbiot_des::SeedSequence;
use nbiot_grouping::{DaSc, DrSc, DrSi, GroupingInput, GroupingMechanism, GroupingParams};
use nbiot_traffic::TrafficMix;

fn input(n: usize) -> GroupingInput {
    let mut rng = SeedSequence::new(0xBEEF).rng(0);
    let pop = TrafficMix::ericsson_city()
        .generate(n, &mut rng)
        .expect("population");
    GroupingInput::from_population(&pop, GroupingParams::default()).expect("input")
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("planners");
    for &n in &[100usize, 500] {
        let inp = input(n);
        group.bench_with_input(BenchmarkId::new("dr_sc", n), &n, |b, _| {
            let mut rng = SeedSequence::new(1).rng(0);
            b.iter(|| DrSc::new().plan(&inp, &mut rng).expect("plan"))
        });
        group.bench_with_input(BenchmarkId::new("da_sc", n), &n, |b, _| {
            let mut rng = SeedSequence::new(2).rng(0);
            b.iter(|| DaSc::new().plan(&inp, &mut rng).expect("plan"))
        });
        group.bench_with_input(BenchmarkId::new("dr_si", n), &n, |b, _| {
            let mut rng = SeedSequence::new(3).rng(0);
            b.iter(|| DrSi::new().plan(&inp, &mut rng).expect("plan"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
