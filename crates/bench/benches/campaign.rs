//! Criterion end-to-end benchmark: one full campaign (plan + validate +
//! event-driven execution) per mechanism — the unit of work behind every
//! figure data point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nbiot_des::SeedSequence;
use nbiot_grouping::{GroupingInput, GroupingParams, MechanismKind};
use nbiot_sim::{run_campaign, SimConfig};
use nbiot_traffic::TrafficMix;

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(20);
    let n = 200usize;
    let mut rng = SeedSequence::new(0xCAFE).rng(0);
    let pop = TrafficMix::ericsson_city()
        .generate(n, &mut rng)
        .expect("population");
    let input = GroupingInput::from_population(&pop, GroupingParams::default()).expect("input");
    let config = SimConfig::default();
    for kind in MechanismKind::ALL {
        group.bench_with_input(BenchmarkId::new("run", kind.to_string()), &kind, |b, &k| {
            let mut rng = SeedSequence::new(5).rng(0);
            b.iter(|| {
                run_campaign(k.instantiate().as_ref(), &input, &config, &mut rng).expect("campaign")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
