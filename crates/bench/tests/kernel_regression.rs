//! Regression pins for the set-cover kernels on the benchmark workloads.
//!
//! The bench stages (`bench_report`, the criterion benches) assume all
//! solver tiers agree pick-for-pick on these instances; this test
//! additionally pins the *absolute* round-by-round pick sequence of the
//! 1000-device frame-cover instance at the default benchmark seed, so any
//! change to greedy semantics — tie-breaking, gain accounting, instance
//! generation — shows up as a failure here rather than as a silently
//! shifted baseline.

use nbiot_bench::workload;
use nbiot_des::SeedSequence;
use nbiot_grouping::set_cover::{
    greedy_set_cover, greedy_set_cover_bitset, greedy_set_cover_weighted, reference, KernelArena,
};
use nbiot_grouping::{repair_plan, GroupingInput, GroupingParams, MechanismKind};

/// The default `FigureOpts::seed` used by `bench_report` and the figure
/// binaries.
const BENCH_SEED: u64 = 0x4E42_494F_5421;

fn fnv1a_picks(picks: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in picks {
        h ^= p as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn frame_cover_1000_pick_sequence_is_pinned() {
    let (n, sets) = workload::frame_cover_instance(1_000, BENCH_SEED);
    let picks = greedy_set_cover(n, &sets).expect("tiled windows cover the horizon");
    // Round-by-round prefix of the greedy selection (window indices), the
    // total round count, and a FNV-1a fold of the full sequence.
    assert_eq!(
        &picks[..12],
        &[186, 181, 29, 158, 90, 315, 215, 262, 269, 452, 112, 9],
        "first greedy rounds moved"
    );
    assert_eq!(picks.len(), 139, "round count moved");
    assert_eq!(
        fnv1a_picks(&picks),
        0xb4e7_b6f5_4665_d2cb,
        "full pick sequence moved"
    );
}

#[test]
fn weighted_cover_1000_pick_sequence_is_pinned() {
    // The airtime-weighted kernel on `bench_report`'s `set_cover_weighted`
    // instance: the truncated fixed-point gain/cost key IS the tie law, so
    // any change to the ratio arithmetic, heap laziness, or the instance
    // generator moves this sequence.
    let (n, sets, costs) = workload::weighted_cover_instance(1_000, BENCH_SEED);
    let mut arena = KernelArena::new();
    let picks = greedy_set_cover_weighted(n, &sets, &costs, 1, &mut arena)
        .expect("umbrella-vs-pieces instances always cover");
    assert_eq!(
        &picks[..12],
        &[2, 4, 5, 6, 7, 8, 9, 10, 11, 13, 14, 16],
        "first weighted rounds moved"
    );
    assert_eq!(picks.len(), 250, "weighted round count moved");
    assert_eq!(
        fnv1a_picks(&picks),
        0x801a_b659_463e_0a13,
        "full weighted pick sequence moved"
    );

    // Unit costs degenerate the ratio key to the raw gain: the weighted
    // kernel must reproduce the unweighted pick sequence bit-identically
    // on the very same instance.
    let unit = vec![1u32; sets.len()];
    assert_eq!(
        greedy_set_cover_weighted(n, &sets, &unit, 1, &mut arena),
        greedy_set_cover(n, &sets),
        "unit-cost weighted picks must be bit-identical to unweighted"
    );
}

#[test]
fn bench_repair_chain_is_pinned() {
    // The exact geometry of bench_report's Stage 3b2 (`replan_churn_*`):
    // a 2000-device mobility-churn fleet evolved for 6 epochs at
    // departure/arrival/handover rates 0.05/0.05/0.08, with the repair
    // chain patching the epoch-0 DR-SC plan epoch by epoch. Pinning the
    // per-epoch transmission counts and plan digests means any change to
    // the LNS repair semantics — removal selection, re-insertion order,
    // slot reuse — fails here instead of silently re-baselining the
    // `repair_vs_full_replan_speedup` number.
    let params = GroupingParams::default();
    let model = nbiot_traffic::ChurnModel {
        epochs: 6,
        departure_rate: 0.05,
        arrival_rate: 0.05,
        handover_rate: 0.08,
    };
    let mix = nbiot_traffic::TrafficMix::mobility_churn();
    let seq = SeedSequence::new(BENCH_SEED).child(4_000);
    let pop0 = mix.generate(2_000, &mut seq.rng(0)).expect("population");
    let input0 = GroupingInput::from_population(&pop0, params).expect("input");
    let plan0 = MechanismKind::DrSc
        .instantiate()
        .plan(&input0, &mut seq.rng(100))
        .expect("plan");

    let mut prev = pop0;
    let mut next_id = 2_000u32;
    let mut current = plan0;
    let mut transmissions = Vec::new();
    let mut digests = Vec::new();
    for epoch in 0..model.epochs {
        let (pop, _) = model
            .step(
                &mix,
                &prev,
                2_000,
                &mut next_id,
                &mut seq.rng(1 + epoch as u64),
            )
            .expect("churn step");
        let input = GroupingInput::from_population(&pop, params).expect("input");
        current = repair_plan(&current, &input)
            .expect("DR-SC plans are repairable")
            .expect("repair");
        current.validate(&input).expect("repaired plan is feasible");
        transmissions.push(current.transmission_count());
        digests.push(nbiot_sim::value_digest(&serde::Serialize::to_value(
            &current,
        )));
        prev = pop;
    }
    assert_eq!(
        transmissions,
        vec![249, 250, 263, 273, 278, 287],
        "repair-chain transmission counts moved"
    );
    assert_eq!(
        digests,
        vec![
            0x92e3_c078_0401_8109,
            0xcf76_ecc4_7df7_393b,
            0x6fb7_f942_7638_d6f8,
            0x4a4d_c4a1_cd3d_f0d9,
            0x6016_96c1_894f_8f94,
            0xf78e_cf75_effc_23cf,
        ],
        "repair-chain plan digests moved"
    );
}

#[test]
fn all_solver_tiers_agree_on_both_bench_shapes() {
    // The dense-heavy 1000-device instance (the `set_cover_*` stages) and
    // the sparse post-filter 10k point (`set_cover_stress_*`), each
    // compared across all three tiers / both fast tiers respectively.
    let (n, sets) = workload::frame_cover_instance(1_000, BENCH_SEED);
    let oracle = reference::greedy_set_cover(n, &sets);
    assert_eq!(greedy_set_cover(n, &sets), oracle);
    assert_eq!(greedy_set_cover_bitset(n, &sets), oracle);

    let (n, sets) = workload::frame_cover_instance_with(10_000, 0.0, BENCH_SEED);
    assert_eq!(
        greedy_set_cover(n, &sets),
        greedy_set_cover_bitset(n, &sets)
    );
}
