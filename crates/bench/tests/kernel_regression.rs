//! Regression pins for the set-cover kernels on the benchmark workloads.
//!
//! The bench stages (`bench_report`, the criterion benches) assume all
//! solver tiers agree pick-for-pick on these instances; this test
//! additionally pins the *absolute* round-by-round pick sequence of the
//! 1000-device frame-cover instance at the default benchmark seed, so any
//! change to greedy semantics — tie-breaking, gain accounting, instance
//! generation — shows up as a failure here rather than as a silently
//! shifted baseline.

use nbiot_bench::workload;
use nbiot_grouping::set_cover::{greedy_set_cover, greedy_set_cover_bitset, reference};

/// The default `FigureOpts::seed` used by `bench_report` and the figure
/// binaries.
const BENCH_SEED: u64 = 0x4E42_494F_5421;

fn fnv1a_picks(picks: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in picks {
        h ^= p as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn frame_cover_1000_pick_sequence_is_pinned() {
    let (n, sets) = workload::frame_cover_instance(1_000, BENCH_SEED);
    let picks = greedy_set_cover(n, &sets).expect("tiled windows cover the horizon");
    // Round-by-round prefix of the greedy selection (window indices), the
    // total round count, and a FNV-1a fold of the full sequence.
    assert_eq!(
        &picks[..12],
        &[186, 181, 29, 158, 90, 315, 215, 262, 269, 452, 112, 9],
        "first greedy rounds moved"
    );
    assert_eq!(picks.len(), 139, "round count moved");
    assert_eq!(
        fnv1a_picks(&picks),
        0xb4e7_b6f5_4665_d2cb,
        "full pick sequence moved"
    );
}

#[test]
fn all_solver_tiers_agree_on_both_bench_shapes() {
    // The dense-heavy 1000-device instance (the `set_cover_*` stages) and
    // the sparse post-filter 10k point (`set_cover_stress_*`), each
    // compared across all three tiers / both fast tiers respectively.
    let (n, sets) = workload::frame_cover_instance(1_000, BENCH_SEED);
    let oracle = reference::greedy_set_cover(n, &sets);
    assert_eq!(greedy_set_cover(n, &sets), oracle);
    assert_eq!(greedy_set_cover_bitset(n, &sets), oracle);

    let (n, sets) = workload::frame_cover_instance_with(10_000, 0.0, BENCH_SEED);
    assert_eq!(
        greedy_set_cover(n, &sets),
        greedy_set_cover_bitset(n, &sets)
    );
}
