//! End-to-end contract of the CLI binaries on *bad input*: every
//! operator-triggerable failure must produce one actionable
//! `<bin>: error: ...` line on stderr and a distinct exit status
//! (`1` bad data, `2` usage, `3` degraded merge) — never a panic
//! backtrace. Rides on `CARGO_BIN_EXE_*`, so `cargo test` builds the
//! binaries it drives.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;

use nbiot_bench::scenarios;
use nbiot_sim::ArchiveItem;

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("binary spawns")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Asserts the one-line error contract: exit `code`, a single stderr line
/// of the form `<bin>: error: ...` mentioning `needle`.
fn assert_error_line(output: &Output, bin_name: &str, code: i32, needle: &str) {
    let err = stderr(output);
    assert_eq!(
        output.status.code(),
        Some(code),
        "expected exit {code}; stderr: {err}"
    );
    assert_eq!(err.trim_end().lines().count(), 1, "one line, got: {err}");
    let prefix = format!("{bin_name}: error: ");
    assert!(err.starts_with(&prefix), "missing `{prefix}` in: {err}");
    assert!(err.contains(needle), "missing `{needle}` in: {err}");
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nbiot_cli_errors_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

// ---- figures ----

#[test]
fn figures_rejects_unknown_flags_with_a_usage_error() {
    let out = run(env!("CARGO_BIN_EXE_figures"), &["--no-such-flag"]);
    assert_error_line(&out, "figures", 2, "--no-such-flag");
}

#[test]
fn figures_rejects_malformed_shard_specs_with_a_usage_error() {
    let out = run(
        env!("CARGO_BIN_EXE_figures"),
        &["--scenario", "fig6a", "--shard", "banana"],
    );
    assert_error_line(&out, "figures", 2, "--shard");
}

#[test]
fn figures_refuses_archives_above_the_massive_device_limit() {
    let dir = scratch("massive_archive");
    let path = dir.join("massive.json");
    let out = run(
        env!("CARGO_BIN_EXE_figures"),
        &[
            "--scenario",
            "massive-n",
            "--emit-archive",
            path.to_str().unwrap(),
        ],
    );
    assert_error_line(&out, "figures", 2, "--emit-archive refused");
    assert!(
        stderr(&out).contains(&scenarios::ARCHIVE_DEVICE_LIMIT.to_string()),
        "message names the limit: {}",
        stderr(&out)
    );
    assert!(!path.exists(), "no archive may be written");
    // Capping the grid back under the limit is the advertised way out.
    let out = run(
        env!("CARGO_BIN_EXE_figures"),
        &[
            "--scenario",
            "massive-n",
            "--devices",
            "20",
            "--runs",
            "1",
            "--emit-archive",
            path.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "capped grid runs: {}", stderr(&out));
    assert!(path.exists(), "capped archive written");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figures_rejects_scenario_files_with_an_empty_device_sweep() {
    // Start from the real template so the fixture tracks the scenario
    // schema, then empty the devices axis.
    let dump = run(
        env!("CARGO_BIN_EXE_figures"),
        &["--scenario", "fig7", "--dump", "toml"],
    );
    assert!(dump.status.success(), "dump: {}", stderr(&dump));
    let template = stdout(&dump);
    assert!(template.contains("devices"), "template: {template}");
    let emptied: String = template
        .lines()
        .map(|l| {
            if l.trim_start().starts_with("devices") {
                "devices = []\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let dir = scratch("empty_sweep");
    let path = dir.join("empty_sweep.toml");
    std::fs::write(&path, emptied).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_figures"),
        &["--scenario", path.to_str().unwrap()],
    );
    assert_error_line(&out, "figures", 1, "no devices");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figures_reports_unknown_scenarios_as_data_errors() {
    let out = run(
        env!("CARGO_BIN_EXE_figures"),
        &["--scenario", "no-such-scenario"],
    );
    assert_error_line(&out, "figures", 1, "no-such-scenario");
}

// ---- scenario_merge ----

#[test]
fn merge_without_inputs_is_a_usage_error() {
    let out = run(env!("CARGO_BIN_EXE_scenario_merge"), &[]);
    assert_error_line(&out, "scenario_merge", 2, "at least one shard");
}

#[test]
fn merge_reports_unreadable_archives_with_their_path() {
    let out = run(
        env!("CARGO_BIN_EXE_scenario_merge"),
        &["/no/such/dir/shard.json"],
    );
    assert_error_line(&out, "scenario_merge", 1, "/no/such/dir/shard.json");
}

#[test]
fn foreign_schema_versions_get_a_regenerate_message() {
    let dir = scratch("schema");
    let path = dir.join("old.json");
    std::fs::write(&path, r#"{ "schema_version": 2, "items": [] }"#).unwrap();
    let path = path.to_str().unwrap();
    let out = run(env!("CARGO_BIN_EXE_scenario_merge"), &[path]);
    assert_error_line(&out, "scenario_merge", 1, "schema version 2");
    assert!(
        stderr(&out).contains(&format!(
            "reads version {}",
            nbiot_sim::ARCHIVE_SCHEMA_VERSION
        )),
        "message names the supported version: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- scenario_diff ----

#[test]
fn diff_requires_exactly_two_archives() {
    let out = run(env!("CARGO_BIN_EXE_scenario_diff"), &["only-one.json"]);
    assert_error_line(&out, "scenario_diff", 2, "baseline and a candidate");
}

#[test]
fn diff_reports_unreadable_archives_with_their_path() {
    let out = run(
        env!("CARGO_BIN_EXE_scenario_diff"),
        &["/no/such/a.json", "/no/such/b.json"],
    );
    assert_error_line(&out, "scenario_diff", 1, "/no/such/a.json");
}

// ---- the merge semantics reachable only through real shard archives ----

/// Two tiny fig6a shard archives (0/2 and 1/2), generated once through the
/// real `figures --shard --emit-archive` path and reused by every test
/// below (each test copies/tampers into its own scratch dir).
fn shard_fixtures() -> &'static (PathBuf, PathBuf) {
    static FIXTURES: OnceLock<(PathBuf, PathBuf)> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let dir = scratch("fixtures");
        let emit = |spec: &str, path: &Path| {
            let out = run(
                env!("CARGO_BIN_EXE_figures"),
                &[
                    "--scenario",
                    "fig6a",
                    "--runs",
                    "2",
                    "--devices",
                    "10",
                    "--shard",
                    spec,
                    "--emit-archive",
                    path.to_str().unwrap(),
                ],
            );
            assert!(out.status.success(), "fixture emit: {}", stderr(&out));
        };
        let s0 = dir.join("s0.json");
        let s1 = dir.join("s1.json");
        emit("0/2", &s0);
        emit("1/2", &s1);
        (s0, s1)
    })
}

#[test]
fn merge_accepts_byte_identical_duplicate_shards() {
    let (s0, s1) = shard_fixtures();
    let (s0, s1) = (s0.to_str().unwrap(), s1.to_str().unwrap());
    let out = run(env!("CARGO_BIN_EXE_scenario_merge"), &[s0, s0, s1]);
    assert!(
        out.status.success(),
        "idempotent duplicate rejected: {}",
        stderr(&out)
    );
}

#[test]
fn merge_rejects_conflicting_duplicate_shards() {
    let (s0, s1) = shard_fixtures();
    let dir = scratch("conflict");
    let twisted = dir.join("s0_conflict.json");
    let mut archive = scenarios::load_archive(s0.to_str().unwrap()).unwrap();
    let mut rows = archive.items[0].rows.clone();
    rows[0][0].transmissions += 1.0;
    archive.items[0] = ArchiveItem::new(archive.items[0].item, rows);
    scenarios::write_archive(twisted.to_str().unwrap(), &archive).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_scenario_merge"),
        &[
            s0.to_str().unwrap(),
            twisted.to_str().unwrap(),
            s1.to_str().unwrap(),
        ],
    );
    assert_error_line(&out, "scenario_merge", 1, "diverging");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_records_failing_their_checksum() {
    let (s0, _) = shard_fixtures();
    let dir = scratch("checksum");
    let corrupt = dir.join("s0_corrupt.json");
    let mut archive = scenarios::load_archive(s0.to_str().unwrap()).unwrap();
    archive.items[0].checksum ^= 1;
    scenarios::write_archive(corrupt.to_str().unwrap(), &archive).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_scenario_merge"),
        &[corrupt.to_str().unwrap()],
    );
    assert_error_line(&out, "scenario_merge", 1, "checksum");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_merge_names_missing_shards_and_partial_degrades() {
    let (s0, _) = shard_fixtures();
    let s0 = s0.to_str().unwrap();
    let strict = run(env!("CARGO_BIN_EXE_scenario_merge"), &[s0]);
    assert_error_line(&strict, "scenario_merge", 1, "shard 1");

    let dir = scratch("partial");
    let part = dir.join("partial.json");
    let degraded = run(
        env!("CARGO_BIN_EXE_scenario_merge"),
        &["--partial", "--out", part.to_str().unwrap(), s0],
    );
    assert_eq!(
        degraded.status.code(),
        Some(3),
        "degraded merge exits 3: {}",
        stderr(&degraded)
    );
    assert!(
        stdout(&degraded).contains("DEGRADED"),
        "verdict names the degradation: {}",
        stdout(&degraded)
    );
    let written = scenarios::load_archive(part.to_str().unwrap()).unwrap();
    let coverage = written.coverage.expect("coverage annotation");
    assert_eq!(coverage.missing, vec![1]);

    // The degraded archive must refuse to fold into figure tables: a diff
    // against it is a data error, not a silent half-result.
    let refold = run(
        env!("CARGO_BIN_EXE_scenario_diff"),
        &[part.to_str().unwrap(), part.to_str().unwrap()],
    );
    assert_error_line(&refold, "scenario_diff", 1, "degraded");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- groupingd ----

/// A small synthesized event log shared by the groupingd legs.
fn groupingd_fixture() -> &'static (PathBuf, PathBuf) {
    static FIXTURE: OnceLock<(PathBuf, PathBuf)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch("groupingd_fixture");
        let events = dir.join("events.json");
        let snapshot = dir.join("snapshot.json");
        let synth = run(
            env!("CARGO_BIN_EXE_groupingd"),
            &[
                "--synth",
                "--devices",
                "30",
                "--epochs",
                "2",
                "--seed",
                "5",
                "--emit-events",
                events.to_str().unwrap(),
            ],
        );
        assert!(synth.status.success(), "synth: {}", stderr(&synth));
        let replay = run(
            env!("CARGO_BIN_EXE_groupingd"),
            &[
                "--events",
                events.to_str().unwrap(),
                "--seed",
                "5",
                "--snapshot-every",
                "20",
                "--snapshot-out",
                snapshot.to_str().unwrap(),
            ],
        );
        assert!(replay.status.success(), "replay: {}", stderr(&replay));
        (events, snapshot)
    })
}

#[test]
fn groupingd_requires_an_event_log() {
    let out = run(env!("CARGO_BIN_EXE_groupingd"), &[]);
    assert_error_line(&out, "groupingd", 2, "--events");
}

#[test]
fn groupingd_rejects_unknown_policies_with_a_usage_error() {
    let (events, _) = groupingd_fixture();
    let out = run(
        env!("CARGO_BIN_EXE_groupingd"),
        &[
            "--events",
            events.to_str().unwrap(),
            "--policy",
            "sometimes",
        ],
    );
    assert_error_line(&out, "groupingd", 2, "sometimes");
}

#[test]
fn groupingd_reports_truncated_event_logs_as_data_errors() {
    let (events, _) = groupingd_fixture();
    let dir = scratch("truncated_log");
    let truncated = dir.join("truncated.json");
    let text = std::fs::read_to_string(events).unwrap();
    std::fs::write(&truncated, &text[..text.len() / 2]).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_groupingd"),
        &["--events", truncated.to_str().unwrap()],
    );
    assert_error_line(&out, "groupingd", 1, "corrupt event log");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn groupingd_rejects_foreign_fingerprint_snapshots() {
    let (events, snapshot) = groupingd_fixture();
    // The snapshot was taken under --seed 5; restoring under a different
    // seed is a different service identity.
    let out = run(
        env!("CARGO_BIN_EXE_groupingd"),
        &[
            "--events",
            events.to_str().unwrap(),
            "--seed",
            "6",
            "--restore",
            snapshot.to_str().unwrap(),
        ],
    );
    assert_error_line(&out, "groupingd", 1, "fingerprint");
}

#[test]
fn groupingd_names_foreign_snapshot_schema_versions() {
    let (events, _) = groupingd_fixture();
    let dir = scratch("snapshot_schema");
    let future = dir.join("future.json");
    std::fs::write(&future, r#"{ "schema_version": 99 }"#).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_groupingd"),
        &[
            "--events",
            events.to_str().unwrap(),
            "--seed",
            "5",
            "--restore",
            future.to_str().unwrap(),
        ],
    );
    assert_error_line(&out, "groupingd", 1, "reads version 1");
    let _ = std::fs::remove_dir_all(&dir);
}
