//! Simulation configuration.

use nbiot_phy::{DataSize, NpdschConfig};
use nbiot_rrc::{RandomAccessConfig, SignallingCosts};

/// Physical/protocol configuration of one simulated campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Multicast payload size (the paper evaluates 100 kB, 1 MB, 10 MB).
    pub payload: DataSize,
    /// Downlink scheduling configuration used for payload transfers.
    pub npdsch: NpdschConfig,
    /// Random-access procedure model.
    pub ra: RandomAccessConfig,
    /// Signalling airtime/latency cost book.
    pub costs: SignallingCosts,
    /// Number of *other* contenders assumed per random-access attempt
    /// (0 = collision-free, the paper's implicit assumption; raise it for
    /// the RACH-contention ablation).
    pub ra_contenders: u32,
    /// Serialize payload transfers on the single NB-IoT carrier: a
    /// transmission cannot start while the previous one is still on the
    /// air, and queued recipients keep waiting. The paper's evaluation
    /// treats the channel as ideal (`false`, default); enabling this
    /// exposes how badly unicast and DR-SC really congest the cell.
    pub serialize_channel: bool,
}

impl Default for SimConfig {
    /// 100 kB payload, best-MCS NPDSCH, collision-free random access.
    fn default() -> Self {
        SimConfig {
            payload: DataSize::from_kb(100),
            npdsch: NpdschConfig::default(),
            ra: RandomAccessConfig::default(),
            costs: SignallingCosts::default(),
            ra_contenders: 0,
            serialize_channel: false,
        }
    }
}

impl SimConfig {
    /// A config identical to `self` but with a different payload size.
    pub fn with_payload(mut self, payload: DataSize) -> SimConfig {
        self.payload = payload;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_payload_matches_paper_smallest() {
        assert_eq!(SimConfig::default().payload, DataSize::from_kb(100));
    }

    #[test]
    fn with_payload_changes_only_payload() {
        let base = SimConfig::default();
        let big = base.with_payload(DataSize::from_mb(10));
        assert_eq!(big.payload, DataSize::from_mb(10));
        assert_eq!(big.npdsch, base.npdsch);
        assert_eq!(big.ra, base.ra);
    }
}
