//! Simulator errors.

use core::fmt;

use nbiot_grouping::{GroupingError, PlanViolation};
use nbiot_traffic::TrafficError;

/// Errors surfaced by campaign and experiment execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Plan computation failed.
    Grouping(GroupingError),
    /// A mechanism produced a structurally invalid plan (always a bug).
    InvalidPlan(PlanViolation),
    /// Population generation failed.
    Traffic(TrafficError),
    /// An experiment was configured with zero runs or zero devices.
    DegenerateExperiment {
        /// Number of devices requested.
        n_devices: usize,
        /// Number of runs requested.
        runs: u32,
    },
    /// A scenario listed no sweep points or no mechanisms.
    EmptyScenario {
        /// Which list was empty (`"devices"`, `"payloads"`, `"mechanisms"`).
        what: &'static str,
    },
    /// A device sweep was given an empty size list. Distinct from
    /// [`SimError::EmptyScenario`]: this guards the direct
    /// [`sweep_devices`](crate::sweep_devices) API, which used to return
    /// an empty result set instead of failing.
    EmptySweep,
    /// A re-grouping staleness threshold is not a fraction in `[0, 1]`.
    InvalidRegroupThreshold {
        /// The offending threshold.
        threshold: f64,
    },
    /// A shard spec addressed a shard outside its own count, or zero shards.
    InvalidShard {
        /// Zero-based shard index.
        index: u32,
        /// Total number of shards.
        count: u32,
    },
    /// An archive merge was given no archives at all.
    NoArchives,
    /// Two archives in one merge came from different scenario configs.
    FingerprintMismatch {
        /// Fingerprint of the first archive.
        expected: u64,
        /// The disagreeing fingerprint.
        found: u64,
    },
    /// Two archives in one merge disagreed on the total shard count.
    ShardCountMismatch {
        /// Shard count of the first archive.
        expected: u32,
        /// The disagreeing count.
        found: u32,
    },
    /// The same shard index appeared more than once in a merge set with
    /// *diverging* records. Byte-identical duplicates (idempotent
    /// re-submission after a retry) merge cleanly; divergence means one
    /// copy is corrupt or came from a non-deterministic worker.
    ConflictingShard {
        /// The conflicting zero-based shard index.
        index: u32,
    },
    /// A shard index was absent from a merge set.
    MissingShard {
        /// The absent zero-based shard index.
        index: u32,
    },
    /// An archived record's stored checksum does not match its contents:
    /// the record was corrupted between write and load.
    RecordChecksum {
        /// Global item index of the corrupt record.
        item: usize,
        /// Checksum recomputed from the record contents.
        expected: u64,
        /// Checksum stored in the archive.
        found: u64,
    },
    /// Results were requested from a degraded (partial-merge) archive
    /// whose coverage annotation names the shards that never completed.
    DegradedArchive {
        /// Zero-based indices of the missing shards.
        missing: Vec<u32>,
    },
    /// Results were requested from a partial archive; merge all shards
    /// first.
    IncompleteArchive {
        /// Zero-based shard index of the partial archive.
        index: u32,
        /// Total number of shards the run was split into.
        count: u32,
    },
    /// An archive's contents contradict its own metadata (wrong item set,
    /// malformed record shapes, stale fingerprint, unknown schema).
    CorruptArchive {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Grouping(e) => write!(f, "grouping failed: {e}"),
            SimError::InvalidPlan(v) => write!(f, "mechanism produced an invalid plan: {v}"),
            SimError::Traffic(e) => write!(f, "population generation failed: {e}"),
            SimError::DegenerateExperiment { n_devices, runs } => write!(
                f,
                "experiment needs at least one device and one run (got {n_devices} devices, {runs} runs)"
            ),
            SimError::EmptyScenario { what } => {
                write!(f, "scenario lists no {what}; every sweep axis needs at least one entry")
            }
            SimError::EmptySweep => {
                write!(f, "device sweep lists no sizes; pass at least one group size")
            }
            SimError::InvalidRegroupThreshold { threshold } => write!(
                f,
                "re-grouping staleness threshold must be a fraction in [0, 1], got {threshold}"
            ),
            SimError::InvalidShard { index, count } => write!(
                f,
                "invalid shard {index}/{count}: the index must be below the count \
                 and the count at least 1 (shards are zero-based: 0/{count}..{}/{count})",
                count.saturating_sub(1)
            ),
            SimError::NoArchives => write!(f, "cannot merge an empty set of archives"),
            SimError::FingerprintMismatch { expected, found } => write!(
                f,
                "archive fingerprint mismatch: {found:#018x} vs {expected:#018x} — \
                 the shards were produced from different scenario configurations"
            ),
            SimError::ShardCountMismatch { expected, found } => write!(
                f,
                "archive shard-count mismatch: one archive says {found} shards, another {expected}"
            ),
            SimError::ConflictingShard { index } => write!(
                f,
                "shard {index} appears more than once in the merge set with diverging \
                 records; one copy is corrupt or came from a non-deterministic worker"
            ),
            SimError::MissingShard { index } => {
                write!(f, "shard {index} is missing from the merge set")
            }
            SimError::RecordChecksum {
                item,
                expected,
                found,
            } => write!(
                f,
                "record for item {item} fails its integrity check: stored checksum \
                 {found:#018x}, contents hash to {expected:#018x} — the archive was \
                 corrupted after creation"
            ),
            SimError::DegradedArchive { missing } => write!(
                f,
                "archive is a degraded partial merge missing shard(s) {missing:?}; \
                 re-run the missing shards and merge again before computing results"
            ),
            SimError::IncompleteArchive { index, count } => write!(
                f,
                "archive holds only shard {index}/{count}; merge all {count} shards before \
                 computing results"
            ),
            SimError::CorruptArchive { detail } => write!(f, "corrupt archive: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Grouping(e) => Some(e),
            SimError::InvalidPlan(v) => Some(v),
            SimError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GroupingError> for SimError {
    fn from(e: GroupingError) -> Self {
        SimError::Grouping(e)
    }
}

impl From<PlanViolation> for SimError {
    fn from(v: PlanViolation) -> Self {
        SimError::InvalidPlan(v)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_causes() {
        let e = SimError::Grouping(GroupingError::EmptyGroup);
        assert!(e.to_string().contains("grouping failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
