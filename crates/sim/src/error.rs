//! Simulator errors.

use core::fmt;

use nbiot_grouping::{GroupingError, PlanViolation};
use nbiot_traffic::TrafficError;

/// Errors surfaced by campaign and experiment execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Plan computation failed.
    Grouping(GroupingError),
    /// A mechanism produced a structurally invalid plan (always a bug).
    InvalidPlan(PlanViolation),
    /// Population generation failed.
    Traffic(TrafficError),
    /// An experiment was configured with zero runs or zero devices.
    DegenerateExperiment {
        /// Number of devices requested.
        n_devices: usize,
        /// Number of runs requested.
        runs: u32,
    },
    /// A scenario listed no sweep points or no mechanisms.
    EmptyScenario {
        /// Which list was empty (`"devices"`, `"payloads"`, `"mechanisms"`).
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Grouping(e) => write!(f, "grouping failed: {e}"),
            SimError::InvalidPlan(v) => write!(f, "mechanism produced an invalid plan: {v}"),
            SimError::Traffic(e) => write!(f, "population generation failed: {e}"),
            SimError::DegenerateExperiment { n_devices, runs } => write!(
                f,
                "experiment needs at least one device and one run (got {n_devices} devices, {runs} runs)"
            ),
            SimError::EmptyScenario { what } => {
                write!(f, "scenario lists no {what}; every sweep axis needs at least one entry")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Grouping(e) => Some(e),
            SimError::InvalidPlan(v) => Some(v),
            SimError::Traffic(e) => Some(e),
            SimError::DegenerateExperiment { .. } => None,
            SimError::EmptyScenario { .. } => None,
        }
    }
}

impl From<GroupingError> for SimError {
    fn from(e: GroupingError) -> Self {
        SimError::Grouping(e)
    }
}

impl From<PlanViolation> for SimError {
    fn from(v: PlanViolation) -> Self {
        SimError::InvalidPlan(v)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_causes() {
        let e = SimError::Grouping(GroupingError::EmptyGroup);
        assert!(e.to_string().contains("grouping failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
