//! Sharded scenario execution and mergeable result archives.
//!
//! A scenario grid is a pool of (sweep point × run) work items, and every
//! item is a pure function of (scenario, item index). That makes the pool
//! trivially partitionable across hosts: a [`ShardSpec`] deterministically
//! assigns each item to exactly one of `count` shards,
//! [`run_scenario_shard`] executes one shard's items and persists their
//! **raw per-item records** in a [`ScenarioArchive`], and
//! [`merge_archives`] reassembles any complete set of partial archives
//! into a full archive whose [`ScenarioArchive::result`] is
//! **bit-identical** to the unsharded [`run_scenario`](crate::run_scenario)
//! — because merging replays the exact same item-ordered aggregation fold
//! over the exact same records.
//!
//! Archives are serde round-trippable (the `figures`, `scenario_merge` and
//! `scenario_diff` binaries write and read them as JSON; the JSON codec
//! prints floats with shortest-roundtrip formatting, so records survive a
//! text roundtrip exactly). Every archive carries a [fingerprint]
//! (`scenario_fingerprint`) of its scenario so that shards of *different*
//! configurations can never be merged into a frankenresult.

use crate::experiment::{execute_grid_subset, fold_grid, ItemRows};
use crate::scenario::{assemble_result, grid_spec, payload_sims};
use crate::{Scenario, ScenarioResult, SimError};

/// Archive format version; bumped whenever [`ScenarioArchive`]'s JSON
/// shape or the record semantics change incompatibly. Version 2 added the
/// churn fields: `MechRun::{regroups, stale_miss_ratio}` and the
/// scenario's `churn`/`regroup` configuration. Version 3 added per-record
/// integrity checksums ([`ArchiveItem::checksum`]) and the optional
/// partial-merge [`ScenarioArchive::coverage`] annotation. Version 4
/// added the plan-improvement economics:
/// `MechRun::{cover_cost_initial, cover_cost_final, improve_moves,
/// improve_budget}` and the `DR-SC-tabu(N)` mechanism / `Repair` regroup
/// policy they measure.
pub const ARCHIVE_SCHEMA_VERSION: u32 = 4;

/// A deterministic partition of the (sweep point × run) item pool:
/// shard `index` of `count` owns every item with `item % count == index`
/// (cyclic striding, matching the scheduler's own load-balancing layout,
/// so expensive late sweep points spread evenly across shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards the item pool is split into.
    pub count: u32,
}

impl ShardSpec {
    /// The trivial partition: one shard owning every item.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Checks `index < count` and `count >= 1`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidShard`] otherwise.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.count == 0 || self.index >= self.count {
            return Err(SimError::InvalidShard {
                index: self.index,
                count: self.count,
            });
        }
        Ok(())
    }

    /// Whether this shard owns the given global item index.
    pub fn owns(&self, item: usize) -> bool {
        item % self.count as usize == self.index as usize
    }

    /// The global item indices this shard owns, in increasing order, out
    /// of a pool of `total` items. Uneven splits are fine: trailing shards
    /// simply own one item fewer (or none at all when `count > total`).
    pub fn items(&self, total: usize) -> Vec<usize> {
        (self.index as usize..total)
            .step_by(self.count as usize)
            .collect()
    }
}

impl core::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl core::str::FromStr for ShardSpec {
    type Err = String;

    /// Parses the CLI form `i/N` (zero-based: `0/3`, `1/3`, `2/3`).
    fn from_str(s: &str) -> Result<ShardSpec, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("expected `index/count` (e.g. `0/3`), got `{s}`"))?;
        let spec = ShardSpec {
            index: index
                .trim()
                .parse()
                .map_err(|_| format!("bad shard index `{index}` in `{s}`"))?,
            count: count
                .trim()
                .parse()
                .map_err(|_| format!("bad shard count `{count}` in `{s}`"))?,
        };
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec)
    }
}

/// One work item's archived records: the global item index
/// (`point * runs + run`), its raw per-`[payload][mechanism]`
/// observations, and an FNV integrity checksum binding the records to
/// the item index.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArchiveItem {
    /// Global item index in the scenario's (point × run) pool.
    pub item: usize,
    /// Raw records, indexed `[payload variant][mechanism]`.
    pub rows: ItemRows,
    /// [`record_checksum`] of (`item`, `rows`), verified at every
    /// [`ScenarioArchive::validate`] so corruption between write and load
    /// is caught before it can poison a merge.
    pub checksum: u64,
}

impl ArchiveItem {
    /// Builds a record entry with its checksum computed from the contents.
    pub fn new(item: usize, rows: ItemRows) -> ArchiveItem {
        let checksum = record_checksum(item, &rows);
        ArchiveItem {
            item,
            rows,
            checksum,
        }
    }
}

/// Per-shard completeness annotation carried by a **degraded** archive: a
/// partial merge ([`MergePolicy::Partial`]) that went ahead with some
/// shards missing records exactly which shards landed and which did not.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardCoverage {
    /// Total number of shards the item pool was split into.
    pub shard_count: u32,
    /// Sorted zero-based indices of the shards that merged successfully.
    pub present: Vec<u32>,
    /// Sorted zero-based indices of the shards that never completed.
    pub missing: Vec<u32>,
    /// Fraction of the (point × run) item pool covered by `present`.
    pub item_coverage: f64,
}

/// The serde-stable result archive of one (possibly partial) scenario
/// execution: the scenario itself, its fingerprint, which shard of the
/// item pool this archive holds, and the raw records of every owned item.
///
/// Archives, not folded summaries, are what shards exchange — so a merge
/// can replay the unsharded aggregation fold bit-for-bit instead of trying
/// to combine pre-aggregated statistics.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioArchive {
    /// Archive format version ([`ARCHIVE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// [`scenario_fingerprint`] of `scenario` — merge compatibility key.
    pub fingerprint: u64,
    /// Which shard of the item pool this archive holds.
    pub shard: ShardSpec,
    /// `Some` only on a degraded partial merge: which shards are present
    /// and which are missing. `None` on worker shards and full merges.
    pub coverage: Option<ShardCoverage>,
    /// The full scenario configuration that produced the records.
    pub scenario: Scenario,
    /// Records of every item this shard owns, in increasing item order.
    pub items: Vec<ArchiveItem>,
}

impl ScenarioArchive {
    /// Total number of work items in the scenario's (point × run) pool.
    pub fn total_items(&self) -> usize {
        self.scenario.devices.len() * self.scenario.runs as usize
    }

    /// Whether this archive holds the whole item pool (shard count 1 and
    /// no degraded-coverage annotation).
    pub fn is_complete(&self) -> bool {
        self.shard.count == 1 && self.coverage.is_none()
    }

    /// Checks internal consistency: supported schema version, a valid
    /// shard spec and scenario, a fingerprint matching the embedded
    /// scenario, exactly the owned item set in order (or, for a degraded
    /// archive, the union of its present shards' items), per-record
    /// integrity checksums, and records shaped `payloads × mechanisms`.
    ///
    /// # Errors
    ///
    /// [`SimError::CorruptArchive`] describing the first inconsistency,
    /// [`SimError::RecordChecksum`] for a record that fails its integrity
    /// check, or the underlying shard/scenario validation error.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.schema_version != ARCHIVE_SCHEMA_VERSION {
            return Err(SimError::CorruptArchive {
                detail: format!(
                    "unsupported schema version {} (this build reads version {})",
                    self.schema_version, ARCHIVE_SCHEMA_VERSION
                ),
            });
        }
        self.shard.validate()?;
        self.scenario.validate()?;
        let expected_fp = scenario_fingerprint(&self.scenario);
        if self.fingerprint != expected_fp {
            return Err(SimError::CorruptArchive {
                detail: format!(
                    "recorded fingerprint {:#018x} does not match the embedded scenario \
                     ({expected_fp:#018x}); the archive was edited after creation",
                    self.fingerprint
                ),
            });
        }
        let expected_items = match &self.coverage {
            None => self.shard.items(self.total_items()),
            Some(coverage) => self.coverage_items(coverage)?,
        };
        if self.items.len() != expected_items.len()
            || self
                .items
                .iter()
                .zip(&expected_items)
                .any(|(have, &want)| have.item != want)
        {
            return Err(SimError::CorruptArchive {
                detail: format!(
                    "shard {} of a {}-item pool must hold exactly items {:?} in order",
                    self.shard,
                    self.total_items(),
                    expected_items
                ),
            });
        }
        for entry in &self.items {
            let expected = record_checksum(entry.item, &entry.rows);
            if entry.checksum != expected {
                return Err(SimError::RecordChecksum {
                    item: entry.item,
                    expected,
                    found: entry.checksum,
                });
            }
        }
        let (payloads, mechanisms) = (self.scenario.payloads.len(), self.scenario.mechanisms.len());
        for entry in &self.items {
            if entry.rows.len() != payloads || entry.rows.iter().any(|row| row.len() != mechanisms)
            {
                return Err(SimError::CorruptArchive {
                    detail: format!(
                        "item {} records must be shaped {payloads} payloads x {mechanisms} \
                         mechanisms",
                        entry.item
                    ),
                });
            }
        }
        Ok(())
    }

    /// Checks a degraded archive's coverage annotation for internal
    /// consistency and returns the item set it implies: the sorted union
    /// of the present shards' owned items.
    fn coverage_items(&self, coverage: &ShardCoverage) -> Result<Vec<usize>, SimError> {
        let corrupt = |detail: String| SimError::CorruptArchive { detail };
        if self.shard != ShardSpec::FULL {
            return Err(corrupt(format!(
                "a degraded archive must carry the FULL shard spec, not {}",
                self.shard
            )));
        }
        let count = coverage.shard_count;
        let mut claimed = vec![None; count as usize];
        for (&index, present) in coverage
            .present
            .iter()
            .map(|i| (i, true))
            .chain(coverage.missing.iter().map(|i| (i, false)))
        {
            let slot = claimed
                .get_mut(index as usize)
                .ok_or_else(|| corrupt(format!("coverage names shard {index} of {count}")))?;
            if slot.is_some() {
                return Err(corrupt(format!("coverage names shard {index} twice")));
            }
            *slot = Some(present);
        }
        if claimed.iter().any(Option::is_none) {
            return Err(corrupt(format!(
                "coverage must account for every one of the {count} shards"
            )));
        }
        if coverage.missing.is_empty() {
            return Err(corrupt(
                "an archive with no missing shards must not carry a coverage annotation".into(),
            ));
        }
        if !coverage.present.windows(2).all(|w| w[0] < w[1])
            || !coverage.missing.windows(2).all(|w| w[0] < w[1])
        {
            return Err(corrupt(
                "coverage shard lists must be sorted and duplicate-free".into(),
            ));
        }
        let total = self.total_items();
        let mut items: Vec<usize> = coverage
            .present
            .iter()
            .flat_map(|&index| ShardSpec { index, count }.items(total))
            .collect();
        items.sort_unstable();
        let expected_ratio = if total == 0 {
            1.0
        } else {
            items.len() as f64 / total as f64
        };
        if coverage.item_coverage.to_bits() != expected_ratio.to_bits() {
            return Err(corrupt(format!(
                "coverage ratio {} does not match the present shards' {}/{total} items",
                coverage.item_coverage,
                items.len()
            )));
        }
        Ok(items)
    }

    /// Folds a **complete** archive into the scenario result — the same
    /// item-ordered fold [`run_scenario`](crate::run_scenario) performs,
    /// so the output is bit-identical to the unsharded run.
    ///
    /// # Errors
    ///
    /// [`SimError::DegradedArchive`] naming exactly the missing shards of
    /// a coverage-annotated partial merge, [`SimError::IncompleteArchive`]
    /// for a single-shard partial archive (merge all shards first), or any
    /// [`ScenarioArchive::validate`] failure.
    pub fn result(&self) -> Result<ScenarioResult, SimError> {
        self.validate()?;
        if let Some(coverage) = &self.coverage {
            return Err(SimError::DegradedArchive {
                missing: coverage.missing.clone(),
            });
        }
        if !self.is_complete() {
            return Err(SimError::IncompleteArchive {
                index: self.shard.index,
                count: self.shard.count,
            });
        }
        let sims = payload_sims(&self.scenario);
        let spec = grid_spec(&self.scenario, &sims);
        let grid = fold_grid(&spec, self.items.iter().map(|entry| &entry.rows));
        Ok(assemble_result(&self.scenario, grid))
    }
}

/// A stable 64-bit fingerprint of everything in a scenario that determines
/// its results. `threads` is normalized out (results are bit-identical for
/// every thread count), so archives produced with different worker counts
/// — the whole point of sharding across heterogeneous hosts — still merge.
pub fn scenario_fingerprint(scenario: &Scenario) -> u64 {
    let mut canonical = scenario.clone();
    canonical.threads = 0;
    let mut hash = FNV_OFFSET;
    hash_value(&serde::Serialize::to_value(&canonical), &mut hash);
    hash
}

/// A stable 64-bit integrity checksum of one archived record: FNV-1a over
/// the item index and the canonical serde rendering of its rows. Binding
/// the item index in means a record can't silently masquerade as another
/// item's even if its contents hash alike.
pub fn record_checksum(item: usize, rows: &ItemRows) -> u64 {
    let mut hash = FNV_OFFSET;
    hash_bytes(&(item as u64).to_le_bytes(), &mut hash);
    hash_value(&serde::Serialize::to_value(rows), &mut hash);
    hash
}

/// A stable 64-bit FNV-1a digest over the canonical byte rendering of a
/// serde value tree — the integrity primitive behind
/// [`scenario_fingerprint`] and [`record_checksum`], exported so other
/// persisted formats (the grouping service's snapshots) checksum their
/// state with the exact same walk and stay comparable across schema
/// layers.
pub fn value_digest(value: &serde::Value) -> u64 {
    let mut hash = FNV_OFFSET;
    hash_value(value, &mut hash);
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn hash_bytes(bytes: &[u8], hash: &mut u64) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a over a canonical byte rendering of the serde value tree: every
/// node contributes a type tag plus its contents, lengths delimit
/// variable-size nodes, and floats hash their exact bit pattern.
fn hash_value(value: &serde::Value, hash: &mut u64) {
    use serde::Value;
    match value {
        Value::Null => hash_bytes(b"n", hash),
        Value::Bool(b) => hash_bytes(if *b { b"t" } else { b"f" }, hash),
        Value::U64(x) => {
            hash_bytes(b"u", hash);
            hash_bytes(&x.to_le_bytes(), hash);
        }
        Value::I64(x) => {
            hash_bytes(b"i", hash);
            hash_bytes(&x.to_le_bytes(), hash);
        }
        Value::F64(x) => {
            hash_bytes(b"d", hash);
            hash_bytes(&x.to_bits().to_le_bytes(), hash);
        }
        Value::Str(s) => {
            hash_bytes(b"s", hash);
            hash_bytes(&(s.len() as u64).to_le_bytes(), hash);
            hash_bytes(s.as_bytes(), hash);
        }
        Value::Array(items) => {
            hash_bytes(b"a", hash);
            hash_bytes(&(items.len() as u64).to_le_bytes(), hash);
            for item in items {
                hash_value(item, hash);
            }
        }
        Value::Object(entries) => {
            hash_bytes(b"o", hash);
            hash_bytes(&(entries.len() as u64).to_le_bytes(), hash);
            for (key, item) in entries {
                hash_bytes(&(key.len() as u64).to_le_bytes(), hash);
                hash_bytes(key.as_bytes(), hash);
                hash_value(item, hash);
            }
        }
    }
}

/// Executes one shard of a scenario's (point × run) item pool and archives
/// the raw records. `ShardSpec::FULL` archives the whole pool (the archive
/// is then immediately [`ScenarioArchive::result`]-able).
///
/// Worker threads still fan out *within* the shard per
/// [`Scenario::threads`]; sharding adds the *across-host* axis on top.
///
/// # Errors
///
/// Shard/scenario validation failures, plus any execution failure of the
/// lowest-numbered failing owned item.
pub fn run_scenario_shard(
    scenario: &Scenario,
    shard: ShardSpec,
) -> Result<ScenarioArchive, SimError> {
    shard.validate()?;
    scenario.validate()?;
    let sims = payload_sims(scenario);
    let spec = grid_spec(scenario, &sims);
    let owned = shard.items(scenario.devices.len() * scenario.runs as usize);
    let rows = execute_grid_subset(&spec, &owned)?;
    Ok(ScenarioArchive {
        schema_version: ARCHIVE_SCHEMA_VERSION,
        fingerprint: scenario_fingerprint(scenario),
        shard,
        coverage: None,
        scenario: scenario.clone(),
        items: owned
            .into_iter()
            .zip(rows)
            .map(|(item, rows)| ArchiveItem::new(item, rows))
            .collect(),
    })
}

/// How [`merge_archives_with`] treats missing shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Every shard must be present; anything less is an error. This is
    /// what [`merge_archives`] uses.
    #[default]
    Strict,
    /// Missing shards degrade the merge instead of aborting it: the
    /// output archive carries a [`ShardCoverage`] annotation naming
    /// exactly the missing shards and the item coverage ratio. Degraded
    /// archives refuse [`ScenarioArchive::result`] but survive the same
    /// serde roundtrip, so a coordinator can publish *something* when a
    /// shard exhausts its retry budget.
    Partial,
}

/// Reassembles a complete set of partial archives (any `K = count` shards,
/// in any order) into one full archive, whose [`ScenarioArchive::result`]
/// is bit-identical to the unsharded run. Equivalent to
/// [`merge_archives_with`] under [`MergePolicy::Strict`].
///
/// # Errors
///
/// See [`merge_archives_with`].
pub fn merge_archives(archives: &[ScenarioArchive]) -> Result<ScenarioArchive, SimError> {
    merge_archives_with(archives, MergePolicy::Strict)
}

/// Reassembles partial archives under an explicit [`MergePolicy`].
///
/// Duplicate submissions of the *same* shard are idempotent: copies whose
/// records are identical collapse into one (a retried worker re-submitting
/// the archive it already delivered is not an error). Copies that
/// *diverge* are rejected — one of them is wrong, and the merge cannot
/// know which.
///
/// Under [`MergePolicy::Strict`] a missing shard aborts the merge; under
/// [`MergePolicy::Partial`] the merge proceeds and annotates the output
/// with a [`ShardCoverage`] naming the missing shards. An input that is
/// itself a degraded coverage archive is refused — resume from the
/// original per-shard archives instead.
///
/// # Errors
///
/// [`SimError::NoArchives`] for an empty set,
/// [`SimError::FingerprintMismatch`] when shards come from different
/// scenario configurations, [`SimError::ShardCountMismatch`] /
/// [`SimError::ConflictingShard`] / [`SimError::MissingShard`] for an
/// inconsistent shard set, and [`SimError::CorruptArchive`] /
/// [`SimError::RecordChecksum`] when an archive contradicts its own
/// metadata or records.
pub fn merge_archives_with(
    archives: &[ScenarioArchive],
    policy: MergePolicy,
) -> Result<ScenarioArchive, SimError> {
    let first = archives.first().ok_or(SimError::NoArchives)?;
    for archive in archives {
        archive.validate()?;
        if archive.coverage.is_some() {
            return Err(SimError::CorruptArchive {
                detail: "merge input is already a degraded partial-merge archive; merge the \
                         original per-shard archives instead"
                    .into(),
            });
        }
        if archive.fingerprint != first.fingerprint {
            return Err(SimError::FingerprintMismatch {
                expected: first.fingerprint,
                found: archive.fingerprint,
            });
        }
        if archive.shard.count != first.shard.count {
            return Err(SimError::ShardCountMismatch {
                expected: first.shard.count,
                found: archive.shard.count,
            });
        }
    }
    let count = first.shard.count;
    let mut slots: Vec<Option<&ScenarioArchive>> = vec![None; count as usize];
    for archive in archives {
        let slot = &mut slots[archive.shard.index as usize];
        match slot {
            None => *slot = Some(archive),
            Some(existing) if existing.items == archive.items => {} // idempotent duplicate
            Some(_) => {
                return Err(SimError::ConflictingShard {
                    index: archive.shard.index,
                });
            }
        }
    }
    let missing: Vec<u32> = (0..count)
        .filter(|&index| slots[index as usize].is_none())
        .collect();
    if let (MergePolicy::Strict, Some(&index)) = (policy, missing.first()) {
        return Err(SimError::MissingShard { index });
    }
    let mut items: Vec<ArchiveItem> = slots
        .iter()
        .flatten()
        .flat_map(|archive| archive.items.iter().cloned())
        .collect();
    items.sort_by_key(|entry| entry.item);
    let coverage = if missing.is_empty() {
        None
    } else {
        let total = first.total_items();
        Some(ShardCoverage {
            shard_count: count,
            present: (0..count)
                .filter(|&index| slots[index as usize].is_some())
                .collect(),
            missing,
            item_coverage: if total == 0 {
                1.0
            } else {
                items.len() as f64 / total as f64
            },
        })
    };
    Ok(ScenarioArchive {
        schema_version: ARCHIVE_SCHEMA_VERSION,
        fingerprint: first.fingerprint,
        shard: ShardSpec::FULL,
        coverage,
        scenario: first.scenario.clone(),
        items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_scenario;

    fn tiny() -> Scenario {
        let mut s = Scenario::builtin("fig6a").expect("builtin");
        s.devices = vec![12, 20];
        s.runs = 3;
        s.threads = 1;
        s
    }

    fn shards_of(scenario: &Scenario, count: u32) -> Vec<ScenarioArchive> {
        (0..count)
            .map(|index| {
                run_scenario_shard(scenario, ShardSpec { index, count }).expect("shard run")
            })
            .collect()
    }

    #[test]
    fn shard_spec_parses_and_validates() {
        let spec: ShardSpec = "1/3".parse().unwrap();
        assert_eq!(spec, ShardSpec { index: 1, count: 3 });
        assert_eq!(spec.to_string(), "1/3");
        assert!("3/3".parse::<ShardSpec>().is_err(), "zero-based index");
        assert!("0/0".parse::<ShardSpec>().is_err());
        assert!("x/3".parse::<ShardSpec>().is_err());
        assert!("2".parse::<ShardSpec>().is_err());
        assert!(matches!(
            (ShardSpec { index: 5, count: 2 }).validate(),
            Err(SimError::InvalidShard { index: 5, count: 2 })
        ));
    }

    #[test]
    fn shard_items_partition_the_pool() {
        // Every item owned by exactly one shard, for even and uneven splits.
        for (total, count) in [(12usize, 3u32), (10, 3), (5, 7), (0, 2)] {
            let mut owned = vec![0u32; total];
            for index in 0..count {
                let shard = ShardSpec { index, count };
                for item in shard.items(total) {
                    assert!(shard.owns(item));
                    owned[item] += 1;
                }
            }
            assert!(owned.iter().all(|&n| n == 1), "total={total} count={count}");
        }
    }

    #[test]
    fn full_shard_result_matches_run_scenario() {
        let scenario = tiny();
        let unsharded = run_scenario(&scenario).unwrap();
        let archive = run_scenario_shard(&scenario, ShardSpec::FULL).unwrap();
        assert!(archive.is_complete());
        assert_eq!(archive.result().unwrap(), unsharded);
    }

    #[test]
    fn three_way_merge_is_bit_identical_to_unsharded() {
        let scenario = tiny();
        let unsharded = run_scenario(&scenario).unwrap();
        let mut parts = shards_of(&scenario, 3);
        parts.reverse(); // merge order must not matter
        let merged = merge_archives(&parts).unwrap();
        assert_eq!(merged.result().unwrap(), unsharded);
    }

    #[test]
    fn oversubscribed_sharding_leaves_empty_shards_mergeable() {
        // 6 items split 7 ways: the last shard owns nothing, and the merge
        // still reproduces the unsharded result exactly.
        let mut scenario = tiny();
        scenario.devices = vec![15];
        scenario.runs = 6;
        let parts = shards_of(&scenario, 7);
        assert!(parts[6].items.is_empty());
        let merged = merge_archives(&parts).unwrap();
        assert_eq!(merged.result().unwrap(), run_scenario(&scenario).unwrap());
    }

    #[test]
    fn fingerprint_ignores_threads_but_nothing_else() {
        let a = tiny();
        let mut b = tiny();
        b.threads = 8;
        assert_eq!(scenario_fingerprint(&a), scenario_fingerprint(&b));
        let mut c = tiny();
        c.master_seed += 1;
        assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&c));
        let mut d = tiny();
        d.runs += 1;
        assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&d));
    }

    #[test]
    fn merge_rejects_mismatched_fingerprints() {
        let scenario = tiny();
        let mut other = tiny();
        other.master_seed ^= 0xDEAD_BEEF;
        let a = run_scenario_shard(&scenario, ShardSpec { index: 0, count: 2 }).unwrap();
        let b = run_scenario_shard(&other, ShardSpec { index: 1, count: 2 }).unwrap();
        assert!(matches!(
            merge_archives(&[a, b]),
            Err(SimError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn merge_rejects_missing_shards_and_empty_sets() {
        let scenario = tiny();
        let parts = shards_of(&scenario, 3);
        assert!(matches!(
            merge_archives(&parts[..2]),
            Err(SimError::MissingShard { index: 2 })
        ));
        assert!(matches!(merge_archives(&[]), Err(SimError::NoArchives)));
    }

    #[test]
    fn identical_duplicate_shards_merge_idempotently() {
        // A retried worker re-submitting the archive it already delivered
        // must not poison the merge: byte-identical duplicates collapse.
        let scenario = tiny();
        let parts = shards_of(&scenario, 3);
        let doubled = vec![
            parts[0].clone(),
            parts[1].clone(),
            parts[1].clone(),
            parts[2].clone(),
        ];
        let merged = merge_archives(&doubled).unwrap();
        assert_eq!(merged.result().unwrap(), run_scenario(&scenario).unwrap());
        // Even a duplicate produced with a different worker thread count
        // is the "same" shard: the records are what identity means here.
        let mut threaded = tiny();
        threaded.threads = 8;
        let dup = run_scenario_shard(&threaded, ShardSpec { index: 1, count: 3 }).unwrap();
        let merged =
            merge_archives(&[parts[0].clone(), parts[1].clone(), dup, parts[2].clone()]).unwrap();
        assert_eq!(merged.result().unwrap(), run_scenario(&scenario).unwrap());
    }

    #[test]
    fn conflicting_duplicate_shards_are_rejected() {
        // Two *valid* copies of shard 1 with diverging records: a buggy or
        // malicious worker mutated a record and recomputed its checksum.
        // The merge can't tell which copy is right, so it refuses.
        let scenario = tiny();
        let parts = shards_of(&scenario, 3);
        let mut forged = parts[1].clone();
        forged.items[0].rows[0][0].transmissions += 1.0;
        forged.items[0] = ArchiveItem::new(forged.items[0].item, forged.items[0].rows.clone());
        forged.validate().expect("forged copy is internally valid");
        let set = vec![parts[0].clone(), parts[1].clone(), forged, parts[2].clone()];
        assert!(matches!(
            merge_archives(&set),
            Err(SimError::ConflictingShard { index: 1 })
        ));
    }

    #[test]
    fn corrupted_records_fail_their_checksum_at_load() {
        let scenario = tiny();
        let mut archive = run_scenario_shard(&scenario, ShardSpec::FULL).unwrap();
        archive.items[2].rows[0][0].ra_failures += 1.0;
        match archive.validate() {
            Err(SimError::RecordChecksum { item, .. }) => {
                assert_eq!(item, archive.items[2].item);
            }
            other => panic!("expected RecordChecksum, got {other:?}"),
        }
    }

    #[test]
    fn partial_merge_annotates_coverage_and_refuses_results() {
        let scenario = tiny(); // 2 points x 3 runs = 6 items
        let parts = shards_of(&scenario, 3);
        let degraded =
            merge_archives_with(&[parts[0].clone(), parts[2].clone()], MergePolicy::Partial)
                .unwrap();
        degraded.validate().unwrap();
        assert!(!degraded.is_complete());
        let coverage = degraded.coverage.as_ref().expect("coverage annotation");
        assert_eq!(coverage.shard_count, 3);
        assert_eq!(coverage.present, vec![0, 2]);
        assert_eq!(coverage.missing, vec![1]);
        assert_eq!(coverage.item_coverage, 4.0 / 6.0);
        assert_eq!(
            degraded.items.iter().map(|e| e.item).collect::<Vec<_>>(),
            vec![0, 2, 3, 5]
        );
        // The degraded archive names exactly the missing shards when asked
        // for results, and survives a serde roundtrip.
        assert!(matches!(
            degraded.result(),
            Err(SimError::DegradedArchive { ref missing }) if missing == &vec![1]
        ));
        let value = serde::Serialize::to_value(&degraded);
        let reloaded = <ScenarioArchive as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(reloaded, degraded);
        // A degraded archive cannot be fed back into a merge.
        assert!(matches!(
            merge_archives(&[degraded]),
            Err(SimError::CorruptArchive { .. })
        ));
        // With every shard present, Partial degrades to a clean full merge.
        let full = merge_archives_with(&parts, MergePolicy::Partial).unwrap();
        assert!(full.coverage.is_none());
        assert_eq!(full.result().unwrap(), run_scenario(&scenario).unwrap());
    }

    #[test]
    fn tampered_coverage_annotations_are_rejected() {
        let scenario = tiny();
        let parts = shards_of(&scenario, 3);
        let degraded = merge_archives_with(&parts[..2], MergePolicy::Partial).unwrap();
        // Claiming a missing shard as present contradicts the item set.
        let mut forged = degraded.clone();
        let cov = forged.coverage.as_mut().unwrap();
        cov.present = vec![0, 1, 2];
        cov.missing.clear();
        assert!(matches!(
            forged.validate(),
            Err(SimError::CorruptArchive { .. })
        ));
        // An inflated coverage ratio is caught.
        let mut forged = degraded.clone();
        forged.coverage.as_mut().unwrap().item_coverage = 1.0;
        assert!(matches!(
            forged.validate(),
            Err(SimError::CorruptArchive { .. })
        ));
        // A shard listed both present and missing is caught.
        let mut forged = degraded;
        forged.coverage.as_mut().unwrap().missing = vec![0, 2];
        assert!(matches!(
            forged.validate(),
            Err(SimError::CorruptArchive { .. })
        ));
    }

    #[test]
    fn merge_rejects_mismatched_shard_counts() {
        let scenario = tiny();
        let a = run_scenario_shard(&scenario, ShardSpec { index: 0, count: 2 }).unwrap();
        let b = run_scenario_shard(&scenario, ShardSpec { index: 1, count: 3 }).unwrap();
        assert!(matches!(
            merge_archives(&[a, b]),
            Err(SimError::ShardCountMismatch {
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn tampered_archives_are_rejected() {
        let scenario = tiny();
        let mut archive = run_scenario_shard(&scenario, ShardSpec::FULL).unwrap();
        // Editing the embedded scenario invalidates the fingerprint.
        archive.scenario.master_seed += 1;
        assert!(matches!(
            archive.validate(),
            Err(SimError::CorruptArchive { .. })
        ));
        // Dropping an item breaks the owned-item-set check.
        let mut archive = run_scenario_shard(&scenario, ShardSpec::FULL).unwrap();
        archive.items.pop();
        assert!(matches!(
            archive.validate(),
            Err(SimError::CorruptArchive { .. })
        ));
        // A future schema version is refused outright.
        let mut archive = run_scenario_shard(&scenario, ShardSpec::FULL).unwrap();
        archive.schema_version += 1;
        assert!(matches!(
            archive.validate(),
            Err(SimError::CorruptArchive { .. })
        ));
    }

    #[test]
    fn partial_archives_refuse_to_fold() {
        let scenario = tiny();
        let part = run_scenario_shard(&scenario, ShardSpec { index: 1, count: 3 }).unwrap();
        assert!(matches!(
            part.result(),
            Err(SimError::IncompleteArchive { index: 1, count: 3 })
        ));
    }

    #[test]
    fn sharded_execution_is_thread_count_invariant() {
        let scenario = tiny();
        let serial = run_scenario_shard(&scenario, ShardSpec { index: 0, count: 2 }).unwrap();
        let mut threaded_scenario = tiny();
        threaded_scenario.threads = 8;
        let threaded =
            run_scenario_shard(&threaded_scenario, ShardSpec { index: 0, count: 2 }).unwrap();
        // Records identical; only the embedded thread setting differs.
        assert_eq!(serial.items, threaded.items);
        assert_eq!(serial.fingerprint, threaded.fingerprint);
    }
}
