//! Single-cell NB-IoT multicast campaign simulator.
//!
//! This crate is the executable counterpart of `nbiot-grouping`: it takes a
//! declarative [`MulticastPlan`](nbiot_grouping::MulticastPlan) and plays it
//! out over the deterministic event queue of `nbiot-des`, producing per-
//! device [`UptimeLedger`](nbiot_energy::UptimeLedger)s and a cell
//! [`BandwidthLedger`](nbiot_phy::BandwidthLedger) — the raw material of the
//! paper's Fig. 6 and Fig. 7.
//!
//! Layers:
//!
//! * [`SimConfig`] — payload size, NPDSCH configuration, random-access
//!   model and signalling costs,
//! * [`run_campaign`] — one mechanism on one population, event by event,
//! * [`Scenario`] / [`run_scenario`] — a declarative experiment suite
//!   (mix × device sweep × payloads × mechanisms × runs) executed as one
//!   grid, with a registry of built-in scenarios; a scenario may declare
//!   a [`ChurnModel`](nbiot_traffic::ChurnModel) plus a [`RegroupPolicy`]
//!   to evolve the population across campaign epochs and re-plan when the
//!   grouping goes stale (`docs/SCENARIOS.md`),
//! * [`ShardSpec`] / [`run_scenario_shard`] / [`merge_archives`] (with the
//!   `serde` feature) — multi-host sharding of the (point × run) item pool
//!   into mergeable [`ScenarioArchive`]s, bit-identical to the unsharded
//!   run,
//! * [`ExperimentConfig`] / [`run_comparison`] — the paper's methodology:
//!   the same populations, mechanisms compared against the unicast baseline
//!   of the same run, averaged over `runs` repetitions,
//! * [`sweep_devices`] — the Fig. 7 x-axis (group sizes 100…1000).
//!
//! All experiment execution flows through one generic scheduler whose work
//! items are **(sweep point × run)** pairs, fanned out across
//! [`ExperimentConfig::threads`] OS threads (`0` = all cores, `1` =
//! serial) — the pool spans entire sweeps and figure suites at once. Each
//! item is a pure function of its per-run seed; within an item the run's
//! population and each mechanism's plan are generated **once** and shared
//! across payload variants. The per-item records are folded in item order,
//! so the results are **bit-identical for every thread count** —
//! parallelism only buys wall-clock.
//!
//! Accounting model (documented in DESIGN.md): protocol actions (pagings,
//! random access, reconfigurations, T322 wake-ups, transmissions) are
//! simulated as discrete events; strictly periodic background PO
//! monitoring is accounted analytically over a horizon common to all
//! compared mechanisms, which is both exact and fast.
//!
//! # Example
//!
//! ```
//! use nbiot_grouping::{GroupingParams, MechanismKind};
//! use nbiot_sim::{ExperimentConfig, run_comparison};
//! use nbiot_traffic::TrafficMix;
//!
//! let cfg = ExperimentConfig {
//!     n_devices: 40,
//!     runs: 3,
//!     ..ExperimentConfig::default()
//! };
//! let cmp = run_comparison(&cfg, &MechanismKind::PAPER_MECHANISMS)?;
//! let dr_sc = cmp.mechanism("DR-SC").unwrap();
//! // DR-SC spends no extra light-sleep energy over unicast (Fig. 6(a)).
//! assert!(dr_sc.rel_light_sleep.mean.abs() < 1e-9);
//! # Ok::<(), nbiot_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod campaign;
mod churn;
mod config;
mod engine;
mod error;
mod experiment;
mod result;
mod scenario;
#[cfg(feature = "serde")]
mod shard;

pub use campaign::run_campaign;
pub use churn::{PlannedFleet, RegroupPolicy};
pub use config::SimConfig;
pub use error::SimError;
pub use experiment::{
    run_comparison, sweep_devices, ComparisonResult, ExperimentConfig, ItemRows, MechRun,
    MechanismSummary, SweepPoint,
};
pub use result::CampaignResult;
pub use scenario::{run_scenario, with_ti, PointResult, Scenario, ScenarioResult};
#[cfg(feature = "serde")]
pub use shard::{
    merge_archives, merge_archives_with, record_checksum, run_scenario_shard, scenario_fingerprint,
    value_digest, ArchiveItem, MergePolicy, ScenarioArchive, ShardCoverage, ShardSpec,
    ARCHIVE_SCHEMA_VERSION,
};
