//! Campaign results and aggregate metrics.

use core::fmt;

use nbiot_energy::{PowerProfile, RelativeUptime, UptimeLedger};
use nbiot_phy::{BandwidthLedger, TransferPlan};
use nbiot_time::{SimDuration, TimeWindow};

/// Everything measured while executing one plan on one population.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Mechanism name.
    pub mechanism: String,
    /// Whether the executed plan was standards-compliant.
    pub standards_compliant: bool,
    /// Number of payload transmissions (the Fig. 7 bandwidth proxy).
    pub transmission_count: usize,
    /// Mean device wait between connecting and its transmission.
    pub mean_wait: SimDuration,
    /// Per-device uptime ledgers, in device order.
    pub ledgers: Vec<UptimeLedger>,
    /// Cell downlink airtime bookkeeping.
    pub bandwidth: BandwidthLedger,
    /// Devices whose random access completed after their transmission
    /// started (absorbed by HARQ in practice; should stay near zero).
    pub late_joins: u64,
    /// Random-access procedures that exhausted their attempt budget.
    pub ra_failures: u64,
    /// The common accounting horizon.
    pub horizon: TimeWindow,
    /// The payload transfer footprint.
    pub transfer: TransferPlan,
}

impl CampaignResult {
    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.ledgers.len()
    }

    /// Mean per-device light-sleep uptime in ms.
    pub fn mean_light_sleep_ms(&self) -> f64 {
        mean(self.ledgers.iter().map(|l| l.light_sleep().as_ms() as f64))
    }

    /// Mean per-device connected-mode uptime in ms.
    pub fn mean_connected_ms(&self) -> f64 {
        mean(self.ledgers.iter().map(|l| l.connected().as_ms() as f64))
    }

    /// Relative uptime increase of the whole population versus `baseline` —
    /// the paper's Fig. 6 metric: the ratio of total (equivalently mean)
    /// population uptime, minus one.
    ///
    /// Population totals are used rather than a mean of per-device ratios:
    /// a deep-sleep meter has near-zero baseline light-sleep uptime, so a
    /// per-device ratio degenerates while the aggregate stays meaningful
    /// (and matches the paper's "uptime required compared to unicast"
    /// framing).
    ///
    /// # Panics
    ///
    /// Panics when the two results cover different device counts (they must
    /// come from the same population).
    pub fn mean_relative_vs(&self, baseline: &CampaignResult) -> RelativeUptime {
        assert_eq!(
            self.ledgers.len(),
            baseline.ledgers.len(),
            "results compare different populations"
        );
        let mut mech_total = UptimeLedger::new();
        let mut base_total = UptimeLedger::new();
        for (mech, base) in self.ledgers.iter().zip(&baseline.ledgers) {
            mech_total.merge(mech);
            base_total.merge(base);
        }
        RelativeUptime::between(&mech_total, &base_total)
    }

    /// Per-device relative uptime increases versus `baseline`, for
    /// distribution-level analysis (the aggregate metric is
    /// [`CampaignResult::mean_relative_vs`]).
    ///
    /// # Panics
    ///
    /// Panics when the two results cover different device counts.
    pub fn per_device_relative_vs(&self, baseline: &CampaignResult) -> Vec<RelativeUptime> {
        assert_eq!(
            self.ledgers.len(),
            baseline.ledgers.len(),
            "results compare different populations"
        );
        self.ledgers
            .iter()
            .zip(&baseline.ledgers)
            .map(|(m, b)| RelativeUptime::between(m, b))
            .collect()
    }

    /// Mean per-device energy in millijoules under `profile`.
    pub fn mean_energy_mj(&self, profile: &PowerProfile) -> f64 {
        mean(self.ledgers.iter().map(|l| profile.energy_mj(l)))
    }

    /// Total payload airtime spent on the downlink.
    pub fn data_airtime(&self) -> SimDuration {
        self.transfer.duration * self.transmission_count as u64
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} tx, mean light-sleep {:.1} ms, mean connected {:.1} ms, wait {}",
            self.mechanism,
            self.transmission_count,
            self.mean_light_sleep_ms(),
            self.mean_connected_ms(),
            self.mean_wait,
        )
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_energy::PowerState;
    use nbiot_phy::{DataSize, NpdschConfig};
    use nbiot_time::SimInstant;

    fn result_with(light_ms: u64, conn_ms: u64) -> CampaignResult {
        let mut ledger = UptimeLedger::new();
        ledger.accumulate(PowerState::LightSleep, SimDuration::from_ms(light_ms));
        ledger.accumulate(
            PowerState::ConnectedReceiving,
            SimDuration::from_ms(conn_ms),
        );
        CampaignResult {
            mechanism: "TEST".to_string(),
            standards_compliant: true,
            transmission_count: 1,
            mean_wait: SimDuration::ZERO,
            ledgers: vec![ledger; 4],
            bandwidth: BandwidthLedger::new(),
            late_joins: 0,
            ra_failures: 0,
            horizon: TimeWindow::new(SimInstant::ZERO, SimInstant::from_secs(10)),
            transfer: NpdschConfig::default().plan_transfer(DataSize::from_kb(1)),
        }
    }

    #[test]
    fn means_over_devices() {
        let r = result_with(100, 400);
        assert_eq!(r.mean_light_sleep_ms(), 100.0);
        assert_eq!(r.mean_connected_ms(), 400.0);
        assert_eq!(r.device_count(), 4);
    }

    #[test]
    fn relative_vs_baseline() {
        let mech = result_with(110, 500);
        let base = result_with(100, 400);
        let rel = mech.mean_relative_vs(&base);
        assert!((rel.light_sleep - 0.10).abs() < 1e-12);
        assert!((rel.connected - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different populations")]
    fn mismatched_populations_panic() {
        let mut a = result_with(1, 1);
        let b = result_with(1, 1);
        a.ledgers.pop();
        let _ = a.mean_relative_vs(&b);
    }

    #[test]
    fn data_airtime_scales_with_transmissions() {
        let mut r = result_with(1, 1);
        let single = r.data_airtime();
        r.transmission_count = 3;
        assert_eq!(r.data_airtime(), single * 3);
    }
}
