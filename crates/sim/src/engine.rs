//! Event-driven execution of a multicast plan.

use rand::RngCore;

use nbiot_des::EventQueue;
use nbiot_energy::{PowerState, UptimeLedger};
use nbiot_grouping::{GroupingInput, MulticastPlan};
use nbiot_phy::{BandwidthLedger, TrafficCategory};
use nbiot_rrc::{DlMessage, MltcNotification, PagingMessage, RandomAccess};
use nbiot_time::{SimDuration, SimInstant, TimeWindow};

use crate::{CampaignResult, SimConfig};

/// Campaign events. Indices refer to the plan's device order /
/// transmission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Ordinary page at a shared PO: every device of the indexed batch
    /// decodes the same paging message, then performs random access.
    PageBatch { batch: usize },
    /// DA-SC adaptation page: decode, random access, reconfigure, release.
    AdaptationPage { device: usize },
    /// DR-SI extended page: decode only (no connection).
    ExtendedPage { device: usize },
    /// DR-SI T322 expiry: random access.
    Wake { device: usize },
    /// A multicast (or unicast) transmission starts.
    Transmit { index: usize },
}

/// Per-device in-flight reception state.
#[derive(Debug, Clone, Copy)]
struct Pending {
    connect_at: SimInstant,
    ra_latency: SimDuration,
}

/// Executes `plan` and returns the measured campaign result.
///
/// Protocol actions are replayed as discrete events; strictly periodic
/// PO monitoring is accounted analytically over a horizon common to every
/// mechanism run against the same input and config (see crate docs).
pub(crate) fn execute(
    input: &GroupingInput,
    plan: &MulticastPlan,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> CampaignResult {
    let n = input.len();
    let params = input.params();
    let start = params.start;
    let ti = params.ti.duration();
    let transfer = config.npdsch.plan_transfer(config.payload);

    // Common accounting horizon: latest single-transmission instant plus
    // the inactivity window and the payload airtime. Identical for every
    // mechanism on the same (input, config), which is what makes relative
    // light-sleep comparisons exact.
    let t_single = input
        .transmission_time()
        .unwrap_or_else(|_| input.default_transmission_time());
    let h_end = t_single.max(input.search_horizon().end()) + ti + transfer.duration;
    let horizon = TimeWindow::new(start, h_end);

    let mut ledgers = vec![UptimeLedger::new(); n];
    let mut bandwidth = BandwidthLedger::new();
    let mut late_joins = 0u64;
    let mut ra_failures = 0u64;

    // ---- Analytic part: periodic monitoring ----
    for (i, (dp, sched)) in plan.device_plans.iter().zip(input.schedules()).enumerate() {
        let pos = match dp.adaptation {
            Some(a) => {
                // Natural POs up to and including the adaptation point,
                // the adapted-cycle POs, then natural POs again after the
                // post-multicast restoration.
                let before = sched.count_pos_between(start, a.page_po + SimDuration::from_ms(1));
                let after = sched.count_pos_between(dp.receives_at + transfer.duration, h_end);
                before + a.monitored_adapted_pos + after
            }
            None => sched.count_pos_between(start, h_end),
        };
        ledgers[i].pos_monitored = pos;
        ledgers[i].accumulate(PowerState::LightSleep, config.costs.po_monitor_time * pos);
    }
    if let Some(cm) = plan.control_monitoring {
        let occasions = horizon.len().as_ms() / cm.period.as_ms();
        for ledger in &mut ledgers {
            ledger.accumulate(PowerState::LightSleep, cm.per_occasion * occasions);
        }
        bandwidth.record(
            TrafficCategory::ScPtmControl,
            config.costs.paging_base * occasions,
        );
    }

    // ---- Event-driven part: protocol actions ----
    let mut queue: EventQueue<Event> = EventQueue::new();
    // Ordinary pages sharing a paging occasion ride one paging message
    // (PagingRecordList holds up to MAX_PAGING_RECORDS entries), exactly as
    // a real eNB batches them. Batches are built by one stable sort over
    // the paged devices instead of a per-device ordered-map insertion, and
    // each batch is addressed by index, so the event loop never searches.
    let mut paged: Vec<(SimInstant, usize)> = Vec::new();
    for (i, dp) in plan.device_plans.iter().enumerate() {
        if let Some(a) = dp.adaptation {
            queue.schedule(a.page_po, Event::AdaptationPage { device: i });
        }
        if let Some(p) = dp.page {
            paged.push((p.po, i));
        }
        if let Some(m) = dp.mltc {
            queue.schedule(m.po, Event::ExtendedPage { device: i });
            queue.schedule(m.wake_at, Event::Wake { device: i });
        }
    }
    // Stable by PO: devices sharing a PO keep their device-order position.
    paged.sort_by_key(|&(po, _)| po);
    // Batches are contiguous runs of the sorted list, so one CSR offset
    // array over `paged` addresses them — no per-batch recipient vector.
    // At massive n (10^5-10^6 paged devices) this keeps the campaign
    // state at two flat allocations regardless of the batch count.
    let mut batch_off: Vec<usize> = Vec::with_capacity(paged.len() + 1);
    for (idx, &(po, _)) in paged.iter().enumerate() {
        if idx == 0 || paged[idx - 1].0 != po {
            queue.schedule(
                po,
                Event::PageBatch {
                    batch: batch_off.len(),
                },
            );
            batch_off.push(idx);
        }
    }
    batch_off.push(paged.len());
    for (k, tx) in plan.transmissions.iter().enumerate() {
        queue.schedule(tx.at, Event::Transmit { index: k });
    }

    let ra = RandomAccess::new(config.ra);
    let mut pending: Vec<Option<Pending>> = vec![None; n];
    let mut channel_free_at = start;
    let is_unicast =
        plan.transmissions.len() == n && plan.transmissions.iter().all(|t| t.recipients.len() == 1);
    let data_category = if is_unicast {
        TrafficCategory::UnicastData
    } else {
        TrafficCategory::MulticastData
    };

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::PageBatch { batch } => {
                let devices = &paged[batch_off[batch]..batch_off[batch + 1]];
                debug_assert_eq!(devices[0].0, now);
                // Cell airtime: as many messages as the record capacity
                // requires.
                for chunk in devices.chunks(nbiot_rrc::MAX_PAGING_RECORDS) {
                    let mut msg = PagingMessage::new();
                    for &(_, d) in chunk {
                        msg.push_record(input.ues()[d]);
                    }
                    bandwidth.record(TrafficCategory::Paging, config.costs.paging_airtime(&msg));
                    for &(_, d) in chunk {
                        ledgers[d].accumulate(
                            PowerState::LightSleep,
                            config.costs.paging_reception_uptime(&msg),
                        );
                        ledgers[d].pagings_received += 1;
                        let outcome = ra.perform(rng, config.ra_contenders);
                        if !outcome.success {
                            ra_failures += 1;
                        }
                        ledgers[d].random_accesses += 1;
                        bandwidth.record(TrafficCategory::RandomAccess, config.costs.ra_downlink);
                        pending[d] = Some(Pending {
                            connect_at: now,
                            ra_latency: outcome.latency,
                        });
                    }
                }
            }
            Event::AdaptationPage { device } => {
                let msg = PagingMessage::new().with_record(input.ues()[device]);
                ledgers[device].accumulate(
                    PowerState::LightSleep,
                    config.costs.paging_reception_uptime(&msg),
                );
                ledgers[device].pagings_received += 1;
                bandwidth.record(TrafficCategory::Paging, config.costs.paging_airtime(&msg));
                // Connect, receive the new DRX in an RRCConnectionReconfiguration,
                // get released immediately (paper Sec. III-B).
                let outcome = ra.perform(rng, config.ra_contenders);
                if !outcome.success {
                    ra_failures += 1;
                }
                ledgers[device].random_accesses += 1;
                let new_cycle = plan.device_plans[device]
                    .adaptation
                    .expect("event only scheduled with adaptation")
                    .new_cycle;
                let reconfig = DlMessage::RrcConnectionReconfiguration {
                    new_cycle: Some(new_cycle),
                };
                let session = outcome.latency
                    + config.costs.dl_message_airtime(reconfig)
                    + config
                        .costs
                        .dl_message_airtime(DlMessage::RrcConnectionRelease);
                ledgers[device].accumulate(PowerState::ConnectedWaiting, session);
                bandwidth.record(TrafficCategory::RandomAccess, config.costs.ra_downlink);
                bandwidth.record(
                    TrafficCategory::RrcSignalling,
                    config.costs.dl_message_airtime(reconfig)
                        + config
                            .costs
                            .dl_message_airtime(DlMessage::RrcConnectionRelease),
                );
            }
            Event::ExtendedPage { device } => {
                let dp = &plan.device_plans[device];
                let m = dp.mltc.expect("event only scheduled with mltc");
                let msg = PagingMessage::new().with_mltc(MltcNotification {
                    ue: input.ues()[device],
                    time_remaining: m.time_remaining,
                });
                ledgers[device].accumulate(
                    PowerState::LightSleep,
                    config.costs.paging_reception_uptime(&msg),
                );
                ledgers[device].pagings_received += 1;
                bandwidth.record(TrafficCategory::Paging, config.costs.paging_airtime(&msg));
            }
            Event::Wake { device } => {
                // T322 expired: connect with cause multicastReception.
                let outcome = ra.perform(rng, config.ra_contenders);
                if !outcome.success {
                    ra_failures += 1;
                }
                ledgers[device].random_accesses += 1;
                bandwidth.record(TrafficCategory::RandomAccess, config.costs.ra_downlink);
                pending[device] = Some(Pending {
                    connect_at: now,
                    ra_latency: outcome.latency,
                });
            }
            Event::Transmit { index } => {
                let tx = &plan.transmissions[index];
                // With channel serialization, a payload transfer cannot
                // start while the single NB-IoT carrier is still busy with
                // the previous one; the recipients wait out the queue.
                let data_start = if config.serialize_channel {
                    let start = now.max(channel_free_at);
                    channel_free_at = start + transfer.duration;
                    start
                } else {
                    now
                };
                bandwidth.record(data_category, transfer.duration);
                for &rid in &tx.recipients {
                    let device = input
                        .position_of(rid)
                        .expect("validated plan recipients are group members");
                    if plan.requires_connection {
                        let Some(p) = pending[device].take() else {
                            debug_assert!(false, "recipient {rid} was never connected");
                            continue;
                        };
                        // Active from the connection trigger until the data
                        // starts: at least the RA exchange, plus any wait
                        // for the transmission instant (and any channel
                        // queueing).
                        let span = data_start
                            .saturating_duration_since(p.connect_at)
                            .max(p.ra_latency);
                        if p.connect_at + p.ra_latency > data_start {
                            late_joins += 1;
                        }
                        ledgers[device].accumulate(PowerState::ConnectedWaiting, span);
                    }
                    ledgers[device].accumulate(PowerState::ConnectedReceiving, transfer.duration);
                    if plan.device_plans[device].adaptation.is_some() {
                        // Post-multicast restoration of the original cycle.
                        let restore = DlMessage::RrcConnectionReconfiguration {
                            new_cycle: Some(input.paging_configs()[device].cycle),
                        };
                        let airtime = config.costs.dl_message_airtime(restore);
                        ledgers[device].accumulate(PowerState::ConnectedWaiting, airtime);
                        bandwidth.record(TrafficCategory::RrcSignalling, airtime);
                    }
                }
            }
        }
    }

    CampaignResult {
        mechanism: plan.mechanism.clone(),
        standards_compliant: plan.standards_compliant,
        transmission_count: plan.transmissions.len(),
        mean_wait: plan.mean_wait(),
        ledgers,
        bandwidth,
        late_joins,
        ra_failures,
        horizon,
        transfer,
    }
}
