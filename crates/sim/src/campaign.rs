//! One mechanism, one population, one campaign.
//!
//! This is the planning→execution seam drawn in `docs/ARCHITECTURE.md`:
//! the mechanism's `plan` call (for DR-SC, the set-cover kernels of
//! `docs/KERNELS.md`) runs here, inside every (point × run) work item of
//! the scenario scheduler — so a faster cover solver speeds up every
//! sweep, suite and shard transparently.

use rand::RngCore;

use nbiot_grouping::{GroupingInput, GroupingMechanism};

use crate::{engine, CampaignResult, SimConfig, SimError};

/// Plans and executes one multicast campaign.
///
/// The mechanism's plan is validated against the input before execution,
/// so a buggy mechanism implementation fails loudly instead of producing
/// nonsense metrics.
///
/// # Errors
///
/// * [`SimError::Grouping`] when the mechanism cannot serve the group,
/// * [`SimError::InvalidPlan`] when the produced plan violates a structural
///   invariant (a mechanism bug).
///
/// # Example
///
/// ```
/// use nbiot_grouping::{DaSc, GroupingInput, GroupingParams};
/// use nbiot_sim::{run_campaign, SimConfig};
/// use nbiot_traffic::TrafficMix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pop = TrafficMix::ericsson_city().generate(30, &mut rng)?;
/// let input = GroupingInput::from_population(&pop, GroupingParams::default())?;
/// let result = run_campaign(&DaSc::new(), &input, &SimConfig::default(), &mut rng)?;
/// assert_eq!(result.transmission_count, 1); // DA-SC: single transmission
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_campaign(
    mechanism: &dyn GroupingMechanism,
    input: &GroupingInput,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> Result<CampaignResult, SimError> {
    let plan = mechanism.plan(input, rng)?;
    plan.validate(input)?;
    Ok(engine::execute(input, &plan, config, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_grouping::{DaSc, DrSc, DrSi, GroupingParams, MechanismKind, ScPtm, Unicast};
    use nbiot_traffic::TrafficMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(n: usize, seed: u64) -> GroupingInput {
        let pop = TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        GroupingInput::from_population(&pop, GroupingParams::default()).unwrap()
    }

    #[test]
    fn all_mechanisms_execute() {
        let input = input(60, 1);
        let cfg = SimConfig::default();
        for kind in MechanismKind::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let res = run_campaign(kind.instantiate().as_ref(), &input, &cfg, &mut rng).unwrap();
            assert_eq!(res.device_count(), 60, "{kind}");
            assert!(res.transmission_count >= 1, "{kind}");
        }
    }

    #[test]
    fn dr_sc_light_sleep_equals_unicast_exactly() {
        // The paper's headline Fig. 6(a) claim.
        let input = input(80, 2);
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(10);
        let unicast = run_campaign(&Unicast::new(), &input, &cfg, &mut rng).unwrap();
        let dr_sc = run_campaign(&DrSc::new(), &input, &cfg, &mut rng).unwrap();
        for (a, b) in dr_sc.ledgers.iter().zip(&unicast.ledgers) {
            assert_eq!(a.light_sleep(), b.light_sleep());
        }
    }

    #[test]
    fn dr_si_connects_each_device_once() {
        let input = input(50, 3);
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let res = run_campaign(&DrSi::new(), &input, &cfg, &mut rng).unwrap();
        for ledger in &res.ledgers {
            assert_eq!(ledger.random_accesses, 1);
            assert_eq!(ledger.pagings_received, 1);
        }
    }

    #[test]
    fn scptm_needs_no_random_access() {
        let input = input(40, 4);
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(12);
        let res = run_campaign(&ScPtm::new(), &input, &cfg, &mut rng).unwrap();
        assert!(res.ledgers.iter().all(|l| l.random_accesses == 0));
        // ... but pays for SC-MCCH monitoring in light sleep, making it far
        // costlier than paging-based mechanisms on that axis.
        let mut rng2 = StdRng::seed_from_u64(12);
        let unicast = run_campaign(&Unicast::new(), &input, &cfg, &mut rng2).unwrap();
        assert!(res.mean_light_sleep_ms() > unicast.mean_light_sleep_ms());
    }

    #[test]
    fn campaign_is_reproducible() {
        let input = input(30, 5);
        let cfg = SimConfig::default();
        let run = || {
            let mut rng = StdRng::seed_from_u64(77);
            run_campaign(&DrSi::new(), &input, &cfg, &mut rng).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.ledgers, b.ledgers);
        assert_eq!(a.transmission_count, b.transmission_count);
    }

    #[test]
    fn channel_serialization_penalizes_unicast_not_single_tx() {
        let input = input(80, 6);
        let ideal = SimConfig::default();
        let serialized = SimConfig {
            serialize_channel: true,
            ..SimConfig::default()
        };
        // Unicast: 80 back-to-back transfers congest the single carrier,
        // so devices queue and connected uptime grows substantially.
        let mut rng = StdRng::seed_from_u64(20);
        let uni_ideal = run_campaign(&Unicast::new(), &input, &ideal, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(20);
        let uni_serial = run_campaign(&Unicast::new(), &input, &serialized, &mut rng).unwrap();
        assert!(
            uni_serial.mean_connected_ms() > 1.5 * uni_ideal.mean_connected_ms(),
            "serialized {} vs ideal {}",
            uni_serial.mean_connected_ms(),
            uni_ideal.mean_connected_ms()
        );
        // A single multicast transmission never queues: identical results.
        let mut rng = StdRng::seed_from_u64(21);
        let dasc_ideal = run_campaign(&DaSc::new(), &input, &ideal, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let dasc_serial = run_campaign(&DaSc::new(), &input, &serialized, &mut rng).unwrap();
        assert_eq!(dasc_ideal.ledgers, dasc_serial.ledgers);
    }

    #[test]
    fn serialized_channel_never_overlaps_transfers() {
        // With serialization on, total data airtime fits the horizon
        // extension and late_joins accounting stays sane.
        let input = input(50, 7);
        let cfg = SimConfig {
            serialize_channel: true,
            ..SimConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(30);
        let res = run_campaign(&DrSc::new(), &input, &cfg, &mut rng).unwrap();
        assert!(res.transmission_count >= 1);
        // Every device still received the full payload.
        let transfer = res.transfer.duration;
        assert!(res
            .ledgers
            .iter()
            .all(|l| l.time_in(nbiot_energy::PowerState::ConnectedReceiving) >= transfer));
    }
}
