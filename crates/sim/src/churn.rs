//! Re-grouping under device churn: plan staleness and recomputation.
//!
//! A [`Scenario`](crate::Scenario) may declare a
//! [`ChurnModel`](nbiot_traffic::ChurnModel): the population then evolves
//! across campaign epochs *after* the epoch-0 delivery that the classic
//! metrics measure, and every subsequent epoch re-delivers the content to
//! whatever fleet is present. A multicast plan pages devices at paging
//! occasions derived from their planning-time UE identities, so each
//! epoch a device is either **served** (it existed with the same identity
//! when the current plan was computed) or **stale-missed** (it arrived or
//! handed over since — its planned POs are wrong or absent).
//!
//! The [`RegroupPolicy`] decides when the mechanism re-plans on the
//! evolved [`GroupingInput`] — real planning work, including DR-SC's
//! set-cover solve (`docs/KERNELS.md`), so re-grouping cost is measurable
//! (`bench_report`'s `regroup_churn_*` stages). A re-plan at an epoch
//! boundary serves that epoch exactly; skipping it trades signalling for
//! misses. The outcome feeds two per-mechanism summary metrics:
//! `regroup_count` (plan recomputations per run) and `stale_miss_ratio`
//! (missed device-epochs over **all** post-epoch-0 device-epochs —
//! re-planned epochs miss nothing but still widen the denominator, which
//! keeps the ratio comparable across policies).
//!
//! Zero-churn behaviour is pinned by `tests/churn_invariants.rs`: with
//! all rates zero the population never changes, no policy ever fires, and
//! every summary is bit-identical to the static engine.

use nbiot_des::SeedSequence;
use nbiot_grouping::{GroupingInput, GroupingMechanism, GroupingParams, MulticastPlan};
use nbiot_time::UeId;
use nbiot_traffic::{ChurnEvents, ChurnModel, DeviceId, Population, TrafficMix};

use crate::SimError;

/// When to recompute the grouping plan on the evolved population.
///
/// Every policy is a no-op on a quiet epoch (no arrivals, departures or
/// handovers since the last plan): re-planning an unchanged population
/// would reproduce the same plan, so the simulator skips it — which is
/// also what keeps zero-churn runs bit-identical to the static engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RegroupPolicy {
    /// Keep the epoch-0 plan for the whole campaign; churned devices ride
    /// the stale plan and miss.
    #[default]
    Never,
    /// Re-plan at every epoch boundary where the population changed.
    EveryEpoch,
    /// Re-plan when the stale fraction of the current population (devices
    /// the current plan cannot serve) exceeds this threshold.
    StalenessThreshold(f64),
    /// Patch the stale plan at every changed epoch boundary with the LNS
    /// repair pass ([`nbiot_grouping::repair_plan`]) instead of
    /// re-planning from scratch: kept windows stay, arrivals are attached
    /// or get freshly solved windows. Mechanisms whose plan shape is not
    /// repairable (adaptation, `mltc`, connectionless) fall back to a
    /// full re-plan. Serves every epoch, like [`RegroupPolicy::EveryEpoch`],
    /// at a fraction of the planning cost (`bench_report`'s
    /// `regroup_churn[repair]` stage).
    Repair,
}

impl RegroupPolicy {
    /// Parses a policy from its CLI spelling: `never`, `every-epoch`,
    /// `repair`, or `staleness:T` with a decimal threshold (e.g.
    /// `staleness:0.25`). Returns `None` for anything else. The threshold
    /// is parsed but not range-checked — call [`RegroupPolicy::validate`]
    /// afterwards.
    pub fn by_name(name: &str) -> Option<RegroupPolicy> {
        match name {
            "never" => Some(RegroupPolicy::Never),
            "every-epoch" => Some(RegroupPolicy::EveryEpoch),
            "repair" => Some(RegroupPolicy::Repair),
            _ => name
                .strip_prefix("staleness:")
                .and_then(|t| t.parse().ok())
                .map(RegroupPolicy::StalenessThreshold),
        }
    }

    /// The CLI spelling [`RegroupPolicy::by_name`] parses, round-trippable
    /// for valid policies.
    pub fn name(&self) -> String {
        match *self {
            RegroupPolicy::Never => "never".into(),
            RegroupPolicy::EveryEpoch => "every-epoch".into(),
            RegroupPolicy::StalenessThreshold(t) => format!("staleness:{t}"),
            RegroupPolicy::Repair => "repair".into(),
        }
    }

    /// Checks a threshold is a finite fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidRegroupThreshold`] otherwise.
    pub fn validate(&self) -> Result<(), SimError> {
        if let RegroupPolicy::StalenessThreshold(t) = *self {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(SimError::InvalidRegroupThreshold { threshold: t });
            }
        }
        Ok(())
    }
}

/// Per-mechanism churn outcome of one run, folded into
/// [`MechanismSummary`](crate::MechanismSummary).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct ChurnOutcome {
    /// Plan recomputations across the run's epochs.
    pub regroups: f64,
    /// Stale-missed device-epochs over **all** post-epoch-0
    /// device-epochs — quiet and freshly re-planned epochs count in the
    /// denominator with zero misses, so the ratio is comparable across
    /// policies (an `EveryEpoch` run reports 0, a `Never` run the full
    /// accumulated staleness, over the same base).
    pub stale_miss_ratio: f64,
}

/// Summed plan-improvement economics of one run's planning work (epoch-0
/// plan plus every regroup-epoch plan), folded into the four
/// `cover_cost_*`/`improve_*` fields of
/// [`MechanismSummary`](crate::MechanismSummary). Plans without an
/// improvement record (greedy, baselines) contribute zeros, so the sums
/// are exactly the tabu/repair work the run performed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct RegroupWork {
    /// Summed `initial_cost` (plan cost before improvement/repair).
    pub cover_cost_initial: f64,
    /// Summed `final_cost` (plan cost after improvement/repair).
    pub cover_cost_final: f64,
    /// Summed accepted improvement moves / attached arrivals.
    pub improve_moves: f64,
    /// Summed spent iteration budget / freshly re-planned leftovers.
    pub improve_budget: f64,
}

impl RegroupWork {
    /// Accumulates one plan's improvement record (no-op when absent).
    pub fn absorb(&mut self, plan: &MulticastPlan) {
        if let Some(stats) = plan.improvement {
            self.cover_cost_initial += f64::from(stats.initial_cost);
            self.cover_cost_final += f64::from(stats.final_cost);
            self.improve_moves += f64::from(stats.moves_accepted);
            self.improve_budget += f64::from(stats.budget_spent);
        }
    }
}

/// RNG stream ids of the churn machinery inside one (point × run) item.
/// The static path uses streams 0 (population), 1 (baseline) and `2 + i`
/// (mechanism `i`); churn streams branch through [`SeedSequence::child`]
/// at ids far above any plausible mechanism count so the stream spaces
/// can never collide.
const CHURN_EVOLVE_CHILD: u64 = 1 << 40;
const REGROUP_CHILD_BASE: u64 = (1 << 40) + 1;

/// The evolved population at each epoch boundary, shared by every
/// mechanism of the run (the fleet does not depend on who is planning).
pub(crate) struct ChurnTimeline {
    epochs: Vec<(Population, ChurnEvents)>,
}

impl ChurnTimeline {
    /// Evolves `initial` across the model's epochs, drawing from the
    /// run's dedicated churn streams (`run_seq.child(CHURN).rng(epoch)`).
    ///
    /// # Errors
    ///
    /// Churn-model validation failures ([`SimError::Traffic`]).
    pub fn evolve(
        model: &ChurnModel,
        mix: &TrafficMix,
        initial: &Population,
        run_seq: &SeedSequence,
    ) -> Result<ChurnTimeline, SimError> {
        let base_size = initial.len();
        let mut next_id = base_size as u32;
        let mut epochs: Vec<(Population, ChurnEvents)> = Vec::with_capacity(model.epochs as usize);
        for epoch in 1..=u64::from(model.epochs) {
            let mut rng = run_seq.child(CHURN_EVOLVE_CHILD).rng(epoch);
            let previous = epochs.last().map_or(initial, |(pop, _)| pop);
            let step = model.step(mix, previous, base_size, &mut next_id, &mut rng)?;
            epochs.push(step);
        }
        Ok(ChurnTimeline { epochs })
    }
}

/// The identity snapshot a plan was computed against: `(id, ue)` pairs in
/// device order. Device order is id-ascending by construction (survivors
/// keep their order, arrivals append with fresh higher ids), so staleness
/// lookups are binary searches.
///
/// This is the staleness primitive shared by the batch simulator (the
/// [`RegroupPolicy`] trajectory walk) and the long-lived grouping service
/// (`nbiot-service`), which snapshots the fleet at plan time and asks
/// [`PlannedFleet::serves`] per device on later requests.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFleet {
    members: Vec<(DeviceId, UeId)>,
}

impl PlannedFleet {
    /// Captures the identity snapshot of `pop` in device order.
    pub fn snapshot(pop: &Population) -> PlannedFleet {
        PlannedFleet {
            members: (0..pop.len()).map(|i| (pop.id(i), pop.ues()[i])).collect(),
        }
    }

    /// Rebuilds a snapshot from stored `(id, ue)` pairs (a service
    /// snapshot restoring its plan state). Pairs must be id-ascending —
    /// the order [`PlannedFleet::snapshot`] records — or staleness
    /// lookups would miss.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when ids are not strictly ascending.
    pub fn from_members(members: Vec<(DeviceId, UeId)>) -> PlannedFleet {
        debug_assert!(
            members.windows(2).all(|w| w[0].0 < w[1].0),
            "planned-fleet members must be id-ascending"
        );
        PlannedFleet { members }
    }

    /// The `(id, ue)` pairs in device order.
    pub fn members(&self) -> &[(DeviceId, UeId)] {
        &self.members
    }

    /// Whether the plan serves this device: same id, same paging identity.
    pub fn serves(&self, id: DeviceId, ue: UeId) -> bool {
        self.members
            .binary_search_by_key(&id, |&(k, _)| k)
            .is_ok_and(|i| self.members[i].1 == ue)
    }

    /// The fraction of `pop`'s devices this snapshot cannot serve
    /// (departed-then-readmitted ids, handovers, and arrivals all count) —
    /// the staleness measure [`RegroupPolicy::StalenessThreshold`]
    /// compares against. Returns `0.0` for an empty population.
    pub fn stale_fraction(&self, pop: &Population) -> f64 {
        if pop.is_empty() {
            return 0.0;
        }
        let missed = (0..pop.len())
            .filter(|&i| !self.serves(pop.id(i), pop.ues()[i]))
            .count();
        missed as f64 / pop.len() as f64
    }
}

/// The policy's decision trajectory across a run's epochs: which epoch
/// boundaries re-plan, and the resulting outcome.
///
/// Staleness is *identity-based* (a device is served iff it existed with
/// the same paging identity at the last plan), deliberately independent
/// of which mechanism planned — so the trajectory is computed **once per
/// work item** and shared by every mechanism; only the re-planning work
/// itself ([`replan_mechanism`]) is per-mechanism.
pub(crate) struct RegroupTrajectory {
    /// Timeline epoch indices (0-based) whose boundary re-plans.
    pub regroup_epochs: Vec<usize>,
    /// The folded churn metrics of the run.
    pub outcome: ChurnOutcome,
}

/// Walks the timeline under `policy`: per epoch, count the devices the
/// current plan cannot serve, decide whether to re-plan, and account the
/// misses of the epochs that ride a stale plan.
pub(crate) fn plan_trajectory(
    timeline: &ChurnTimeline,
    policy: RegroupPolicy,
    initial: &Population,
) -> RegroupTrajectory {
    let mut planned = PlannedFleet::snapshot(initial);
    let mut events_since_plan = 0usize;
    let mut regroup_epochs = Vec::new();
    let mut stale_misses = 0usize;
    let mut device_epochs = 0usize;
    for (epoch, (pop, events)) in timeline.epochs.iter().enumerate() {
        events_since_plan += events.total();
        device_epochs += pop.len();
        let stale = (0..pop.len())
            .filter(|&i| !planned.serves(pop.id(i), pop.ues()[i]))
            .count();
        let regroup = events_since_plan > 0
            && match policy {
                RegroupPolicy::Never => false,
                RegroupPolicy::EveryEpoch | RegroupPolicy::Repair => true,
                // A fully-departed fleet has nothing left to serve: its
                // staleness is defined as 0.0, not the 0/0 NaN the bare
                // division produced (NaN compared false only by IEEE
                // accident, and any later `>=`/`partial_cmp` refactor
                // would have silently changed the decision).
                RegroupPolicy::StalenessThreshold(t) => {
                    !pop.is_empty() && stale as f64 / pop.len() as f64 > t
                }
            };
        if regroup {
            regroup_epochs.push(epoch);
            planned = PlannedFleet::snapshot(pop);
            events_since_plan = 0;
        } else {
            stale_misses += stale;
        }
    }
    RegroupTrajectory {
        outcome: ChurnOutcome {
            regroups: regroup_epochs.len() as f64,
            stale_miss_ratio: if device_epochs == 0 {
                0.0
            } else {
                stale_misses as f64 / device_epochs as f64
            },
        },
        regroup_epochs,
    }
}

/// One mechanism's identity within a run's re-planning pass: which
/// planner, its index (selecting the dedicated RNG stream), and the
/// epoch-0 plan the first [`RegroupPolicy::Repair`] patch starts from.
pub(crate) struct ReplanTarget<'a> {
    pub index: usize,
    pub mechanism: &'a dyn GroupingMechanism,
    pub epoch0_plan: &'a MulticastPlan,
}

/// Executes one mechanism's re-planning work at every epoch the
/// trajectory regroups: under [`RegroupPolicy::Repair`] the stale plan is
/// patched via [`nbiot_grouping::repair_plan`] (falling back to a full
/// re-plan for non-repairable shapes); every other policy runs the real
/// planner on the evolved [`GroupingInput`], drawing from the mechanism's
/// dedicated stream (`run_seq.child(REGROUP_BASE + mechanism).rng(epoch +
/// 1)`) — this is the set-cover cost the `regroup_count` summary
/// attributes. Returns the summed improvement/repair economics of the
/// regroup-epoch plans (the epoch-0 plan is absorbed by the caller).
///
/// # Errors
///
/// Grouping-input or plan failures on an evolved population — surfaced
/// exactly like their static-path counterparts.
pub(crate) fn replan_mechanism(
    timeline: &ChurnTimeline,
    trajectory: &RegroupTrajectory,
    grouping: GroupingParams,
    target: &ReplanTarget<'_>,
    run_seq: &SeedSequence,
    policy: RegroupPolicy,
) -> Result<RegroupWork, SimError> {
    let mut work = RegroupWork::default();
    // The plan the next repair patches: epoch-0's until the first regroup.
    let mut current: Option<MulticastPlan> = None;
    for &epoch in &trajectory.regroup_epochs {
        let input = GroupingInput::from_population(&timeline.epochs[epoch].0, grouping)?;
        let repaired = if policy == RegroupPolicy::Repair {
            let stale = current.as_ref().unwrap_or(target.epoch0_plan);
            nbiot_grouping::repair_plan(stale, &input).transpose()?
        } else {
            None
        };
        let plan = match repaired {
            Some(plan) => plan,
            None => {
                let mut rng = run_seq
                    .child(REGROUP_CHILD_BASE + target.index as u64)
                    .rng(epoch as u64 + 1);
                target.mechanism.plan(&input, &mut rng)?
            }
        };
        plan.validate(&input)?;
        work.absorb(&plan);
        if policy == RegroupPolicy::Repair {
            current = Some(plan);
        }
    }
    Ok(work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_grouping::MechanismKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn initial(n: usize) -> Population {
        TrafficMix::mobility_churn()
            .generate(n, &mut StdRng::seed_from_u64(3))
            .unwrap()
    }

    fn churny(epochs: u32) -> ChurnModel {
        ChurnModel {
            epochs,
            departure_rate: 0.1,
            arrival_rate: 0.1,
            handover_rate: 0.2,
        }
    }

    fn run_under(policy: RegroupPolicy, model: &ChurnModel) -> (ChurnOutcome, RegroupWork) {
        let mix = TrafficMix::mobility_churn();
        let pop = initial(60);
        let seq = SeedSequence::new(42).child(0);
        let timeline = ChurnTimeline::evolve(model, &mix, &pop, &seq).unwrap();
        let trajectory = plan_trajectory(&timeline, policy, &pop);
        assert_eq!(
            trajectory.regroup_epochs.len() as f64,
            trajectory.outcome.regroups,
            "regroup epoch list and count must agree"
        );
        let mechanism = MechanismKind::DrSc.instantiate();
        let input = GroupingInput::from_population(&pop, GroupingParams::default()).unwrap();
        let epoch0 = mechanism
            .plan(&input, &mut seq.rng(0))
            .expect("epoch-0 plan");
        let work = replan_mechanism(
            &timeline,
            &trajectory,
            GroupingParams::default(),
            &ReplanTarget {
                index: 0,
                mechanism: mechanism.as_ref(),
                epoch0_plan: &epoch0,
            },
            &seq,
            policy,
        )
        .unwrap();
        (trajectory.outcome, work)
    }

    fn outcome_under(policy: RegroupPolicy, model: &ChurnModel) -> ChurnOutcome {
        run_under(policy, model).0
    }

    #[test]
    fn never_policy_accumulates_misses_without_regrouping() {
        let outcome = outcome_under(RegroupPolicy::Never, &churny(5));
        assert_eq!(outcome.regroups, 0.0);
        assert!(
            outcome.stale_miss_ratio > 0.1,
            "5 churned epochs must leave stale devices: {outcome:?}"
        );
    }

    #[test]
    fn every_epoch_policy_serves_every_epoch() {
        let outcome = outcome_under(RegroupPolicy::EveryEpoch, &churny(5));
        assert_eq!(outcome.regroups, 5.0, "every churned epoch re-plans");
        assert_eq!(outcome.stale_miss_ratio, 0.0, "re-planning serves all");
    }

    #[test]
    fn threshold_policy_sits_between_the_extremes() {
        let never = outcome_under(RegroupPolicy::Never, &churny(6));
        let always = outcome_under(RegroupPolicy::EveryEpoch, &churny(6));
        // Per-epoch staleness is ~25-30 % under churny(), so a 50 %
        // threshold needs ~2 epochs of drift to fire: the policy must
        // regroup sometimes, but not every epoch.
        let some = outcome_under(RegroupPolicy::StalenessThreshold(0.5), &churny(6));
        assert!(
            some.regroups >= 1.0 && some.regroups < 6.0,
            "threshold should regroup sometimes but not always: {some:?}"
        );
        assert!(
            some.stale_miss_ratio < never.stale_miss_ratio,
            "regrouping must reduce misses: {some:?} vs {never:?}"
        );
        assert!(some.stale_miss_ratio >= always.stale_miss_ratio);
    }

    #[test]
    fn quiet_epochs_never_trigger_any_policy() {
        let zero = ChurnModel {
            epochs: 4,
            departure_rate: 0.0,
            arrival_rate: 0.0,
            handover_rate: 0.0,
        };
        for policy in [
            RegroupPolicy::Never,
            RegroupPolicy::EveryEpoch,
            RegroupPolicy::StalenessThreshold(0.0),
            RegroupPolicy::Repair,
        ] {
            let (outcome, work) = run_under(policy, &zero);
            assert_eq!(outcome, ChurnOutcome::default(), "{policy:?}");
            assert_eq!(work, RegroupWork::default(), "{policy:?}");
        }
    }

    #[test]
    fn fully_departed_fleet_defines_staleness_as_zero() {
        // ChurnModel::step keeps one survivor by construction, so the
        // empty-fleet epoch is synthesized directly: every device left
        // and nobody arrived. The threshold policy's staleness ratio on
        // an empty population used to be the 0/0 NaN (which compared
        // false only by IEEE accident); it is defined as 0.0 now, so the
        // empty epochs must neither fire a regroup nor poison the
        // outcome.
        let pop = initial(30);
        let gone = ChurnEvents {
            arrivals: 0,
            departures: pop.len(),
            handovers: 0,
        };
        let timeline = ChurnTimeline {
            epochs: vec![(pop.empty_like(0), gone); 3],
        };
        for threshold in [0.0, 0.5, 1.0] {
            let t = plan_trajectory(
                &timeline,
                RegroupPolicy::StalenessThreshold(threshold),
                &pop,
            );
            assert_eq!(t.outcome.regroups, 0.0, "threshold {threshold}");
            assert!(
                t.outcome.stale_miss_ratio.is_finite(),
                "threshold {threshold}"
            );
            assert_eq!(t.outcome.stale_miss_ratio, 0.0, "threshold {threshold}");
        }
    }

    #[test]
    fn repair_policy_serves_every_epoch_and_accounts_its_work() {
        let (outcome, work) = run_under(RegroupPolicy::Repair, &churny(5));
        let (every, _) = run_under(RegroupPolicy::EveryEpoch, &churny(5));
        assert_eq!(outcome, every, "repair decides exactly like EveryEpoch");
        // DR-SC plans are repairable, and 5 churned epochs patch real
        // arrivals: the repair economics must show up in the totals.
        assert!(work.cover_cost_initial > 0.0, "{work:?}");
        assert!(work.cover_cost_final > 0.0, "{work:?}");
        assert!(
            work.improve_moves + work.improve_budget > 0.0,
            "churned epochs must attach or re-plan arrivals: {work:?}"
        );
    }

    #[test]
    fn timeline_is_reproducible_and_stream_isolated() {
        let mix = TrafficMix::mobility_churn();
        let pop = initial(40);
        let seq = SeedSequence::new(7).child(3);
        let a = ChurnTimeline::evolve(&churny(3), &mix, &pop, &seq).unwrap();
        let b = ChurnTimeline::evolve(&churny(3), &mix, &pop, &seq).unwrap();
        for ((pa, ea), (pb, eb)) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(pa, pb);
            assert_eq!(ea, eb);
        }
        // A different run derives a different fleet trajectory.
        let c = ChurnTimeline::evolve(&churny(3), &mix, &pop, &seq.child(1)).unwrap();
        assert_ne!(a.epochs[0].0, c.epochs[0].0);
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            RegroupPolicy::Never,
            RegroupPolicy::EveryEpoch,
            RegroupPolicy::Repair,
            RegroupPolicy::StalenessThreshold(0.25),
        ] {
            assert_eq!(RegroupPolicy::by_name(&policy.name()), Some(policy));
        }
        assert_eq!(RegroupPolicy::by_name("staleness:"), None);
        assert_eq!(RegroupPolicy::by_name("sometimes"), None);
        // Out-of-range thresholds parse but fail validation.
        let wild = RegroupPolicy::by_name("staleness:7.5").unwrap();
        assert!(wild.validate().is_err());
    }

    #[test]
    fn planned_fleet_staleness_tracks_identity_changes() {
        let pop = initial(30);
        let planned = PlannedFleet::snapshot(&pop);
        assert_eq!(planned.members().len(), 30);
        assert_eq!(planned.stale_fraction(&pop), 0.0);
        let rebuilt = PlannedFleet::from_members(planned.members().to_vec());
        assert_eq!(rebuilt, planned);
        // A handover makes exactly one device stale.
        let mut moved = pop.clone();
        moved.set_ue(4, nbiot_time::UeId(0x5EED));
        assert!(!planned.serves(moved.id(4), moved.ues()[4]));
        assert!((planned.stale_fraction(&moved) - 1.0 / 30.0).abs() < 1e-12);
        // A departure shrinks the fleet without going stale; an arrival
        // the plan never saw is stale.
        let mut shrunk = pop.clone();
        shrunk.remove_row(7);
        assert_eq!(planned.stale_fraction(&shrunk), 0.0);
        let mut grown = pop.clone();
        grown.push(nbiot_traffic::DeviceProfile {
            id: nbiot_traffic::DeviceId(99),
            ..pop.device(0)
        });
        assert!((planned.stale_fraction(&grown) - 1.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn regroup_threshold_validation() {
        assert!(RegroupPolicy::Never.validate().is_ok());
        assert!(RegroupPolicy::EveryEpoch.validate().is_ok());
        assert!(RegroupPolicy::Repair.validate().is_ok());
        assert!(RegroupPolicy::StalenessThreshold(0.5).validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(
                matches!(
                    RegroupPolicy::StalenessThreshold(bad).validate(),
                    Err(SimError::InvalidRegroupThreshold { .. })
                ),
                "{bad}"
            );
        }
    }
}
