//! The paper's experimental methodology: same populations, mechanisms
//! compared against the per-run unicast baseline, averaged over runs.
//!
//! # Parallel execution
//!
//! Every run is a pure function of its [`SeedSequence`] child (seeds derive
//! per-run via `seq.child(run)`), so runs fan out across
//! [`ExperimentConfig::threads`] OS threads and their per-run records are
//! folded back **in run order** on the coordinating thread. The fold is the
//! same push sequence the serial loop performs, which makes every
//! [`Summary`] field bit-identical regardless of the thread count —
//! verified by `comparison_is_thread_count_invariant` below. Each worker
//! instantiates its mechanism set once and reuses it across all of its
//! runs instead of re-boxing a planner per run.

use core::fmt;

use nbiot_des::{RunningStats, SeedSequence, Summary};
use nbiot_energy::PowerProfile;
use nbiot_grouping::{GroupingInput, GroupingMechanism, GroupingParams, MechanismKind, Unicast};
use nbiot_traffic::TrafficMix;

use crate::{run_campaign, SimConfig, SimError};

/// Configuration of one experiment (one point of a figure).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Device population mix.
    pub mix: TrafficMix,
    /// Group size (the paper varies 100–1000).
    pub n_devices: usize,
    /// Number of repetitions (the paper uses 100).
    pub runs: u32,
    /// Master seed; every run derives its own independent streams.
    pub master_seed: u64,
    /// Grouping parameters (start, TI, optional transmission override).
    pub grouping: GroupingParams,
    /// PHY/protocol configuration.
    pub sim: SimConfig,
    /// Power profile used for the supplementary energy-in-Joules metric.
    pub power: PowerProfile,
    /// Worker threads for the run fan-out: `1` executes serially on the
    /// calling thread, `0` uses all available cores, any other value that
    /// many threads. Results are bit-identical for every setting.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            mix: TrafficMix::ericsson_city(),
            n_devices: 100,
            runs: 10,
            master_seed: 0x4E42_494F_5421, // "NBIOT!"
            grouping: GroupingParams::default(),
            sim: SimConfig::default(),
            power: PowerProfile::default(),
            threads: 1,
        }
    }
}

/// Aggregated metrics of one mechanism across all runs of an experiment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MechanismSummary {
    /// Mechanism name.
    pub mechanism: String,
    /// Whether every executed plan was standards-compliant.
    pub standards_compliant: bool,
    /// Relative light-sleep uptime increase vs unicast (Fig. 6(a)).
    pub rel_light_sleep: Summary,
    /// Relative connected-mode uptime increase vs unicast (Fig. 6(b)).
    pub rel_connected: Summary,
    /// Number of payload transmissions (Fig. 7).
    pub transmissions: Summary,
    /// Mean device wait before its transmission, in seconds.
    pub mean_wait_s: Summary,
    /// Mean per-device energy in millijoules (supplementary).
    pub mean_energy_mj: Summary,
    /// Devices finishing random access after their transmission started.
    pub late_joins: Summary,
}

/// The result of comparing several mechanisms under one configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComparisonResult {
    /// Group size.
    pub n_devices: usize,
    /// Number of runs aggregated.
    pub runs: u32,
    /// Per-mechanism summaries, in the order requested.
    pub mechanisms: Vec<MechanismSummary>,
}

impl ComparisonResult {
    /// Looks up a mechanism summary by name (e.g. `"DR-SC"`).
    pub fn mechanism(&self, name: &str) -> Option<&MechanismSummary> {
        self.mechanisms.iter().find(|m| m.mechanism == name)
    }
}

impl fmt::Display for ComparisonResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} devices, {} runs:", self.n_devices, self.runs)?;
        for m in &self.mechanisms {
            writeln!(
                f,
                "  {:<8} light-sleep {:+.3}% connected {:+.3}% tx {:.1}",
                m.mechanism,
                m.rel_light_sleep.mean * 100.0,
                m.rel_connected.mean * 100.0,
                m.transmissions.mean
            )?;
        }
        Ok(())
    }
}

/// The per-run observations for one mechanism (one row of a run record).
#[derive(Debug, Clone, Copy)]
struct MechRun {
    rel_light_sleep: f64,
    rel_connected: f64,
    transmissions: f64,
    mean_wait_s: f64,
    mean_energy_mj: f64,
    late_joins: f64,
    compliant: bool,
}

/// Resolves a thread-count setting: `0` means all available cores, and no
/// point spawning more workers than there are runs.
fn effective_threads(requested: usize, runs: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, runs.max(1))
}

/// Executes `runs` independent jobs across `threads` workers and returns
/// their results **indexed by run**, or the error of the lowest-numbered
/// failing run — exactly what serial execution would surface.
///
/// `init` builds one worker-local state (e.g. the instantiated mechanism
/// set), shared by all runs that worker executes. Each worker stops at its
/// own first error; the runs it skips come *after* that error in run
/// order, so the run-order scan below still finds the globally first
/// failure deterministically while avoiding wasted work on the error
/// path.
fn fan_out_runs<T, S, I, J>(
    runs: usize,
    threads: usize,
    init: I,
    job: J,
) -> Result<Vec<T>, SimError>
where
    T: Send,
    I: Fn() -> S + Sync,
    J: Fn(&mut S, usize) -> Result<T, SimError> + Sync,
{
    let threads = effective_threads(threads, runs);
    let mut records: Vec<Option<Result<T, SimError>>> = Vec::new();
    records.resize_with(runs, || None);
    let chunk_size = runs.div_ceil(threads);
    let run_chunk = |chunk_idx: usize, chunk: &mut [Option<Result<T, SimError>>]| {
        let mut state = init();
        for (offset, slot) in chunk.iter_mut().enumerate() {
            let run = chunk_idx * chunk_size + offset;
            let record = job(&mut state, run);
            let failed = record.is_err();
            *slot = Some(record);
            if failed {
                break;
            }
        }
    };
    if threads <= 1 {
        run_chunk(0, &mut records);
    } else {
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in records.chunks_mut(chunk_size).enumerate() {
                let run_chunk = &run_chunk;
                scope.spawn(move || run_chunk(chunk_idx, chunk));
            }
        });
    }
    let mut out = Vec::with_capacity(runs);
    for slot in records {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
            None => unreachable!("runs are only skipped after an earlier error in their chunk"),
        }
    }
    Ok(out)
}

/// One comparison run: fresh population, unicast baseline, every requested
/// mechanism on the same population. `mechanisms` are the worker's reused
/// planner instances, aligned with `kinds`.
fn comparison_run(
    config: &ExperimentConfig,
    kinds: &[MechanismKind],
    mechanisms: &[Box<dyn GroupingMechanism>],
    run: usize,
) -> Result<Vec<MechRun>, SimError> {
    let seq = SeedSequence::new(config.master_seed);
    let run_seq = seq.child(run as u64);
    let population = config.mix.generate(config.n_devices, &mut run_seq.rng(0))?;
    let input = GroupingInput::from_population(&population, config.grouping)?;
    let baseline = run_campaign(&Unicast::new(), &input, &config.sim, &mut run_seq.rng(1))?;
    let mut rows = Vec::with_capacity(kinds.len());
    for (i, (kind, mechanism)) in kinds.iter().zip(mechanisms).enumerate() {
        let result = if *kind == MechanismKind::Unicast {
            baseline.clone()
        } else {
            run_campaign(
                mechanism.as_ref(),
                &input,
                &config.sim,
                &mut run_seq.rng(2 + i as u64),
            )?
        };
        let rel = result.mean_relative_vs(&baseline);
        rows.push(MechRun {
            rel_light_sleep: rel.light_sleep,
            rel_connected: rel.connected,
            transmissions: result.transmission_count as f64,
            mean_wait_s: result.mean_wait.as_secs_f64(),
            mean_energy_mj: result.mean_energy_mj(&config.power),
            late_joins: result.late_joins as f64,
            compliant: result.standards_compliant,
        });
    }
    Ok(rows)
}

/// Runs the paper's comparison methodology.
///
/// For every run: generate a fresh population, execute the unicast
/// baseline, then every requested mechanism on the *same* population, and
/// accumulate per-run means of the relative metrics. Runs execute across
/// [`ExperimentConfig::threads`] workers; the aggregation folds the
/// per-run records in run order, so the result is bit-identical for every
/// thread count.
///
/// # Errors
///
/// Propagates population, grouping and plan-validation failures (the
/// lowest-numbered failing run wins, matching serial execution), and
/// rejects degenerate configurations.
pub fn run_comparison(
    config: &ExperimentConfig,
    kinds: &[MechanismKind],
) -> Result<ComparisonResult, SimError> {
    if config.n_devices == 0 || config.runs == 0 {
        return Err(SimError::DegenerateExperiment {
            n_devices: config.n_devices,
            runs: config.runs,
        });
    }
    let records = fan_out_runs(
        config.runs as usize,
        config.threads,
        || {
            kinds
                .iter()
                .map(|k| k.instantiate())
                .collect::<Vec<Box<dyn GroupingMechanism>>>()
        },
        |mechanisms, run| comparison_run(config, kinds, mechanisms, run),
    )?;

    let mut acc: Vec<(MechanismKind, MechStats)> =
        kinds.iter().map(|&k| (k, MechStats::default())).collect();
    for rows in records {
        for ((_, stats), row) in acc.iter_mut().zip(rows) {
            stats.rel_light_sleep.push(row.rel_light_sleep);
            stats.rel_connected.push(row.rel_connected);
            stats.transmissions.push(row.transmissions);
            stats.mean_wait_s.push(row.mean_wait_s);
            stats.mean_energy_mj.push(row.mean_energy_mj);
            stats.late_joins.push(row.late_joins);
            stats.compliant &= row.compliant;
        }
    }

    Ok(ComparisonResult {
        n_devices: config.n_devices,
        runs: config.runs,
        mechanisms: acc
            .into_iter()
            .map(|(kind, s)| MechanismSummary {
                mechanism: kind.to_string(),
                standards_compliant: s.compliant,
                rel_light_sleep: s.rel_light_sleep.summary(),
                rel_connected: s.rel_connected.summary(),
                transmissions: s.transmissions.summary(),
                mean_wait_s: s.mean_wait_s.summary(),
                mean_energy_mj: s.mean_energy_mj.summary(),
                late_joins: s.late_joins.summary(),
            })
            .collect(),
    })
}

#[derive(Debug, Clone)]
struct MechStats {
    rel_light_sleep: RunningStats,
    rel_connected: RunningStats,
    transmissions: RunningStats,
    mean_wait_s: RunningStats,
    mean_energy_mj: RunningStats,
    late_joins: RunningStats,
    compliant: bool,
}

impl Default for MechStats {
    fn default() -> Self {
        MechStats {
            rel_light_sleep: RunningStats::new(),
            rel_connected: RunningStats::new(),
            transmissions: RunningStats::new(),
            mean_wait_s: RunningStats::new(),
            mean_energy_mj: RunningStats::new(),
            late_joins: RunningStats::new(),
            compliant: true,
        }
    }
}

/// One point of a group-size sweep (Fig. 7).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// Group size.
    pub n_devices: usize,
    /// Transmission-count statistics for the swept mechanism.
    pub transmissions: Summary,
    /// Transmissions as a fraction of the group size.
    pub ratio_to_devices: Summary,
}

/// Sweeps group sizes for one mechanism — the Fig. 7 x-axis.
///
/// Runs of each point fan out across [`ExperimentConfig::threads`] workers
/// with the same run-order fold as [`run_comparison`], so every point is
/// bit-identical for every thread count.
///
/// # Errors
///
/// Propagates population, grouping and plan-validation failures.
pub fn sweep_devices(
    base: &ExperimentConfig,
    kind: MechanismKind,
    sizes: &[usize],
) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let mut config = base.clone();
        config.n_devices = n;
        let records = fan_out_runs(
            config.runs as usize,
            config.threads,
            || kind.instantiate(),
            |mechanism, run| {
                let seq = SeedSequence::new(config.master_seed);
                let run_seq = seq.child(run as u64);
                let population = config.mix.generate(n, &mut run_seq.rng(0))?;
                let input = GroupingInput::from_population(&population, config.grouping)?;
                let result = run_campaign(
                    mechanism.as_ref(),
                    &input,
                    &config.sim,
                    &mut run_seq.rng(2),
                )?;
                Ok(result.transmission_count)
            },
        )?;
        let mut transmissions = RunningStats::new();
        let mut ratio = RunningStats::new();
        for count in records {
            transmissions.push(count as f64);
            ratio.push(count as f64 / n as f64);
        }
        points.push(SweepPoint {
            n_devices: n,
            transmissions: transmissions.summary(),
            ratio_to_devices: ratio.summary(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            n_devices: 30,
            runs: 3,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut cfg = small_config();
        cfg.runs = 0;
        assert!(matches!(
            run_comparison(&cfg, &[MechanismKind::DrSc]),
            Err(SimError::DegenerateExperiment { .. })
        ));
        let mut cfg2 = small_config();
        cfg2.n_devices = 0;
        assert!(matches!(
            run_comparison(&cfg2, &[MechanismKind::DrSc]),
            Err(SimError::DegenerateExperiment { .. })
        ));
    }

    #[test]
    fn unicast_vs_itself_is_zero() {
        let cmp = run_comparison(&small_config(), &[MechanismKind::Unicast]).unwrap();
        let u = cmp.mechanism("Unicast").unwrap();
        assert!(u.rel_light_sleep.mean.abs() < 1e-12);
        assert!(u.rel_connected.mean.abs() < 1e-12);
    }

    #[test]
    fn paper_mechanism_ordering_holds() {
        // Fig. 6(a): DR-SC adds nothing; DR-SI adds a sliver; DA-SC more.
        let cmp = run_comparison(&small_config(), &MechanismKind::PAPER_MECHANISMS).unwrap();
        let dr_sc = cmp.mechanism("DR-SC").unwrap().rel_light_sleep.mean;
        let da_sc = cmp.mechanism("DA-SC").unwrap().rel_light_sleep.mean;
        let dr_si = cmp.mechanism("DR-SI").unwrap().rel_light_sleep.mean;
        assert!(dr_sc.abs() < 1e-9, "DR-SC {dr_sc}");
        assert!(dr_si > 0.0, "DR-SI {dr_si}");
        assert!(da_sc > dr_si, "DA-SC {da_sc} vs DR-SI {dr_si}");
    }

    #[test]
    fn single_transmission_mechanisms() {
        let cmp = run_comparison(
            &small_config(),
            &[
                MechanismKind::DaSc,
                MechanismKind::DrSi,
                MechanismKind::Unicast,
            ],
        )
        .unwrap();
        assert_eq!(cmp.mechanism("DA-SC").unwrap().transmissions.mean, 1.0);
        assert_eq!(cmp.mechanism("DR-SI").unwrap().transmissions.mean, 1.0);
        assert_eq!(cmp.mechanism("Unicast").unwrap().transmissions.mean, 30.0);
    }

    #[test]
    fn sweep_produces_requested_points() {
        let cfg = ExperimentConfig {
            runs: 2,
            ..small_config()
        };
        let points = sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n_devices, 10);
        assert!(points[1].transmissions.mean >= points[0].transmissions.mean);
    }

    #[test]
    fn comparison_is_reproducible() {
        let a = run_comparison(&small_config(), &[MechanismKind::DrSi]).unwrap();
        let b = run_comparison(&small_config(), &[MechanismKind::DrSi]).unwrap();
        assert_eq!(
            a.mechanism("DR-SI").unwrap().rel_connected.mean,
            b.mechanism("DR-SI").unwrap().rel_connected.mean
        );
    }

    #[test]
    fn comparison_is_thread_count_invariant() {
        // The acceptance bar: every Summary field of every mechanism must
        // be bit-identical between serial and parallel execution.
        let base = ExperimentConfig {
            n_devices: 25,
            runs: 6,
            ..ExperimentConfig::default()
        };
        let serial = run_comparison(&base, &MechanismKind::ALL).unwrap();
        for threads in [2, 3, 8, 0] {
            let parallel = run_comparison(
                &ExperimentConfig {
                    threads,
                    ..base.clone()
                },
                &MechanismKind::ALL,
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let base = ExperimentConfig {
            runs: 4,
            ..small_config()
        };
        let serial = sweep_devices(&base, MechanismKind::DrSc, &[10, 25]).unwrap();
        let parallel = sweep_devices(
            &ExperimentConfig {
                threads: 8,
                ..base
            },
            MechanismKind::DrSc,
            &[10, 25],
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_errors_match_serial_errors() {
        // A TI shorter than the shortest cycle fails in every run; the
        // parallel path must surface the same (first-run) error.
        let mut cfg = small_config();
        cfg.runs = 5;
        cfg.grouping.ti =
            nbiot_rrc::InactivityTimer::new(nbiot_time::SimDuration::from_ms(1));
        let serial = run_comparison(&cfg, &[MechanismKind::DrSc]).unwrap_err();
        cfg.threads = 4;
        let parallel = run_comparison(&cfg, &[MechanismKind::DrSc]).unwrap_err();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(16, 4), 4);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(3, 0), 1);
    }

    #[test]
    fn display_lists_mechanisms() {
        let cmp = run_comparison(&small_config(), &[MechanismKind::DrSc]).unwrap();
        assert!(cmp.to_string().contains("DR-SC"));
    }
}
