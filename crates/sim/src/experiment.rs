//! The paper's experimental methodology: same populations, mechanisms
//! compared against the per-run unicast baseline, averaged over runs.
//!
//! # One scheduler for every sweep
//!
//! All experiment execution — single comparisons ([`run_comparison`]),
//! device sweeps ([`sweep_devices`]) and whole scenario grids
//! ([`run_scenario`](crate::run_scenario)) — flows through one generic
//! work-item scheduler ([`fan_out_items`]) whose unit of parallelism is a
//! **(sweep point × run)** pair. The thread pool therefore spans entire
//! sweeps and figure suites instead of draining one point at a time.
//!
//! Every item is a pure function of its [`SeedSequence`] child (seeds
//! derive per-run via `seq.child(run)`), items are distributed cyclically
//! across workers for load balance, and the per-item records are folded
//! back **in item order** on the coordinating thread — the same push
//! sequence serial execution performs. That makes every [`Summary`] field
//! bit-identical regardless of the thread count, verified by
//! `comparison_is_thread_count_invariant` below and
//! `tests/parallel_determinism.rs`.
//!
//! # Shared populations and plans
//!
//! Within one item, the run's [`Population`](nbiot_traffic::Population)
//! and [`GroupingInput`] are generated **once** and shared by the unicast
//! baseline and every mechanism (they never depend on the payload), and
//! each mechanism's [`MulticastPlan`](nbiot_grouping::MulticastPlan) is
//! computed **once** and executed per payload with a cloned post-plan RNG
//! — bit-identical to re-planning from scratch, because planning is a
//! deterministic function of the same input and RNG stream.

use core::fmt;

use nbiot_des::{RunningStats, SeedSequence, Summary};
use nbiot_energy::PowerProfile;
use nbiot_grouping::{
    GroupingInput, GroupingMechanism, GroupingParams, MechanismKind, MulticastPlan, Unicast,
};
use nbiot_phy::{CoverageClass, NpdschConfig};
use nbiot_traffic::{ChurnModel, TrafficMix};
use rand::rngs::StdRng;

use crate::churn::{self, ChurnTimeline, RegroupPolicy, RegroupWork};
use crate::{engine, CampaignResult, SimConfig, SimError};

/// Configuration of one experiment (one point of a figure).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Device population mix.
    pub mix: TrafficMix,
    /// Group size (the paper varies 100–1000).
    pub n_devices: usize,
    /// Number of repetitions (the paper uses 100).
    pub runs: u32,
    /// Master seed; every run derives its own independent streams.
    pub master_seed: u64,
    /// Grouping parameters (start, TI, optional transmission override).
    pub grouping: GroupingParams,
    /// PHY/protocol configuration.
    pub sim: SimConfig,
    /// Power profile used for the supplementary energy-in-Joules metric.
    pub power: PowerProfile,
    /// Worker threads for the work-item fan-out: `1` executes serially on
    /// the calling thread, `0` uses all available cores, any other value
    /// that many threads. Results are bit-identical for every setting.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            mix: TrafficMix::ericsson_city(),
            n_devices: 100,
            runs: 10,
            master_seed: 0x4E42_494F_5421, // "NBIOT!"
            grouping: GroupingParams::default(),
            sim: SimConfig::default(),
            power: PowerProfile::default(),
            threads: 1,
        }
    }
}

/// Aggregated metrics of one mechanism across all runs of an experiment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MechanismSummary {
    /// Mechanism name.
    pub mechanism: String,
    /// Whether every executed plan was standards-compliant.
    pub standards_compliant: bool,
    /// Relative light-sleep uptime increase vs unicast (Fig. 6(a)).
    pub rel_light_sleep: Summary,
    /// Relative connected-mode uptime increase vs unicast (Fig. 6(b)).
    pub rel_connected: Summary,
    /// Number of payload transmissions (Fig. 7).
    pub transmissions: Summary,
    /// Transmissions as a fraction of the group size (the Fig. 7 ratio).
    pub transmissions_ratio: Summary,
    /// Total on-air payload time of the epoch-0 plan in milliseconds:
    /// every transmission pays the full transfer at its deepest
    /// recipient's coverage class (the repetition level the whole group
    /// must be served at).
    pub plan_airtime_ms: Summary,
    /// Plan airtime over the count-based estimate (transmissions × the
    /// normal-coverage transfer time): 1.0 on homogeneous CE0 fleets,
    /// grows as deep-coverage recipients inflate transmissions, and 0.0
    /// for degenerate plans with no transmissions.
    pub airtime_vs_count_ratio: Summary,
    /// Mean device wait before its transmission, in seconds.
    pub mean_wait_s: Summary,
    /// Mean absolute per-device connected-mode uptime, in seconds.
    pub mean_connected_s: Summary,
    /// Mean per-device energy in millijoules (supplementary).
    pub mean_energy_mj: Summary,
    /// Random-access failures per run (RACH contention ablations).
    pub ra_failures: Summary,
    /// Devices finishing random access after their transmission started.
    pub late_joins: Summary,
    /// Plan recomputations per run under churn (zero for static
    /// scenarios; see [`RegroupPolicy`]).
    pub regroup_count: Summary,
    /// Stale-missed device-epochs over all post-epoch-0 device-epochs
    /// (re-planned epochs contribute zero misses to the numerator but
    /// still count in the denominator; zero for static scenarios).
    pub stale_miss_ratio: Summary,
    /// Summed pre-improvement plan cost (transmissions before the tabu
    /// pass, or before a churn repair) across the run's planning work:
    /// the epoch-0 plan plus every regroup-epoch plan. Zero for plans
    /// without an improvement record (plain greedy, baselines).
    pub cover_cost_initial: Summary,
    /// Summed post-improvement plan cost over the same planning work —
    /// `cover_cost_initial − cover_cost_final` is the run's improvement.
    pub cover_cost_final: Summary,
    /// Summed accepted tabu moves / repair-attached arrivals per run.
    pub improve_moves: Summary,
    /// Summed spent tabu iteration budget / repair-replanned leftovers
    /// per run (the anytime knob actually consumed, not the cap).
    pub improve_budget: Summary,
}

/// The result of comparing several mechanisms under one configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComparisonResult {
    /// Group size.
    pub n_devices: usize,
    /// Number of runs aggregated.
    pub runs: u32,
    /// Per-mechanism summaries, in the order requested.
    pub mechanisms: Vec<MechanismSummary>,
}

impl ComparisonResult {
    /// Looks up a mechanism summary by name (e.g. `"DR-SC"`).
    pub fn mechanism(&self, name: &str) -> Option<&MechanismSummary> {
        self.mechanisms.iter().find(|m| m.mechanism == name)
    }
}

impl fmt::Display for ComparisonResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} devices, {} runs:", self.n_devices, self.runs)?;
        for m in &self.mechanisms {
            writeln!(
                f,
                "  {:<8} light-sleep {:+.3}% connected {:+.3}% tx {:.1}",
                m.mechanism,
                m.rel_light_sleep.mean * 100.0,
                m.rel_connected.mean * 100.0,
                m.transmissions.mean
            )?;
        }
        Ok(())
    }
}

/// The per-run observations for one mechanism (one row of a run record).
///
/// These are the raw, pre-aggregation numbers a single (device point × run)
/// work item produces for one mechanism under one payload variant — the
/// unit that shard archives ([`ScenarioArchive`](crate::ScenarioArchive))
/// persist so that merging partial runs can replay the exact aggregation
/// fold of an unsharded run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MechRun {
    /// Relative light-sleep uptime increase vs unicast in this run.
    pub rel_light_sleep: f64,
    /// Relative connected-mode uptime increase vs unicast in this run.
    pub rel_connected: f64,
    /// Payload transmissions in this run.
    pub transmissions: f64,
    /// Total on-air payload time of the epoch-0 plan, in milliseconds
    /// (deepest-recipient coverage pricing; see
    /// [`MechanismSummary::plan_airtime_ms`]).
    pub plan_airtime_ms: f64,
    /// Plan airtime over the count-based estimate; 0.0 when the plan has
    /// no transmissions.
    pub airtime_vs_count_ratio: f64,
    /// Mean device wait before its transmission, in seconds.
    pub mean_wait_s: f64,
    /// Mean absolute per-device connected-mode uptime, in seconds.
    pub mean_connected_s: f64,
    /// Mean per-device energy in millijoules.
    pub mean_energy_mj: f64,
    /// Random-access failures in this run.
    pub ra_failures: f64,
    /// Devices finishing random access after their transmission started.
    pub late_joins: f64,
    /// Plan recomputations across the run's churn epochs (zero when the
    /// scenario declares no churn).
    pub regroups: f64,
    /// Stale-missed device-epochs over all post-epoch-0 device-epochs of
    /// the run (zero when the scenario declares no churn).
    pub stale_miss_ratio: f64,
    /// Summed pre-improvement plan cost across the run's planning work
    /// (epoch-0 plan + regroup-epoch plans; zero without improvement).
    pub cover_cost_initial: f64,
    /// Summed post-improvement plan cost over the same planning work.
    pub cover_cost_final: f64,
    /// Summed accepted tabu moves / repair-attached arrivals.
    pub improve_moves: f64,
    /// Summed spent tabu iteration budget / repair-replanned leftovers.
    pub improve_budget: f64,
    /// Whether the executed plan was standards-compliant.
    pub compliant: bool,
}

/// The raw records of one (device point × run) work item, indexed
/// `[payload variant][mechanism]` — a pure function of
/// (scenario, item index).
pub type ItemRows = Vec<Vec<MechRun>>;

/// Resolves a thread-count setting: `0` means all available cores, and no
/// point spawning more workers than there are work items.
fn effective_threads(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// The generic work-item scheduler: executes `items` independent jobs
/// across `threads` workers and returns their results **indexed by item**,
/// or the error of the lowest-numbered failing item — exactly what serial
/// execution would surface.
///
/// Items are assigned cyclically (worker `w` takes items `w`, `w + T`,
/// `w + 2T`, …), so a sweep whose later points are more expensive — e.g.
/// group sizes 100…1000 laid out point-major — still spreads evenly over
/// the pool. `init` builds one worker-local state (e.g. the instantiated
/// mechanism set), shared by all items that worker executes. Each worker
/// stops at its own first error; the items it skips come *after* that
/// error in item order, so the item-order scan below still finds the
/// globally first failure deterministically while avoiding wasted work on
/// the error path.
fn fan_out_items<T, S, I, J>(
    items: usize,
    threads: usize,
    init: I,
    job: J,
) -> Result<Vec<T>, SimError>
where
    T: Send,
    I: Fn() -> S + Sync,
    J: Fn(&mut S, usize) -> Result<T, SimError> + Sync,
{
    let threads = effective_threads(threads, items);
    let run_stride = |worker: usize| -> Vec<Option<Result<T, SimError>>> {
        let mut state = init();
        let mut out = Vec::with_capacity(items.div_ceil(threads));
        let mut failed = false;
        let mut item = worker;
        while item < items {
            if failed {
                out.push(None);
            } else {
                let record = job(&mut state, item);
                failed = record.is_err();
                out.push(Some(record));
            }
            item += threads;
        }
        out
    };
    let mut per_worker: Vec<Vec<Option<Result<T, SimError>>>> = if threads <= 1 {
        vec![run_stride(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let run_stride = &run_stride;
                    scope.spawn(move || run_stride(w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scheduler worker panicked"))
                .collect()
        })
    };
    // Reassemble in item order. A `None` slot can only sit *behind* its
    // worker's first error in item order, so the first non-`Ok` slot this
    // scan meets is always the globally lowest-numbered error.
    let mut out = Vec::with_capacity(items);
    for item in 0..items {
        match per_worker[item % threads][item / threads].take() {
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
            None => unreachable!("items are only skipped after an earlier error in their stride"),
        }
    }
    Ok(out)
}

/// The full experiment grid one scheduler invocation executes: device
/// sweep points × payload variants × mechanisms × runs.
///
/// Work items are **(device point × run)** pairs; payload variants and
/// mechanisms ride inside an item so they can share the run's population,
/// grouping input and per-mechanism plan.
pub(crate) struct GridSpec<'a> {
    /// Device population mix.
    pub mix: &'a TrafficMix,
    /// Device sweep points (group sizes), one outer grid row each.
    pub devices: &'a [usize],
    /// Payload/protocol variants, one inner grid column each. The
    /// mechanisms' plans are payload-independent and shared across these.
    pub sims: &'a [SimConfig],
    /// Mechanism set, in presentation order.
    pub kinds: &'a [MechanismKind],
    /// Repetitions per point.
    pub runs: u32,
    /// Master seed; run `r` of every point derives from `child(r)`.
    pub master_seed: u64,
    /// Grouping parameters.
    pub grouping: GroupingParams,
    /// Power profile for the energy metric.
    pub power: &'a PowerProfile,
    /// Compare against a per-run unicast baseline. When `false` the
    /// relative metrics are zero (sweeps that only need absolute counts
    /// skip the baseline's cost).
    pub baseline: bool,
    /// Population churn applied across campaign epochs after the
    /// epoch-0 delivery (`None` = static population, the classic path).
    pub churn: Option<&'a ChurnModel>,
    /// When to re-plan on the evolved population (ignored without churn).
    pub regroup: RegroupPolicy,
    /// Worker threads (`0` = all cores, `1` = serial).
    pub threads: usize,
}

/// Plans once, then executes the plan under every payload variant with a
/// cloned post-plan RNG — bit-identical to planning from scratch per
/// variant, since planning is deterministic in (input, RNG stream).
/// Returns the plan too: churn repair patches it, and its improvement
/// record feeds the `cover_cost_*`/`improve_*` metrics.
fn execute_per_payload(
    mechanism: &dyn GroupingMechanism,
    input: &GroupingInput,
    sims: &[SimConfig],
    rng: &mut StdRng,
) -> Result<(MulticastPlan, Vec<CampaignResult>), SimError> {
    let plan = mechanism.plan(input, rng)?;
    plan.validate(input)?;
    let results = sims
        .iter()
        .map(|sim| engine::execute(input, &plan, sim, &mut rng.clone()))
        .collect();
    Ok((plan, results))
}

/// Per-transmission deepest-recipient coverage histogram of a plan,
/// indexed by `CoverageClass as usize`. A transmission is served at the
/// repetition level of its worst-coverage recipient, so this histogram is
/// the only plan-dependent input the airtime metrics need — the payload
/// then scales each class's transfer time independently.
fn coverage_histogram(plan: &MulticastPlan, input: &GroupingInput) -> [u64; 3] {
    let coverage_of: std::collections::HashMap<_, _> = input
        .ids()
        .iter()
        .copied()
        .zip(input.coverages().iter().copied())
        .collect();
    let mut hist = [0u64; 3];
    for tx in &plan.transmissions {
        let deepest = tx
            .recipients
            .iter()
            .filter_map(|id| coverage_of.get(id))
            .max()
            .copied()
            .unwrap_or_default();
        hist[deepest as usize] += 1;
    }
    hist
}

/// Computes `(plan_airtime_ms, airtime_vs_count_ratio)` for one payload
/// variant from a plan's coverage histogram. The ratio guards its
/// denominator: a plan with no transmissions (or a zero-duration
/// transfer) reports 0.0 instead of NaN/inf.
fn airtime_metrics(hist: &[u64; 3], sim: &SimConfig) -> (f64, f64) {
    let mut per_class_ms = [0u64; 3];
    for c in CoverageClass::ALL {
        let cfg = NpdschConfig {
            coverage: c,
            ..sim.npdsch
        };
        per_class_ms[c as usize] = cfg.plan_transfer(sim.payload).duration.as_ms();
    }
    let airtime_ms: u64 = hist.iter().zip(per_class_ms).map(|(&n, ms)| n * ms).sum();
    let transmissions: u64 = hist.iter().sum();
    let count_estimate_ms = transmissions * per_class_ms[CoverageClass::Normal as usize];
    let ratio = if count_estimate_ms == 0 {
        0.0
    } else {
        airtime_ms as f64 / count_estimate_ms as f64
    };
    (airtime_ms as f64, ratio)
}

/// One (device point × run) work item: fresh population and grouping
/// input, shared by the unicast baseline and every mechanism across every
/// payload variant. Returns rows indexed `[payload][mechanism]`.
///
/// When the spec declares churn, the fleet then evolves across the
/// model's epochs (one shared [`ChurnTimeline`] per item) and each
/// mechanism's staleness/re-grouping trajectory is evaluated on top —
/// the classic epoch-0 metrics above are never touched, which is what
/// keeps zero-churn runs bit-identical to the static engine.
fn grid_item(
    spec: &GridSpec<'_>,
    mechanisms: &[Box<dyn GroupingMechanism>],
    n_devices: usize,
    run: usize,
) -> Result<Vec<Vec<MechRun>>, SimError> {
    let run_seq = SeedSequence::new(spec.master_seed).child(run as u64);
    let population = spec.mix.generate(n_devices, &mut run_seq.rng(0))?;
    let input = GroupingInput::from_population(&population, spec.grouping)?;
    let baselines = if spec.baseline {
        Some(execute_per_payload(
            &Unicast::new(),
            &input,
            spec.sims,
            &mut run_seq.rng(1),
        )?)
    } else {
        None
    };
    let mut rows: Vec<Vec<MechRun>> = (0..spec.sims.len())
        .map(|_| Vec::with_capacity(spec.kinds.len()))
        .collect();
    let mut plans: Vec<MulticastPlan> = Vec::with_capacity(spec.kinds.len());
    for (i, (kind, mechanism)) in spec.kinds.iter().zip(mechanisms).enumerate() {
        let (plan, results) = match &baselines {
            // The baseline already executed unicast on this population;
            // reuse it (and leave the mechanism's RNG stream untouched,
            // matching what a dedicated unicast row would observe).
            Some((bplan, base)) if *kind == MechanismKind::Unicast => (bplan.clone(), base.clone()),
            _ => execute_per_payload(
                mechanism.as_ref(),
                &input,
                spec.sims,
                &mut run_seq.rng(2 + i as u64),
            )?,
        };
        // The plan (and hence its improvement record) is shared by every
        // payload variant.
        let mut work = RegroupWork::default();
        work.absorb(&plan);
        let hist = coverage_histogram(&plan, &input);
        for (p, result) in results.iter().enumerate() {
            let baseline = baselines.as_ref().map_or(result, |(_, b)| &b[p]);
            let rel = result.mean_relative_vs(baseline);
            let (plan_airtime_ms, airtime_vs_count_ratio) = airtime_metrics(&hist, &spec.sims[p]);
            rows[p].push(MechRun {
                rel_light_sleep: rel.light_sleep,
                rel_connected: rel.connected,
                transmissions: result.transmission_count as f64,
                plan_airtime_ms,
                airtime_vs_count_ratio,
                mean_wait_s: result.mean_wait.as_secs_f64(),
                mean_connected_s: result.mean_connected_ms() / 1000.0,
                mean_energy_mj: result.mean_energy_mj(spec.power),
                ra_failures: result.ra_failures as f64,
                late_joins: result.late_joins as f64,
                regroups: 0.0,
                stale_miss_ratio: 0.0,
                cover_cost_initial: work.cover_cost_initial,
                cover_cost_final: work.cover_cost_final,
                improve_moves: work.improve_moves,
                improve_budget: work.improve_budget,
                compliant: result.standards_compliant,
            });
        }
        plans.push(plan);
    }
    if let Some(model) = spec.churn.filter(|m| !m.is_static()) {
        let timeline = ChurnTimeline::evolve(model, spec.mix, &population, &run_seq)?;
        // Staleness is identity-based, so the policy trajectory is shared
        // by every mechanism; only the re-planning work is per-mechanism.
        let trajectory = churn::plan_trajectory(&timeline, spec.regroup, &population);
        for (i, mechanism) in mechanisms.iter().enumerate() {
            let work = churn::replan_mechanism(
                &timeline,
                &trajectory,
                spec.grouping,
                &churn::ReplanTarget {
                    index: i,
                    mechanism: mechanism.as_ref(),
                    epoch0_plan: &plans[i],
                },
                &run_seq,
                spec.regroup,
            )?;
            // The outcome is payload-independent, like the plan itself.
            for payload_rows in &mut rows {
                payload_rows[i].regroups = trajectory.outcome.regroups;
                payload_rows[i].stale_miss_ratio = trajectory.outcome.stale_miss_ratio;
                payload_rows[i].cover_cost_initial += work.cover_cost_initial;
                payload_rows[i].cover_cost_final += work.cover_cost_final;
                payload_rows[i].improve_moves += work.improve_moves;
                payload_rows[i].improve_budget += work.improve_budget;
            }
        }
    }
    Ok(rows)
}

/// Executes an arbitrary subset of the grid's work items (identified by
/// their global indices, `item = point * runs + run`) through the
/// scheduler and returns their raw records **in the given order**.
///
/// This is the sharding primitive: every item is a pure function of
/// (spec, item index), so any partition of the item pool — including a
/// single-host "all items" run — produces records that can later be
/// reassembled and folded bit-identically to serial execution.
pub(crate) fn execute_grid_subset(
    spec: &GridSpec<'_>,
    items: &[usize],
) -> Result<Vec<ItemRows>, SimError> {
    let runs = spec.runs as usize;
    fan_out_items(
        items.len(),
        spec.threads,
        || {
            spec.kinds
                .iter()
                .map(|k| k.instantiate())
                .collect::<Vec<Box<dyn GroupingMechanism>>>()
        },
        |mechanisms, i| {
            let item = items[i];
            grid_item(spec, mechanisms, spec.devices[item / runs], item % runs)
        },
    )
}

/// Folds the complete, item-ordered record set into one
/// [`ComparisonResult`] per (device point × payload variant) — the exact
/// push sequence serial execution performs, which is what keeps every
/// thread count *and* every sharding bit-identical. The fold consumes
/// records strictly in item order (device-major, run-minor), so callers
/// hand over borrowed records without materializing a copy. Output is
/// indexed `[device point][payload variant]`.
pub(crate) fn fold_grid<'a>(
    spec: &GridSpec<'_>,
    records: impl Iterator<Item = &'a ItemRows>,
) -> Vec<Vec<ComparisonResult>> {
    let runs = spec.runs as usize;
    let mut records = records;
    let mut grid = Vec::with_capacity(spec.devices.len());
    for &n_devices in spec.devices {
        let mut per_payload: Vec<Vec<(MechanismKind, MechStats)>> = (0..spec.sims.len())
            .map(|_| {
                spec.kinds
                    .iter()
                    .map(|&k| (k, MechStats::default()))
                    .collect()
            })
            .collect();
        for _ in 0..runs {
            let item = records.next().expect("one record per (point, run) item");
            for (payload_rows, acc) in item.iter().zip(per_payload.iter_mut()) {
                for (row, (_, stats)) in payload_rows.iter().zip(acc.iter_mut()) {
                    stats.push(row, n_devices);
                }
            }
        }
        grid.push(
            per_payload
                .into_iter()
                .map(|acc| ComparisonResult {
                    n_devices,
                    runs: spec.runs,
                    mechanisms: acc
                        .into_iter()
                        .map(|(kind, s)| s.into_summary(kind))
                        .collect(),
                })
                .collect(),
        );
    }
    grid
}

/// Executes the whole grid through the scheduler and folds the per-item
/// records in run order. Output is indexed `[device point][payload
/// variant]`.
pub(crate) fn execute_grid(spec: &GridSpec<'_>) -> Result<Vec<Vec<ComparisonResult>>, SimError> {
    let items: Vec<usize> = (0..spec.devices.len() * spec.runs as usize).collect();
    let records = execute_grid_subset(spec, &items)?;
    Ok(fold_grid(spec, records.iter()))
}

/// Runs the paper's comparison methodology.
///
/// For every run: generate a fresh population, execute the unicast
/// baseline, then every requested mechanism on the *same* population, and
/// accumulate per-run means of the relative metrics. Work items execute
/// across [`ExperimentConfig::threads`] workers; the aggregation folds the
/// per-run records in run order, so the result is bit-identical for every
/// thread count.
///
/// # Errors
///
/// Propagates population, grouping and plan-validation failures (the
/// lowest-numbered failing run wins, matching serial execution), and
/// rejects degenerate configurations.
pub fn run_comparison(
    config: &ExperimentConfig,
    kinds: &[MechanismKind],
) -> Result<ComparisonResult, SimError> {
    if config.n_devices == 0 || config.runs == 0 {
        return Err(SimError::DegenerateExperiment {
            n_devices: config.n_devices,
            runs: config.runs,
        });
    }
    let grid = execute_grid(&GridSpec {
        mix: &config.mix,
        devices: &[config.n_devices],
        sims: std::slice::from_ref(&config.sim),
        kinds,
        runs: config.runs,
        master_seed: config.master_seed,
        grouping: config.grouping,
        power: &config.power,
        baseline: true,
        churn: None,
        regroup: RegroupPolicy::default(),
        threads: config.threads,
    })?;
    Ok(grid
        .into_iter()
        .flatten()
        .next()
        .expect("grid has exactly one point"))
}

#[derive(Debug, Clone)]
struct MechStats {
    rel_light_sleep: RunningStats,
    rel_connected: RunningStats,
    transmissions: RunningStats,
    transmissions_ratio: RunningStats,
    plan_airtime_ms: RunningStats,
    airtime_vs_count_ratio: RunningStats,
    mean_wait_s: RunningStats,
    mean_connected_s: RunningStats,
    mean_energy_mj: RunningStats,
    ra_failures: RunningStats,
    late_joins: RunningStats,
    regroup_count: RunningStats,
    stale_miss_ratio: RunningStats,
    cover_cost_initial: RunningStats,
    cover_cost_final: RunningStats,
    improve_moves: RunningStats,
    improve_budget: RunningStats,
    compliant: bool,
}

impl MechStats {
    fn push(&mut self, row: &MechRun, n_devices: usize) {
        self.rel_light_sleep.push(row.rel_light_sleep);
        self.rel_connected.push(row.rel_connected);
        self.transmissions.push(row.transmissions);
        self.transmissions_ratio
            .push(row.transmissions / n_devices as f64);
        self.plan_airtime_ms.push(row.plan_airtime_ms);
        self.airtime_vs_count_ratio.push(row.airtime_vs_count_ratio);
        self.mean_wait_s.push(row.mean_wait_s);
        self.mean_connected_s.push(row.mean_connected_s);
        self.mean_energy_mj.push(row.mean_energy_mj);
        self.ra_failures.push(row.ra_failures);
        self.late_joins.push(row.late_joins);
        self.regroup_count.push(row.regroups);
        self.stale_miss_ratio.push(row.stale_miss_ratio);
        self.cover_cost_initial.push(row.cover_cost_initial);
        self.cover_cost_final.push(row.cover_cost_final);
        self.improve_moves.push(row.improve_moves);
        self.improve_budget.push(row.improve_budget);
        self.compliant &= row.compliant;
    }

    fn into_summary(self, kind: MechanismKind) -> MechanismSummary {
        MechanismSummary {
            mechanism: kind.to_string(),
            standards_compliant: self.compliant,
            rel_light_sleep: self.rel_light_sleep.summary(),
            rel_connected: self.rel_connected.summary(),
            transmissions: self.transmissions.summary(),
            transmissions_ratio: self.transmissions_ratio.summary(),
            plan_airtime_ms: self.plan_airtime_ms.summary(),
            airtime_vs_count_ratio: self.airtime_vs_count_ratio.summary(),
            mean_wait_s: self.mean_wait_s.summary(),
            mean_connected_s: self.mean_connected_s.summary(),
            mean_energy_mj: self.mean_energy_mj.summary(),
            ra_failures: self.ra_failures.summary(),
            late_joins: self.late_joins.summary(),
            regroup_count: self.regroup_count.summary(),
            stale_miss_ratio: self.stale_miss_ratio.summary(),
            cover_cost_initial: self.cover_cost_initial.summary(),
            cover_cost_final: self.cover_cost_final.summary(),
            improve_moves: self.improve_moves.summary(),
            improve_budget: self.improve_budget.summary(),
        }
    }
}

impl Default for MechStats {
    fn default() -> Self {
        MechStats {
            rel_light_sleep: RunningStats::new(),
            rel_connected: RunningStats::new(),
            transmissions: RunningStats::new(),
            transmissions_ratio: RunningStats::new(),
            plan_airtime_ms: RunningStats::new(),
            airtime_vs_count_ratio: RunningStats::new(),
            mean_wait_s: RunningStats::new(),
            mean_connected_s: RunningStats::new(),
            mean_energy_mj: RunningStats::new(),
            ra_failures: RunningStats::new(),
            late_joins: RunningStats::new(),
            regroup_count: RunningStats::new(),
            stale_miss_ratio: RunningStats::new(),
            cover_cost_initial: RunningStats::new(),
            cover_cost_final: RunningStats::new(),
            improve_moves: RunningStats::new(),
            improve_budget: RunningStats::new(),
            compliant: true,
        }
    }
}

/// One point of a group-size sweep (Fig. 7).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// Group size.
    pub n_devices: usize,
    /// Transmission-count statistics for the swept mechanism.
    pub transmissions: Summary,
    /// Transmissions as a fraction of the group size.
    pub ratio_to_devices: Summary,
}

/// Sweeps group sizes for one mechanism — the Fig. 7 x-axis.
///
/// The whole sweep executes as one scheduler invocation whose work items
/// are (point × run) pairs, so [`ExperimentConfig::threads`] workers span
/// *all* points at once instead of draining them one by one; the run-order
/// fold keeps every point bit-identical for every thread count. The
/// unicast baseline is skipped (transmission counts need no reference).
///
/// # Errors
///
/// Rejects an empty size list with [`SimError::EmptySweep`] (an empty
/// sweep used to return an empty result set, which downstream figure
/// code silently rendered as a zero-point plot), and propagates
/// population, grouping and plan-validation failures.
pub fn sweep_devices(
    base: &ExperimentConfig,
    kind: MechanismKind,
    sizes: &[usize],
) -> Result<Vec<SweepPoint>, SimError> {
    if sizes.is_empty() {
        return Err(SimError::EmptySweep);
    }
    let grid = execute_grid(&GridSpec {
        mix: &base.mix,
        devices: sizes,
        sims: std::slice::from_ref(&base.sim),
        kinds: &[kind],
        runs: base.runs,
        master_seed: base.master_seed,
        grouping: base.grouping,
        power: &base.power,
        baseline: false,
        churn: None,
        regroup: RegroupPolicy::default(),
        threads: base.threads,
    })?;
    Ok(grid
        .into_iter()
        .flatten()
        .map(|cmp| {
            let m = &cmp.mechanisms[0];
            SweepPoint {
                n_devices: cmp.n_devices,
                transmissions: m.transmissions,
                ratio_to_devices: m.transmissions_ratio,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            n_devices: 30,
            runs: 3,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut cfg = small_config();
        cfg.runs = 0;
        assert!(matches!(
            run_comparison(&cfg, &[MechanismKind::DrSc]),
            Err(SimError::DegenerateExperiment { .. })
        ));
        let mut cfg2 = small_config();
        cfg2.n_devices = 0;
        assert!(matches!(
            run_comparison(&cfg2, &[MechanismKind::DrSc]),
            Err(SimError::DegenerateExperiment { .. })
        ));
    }

    #[test]
    fn unicast_vs_itself_is_zero() {
        let cmp = run_comparison(&small_config(), &[MechanismKind::Unicast]).unwrap();
        let u = cmp.mechanism("Unicast").unwrap();
        assert!(u.rel_light_sleep.mean.abs() < 1e-12);
        assert!(u.rel_connected.mean.abs() < 1e-12);
    }

    #[test]
    fn paper_mechanism_ordering_holds() {
        // Fig. 6(a): DR-SC adds nothing; DR-SI adds a sliver; DA-SC more.
        let cmp = run_comparison(&small_config(), &MechanismKind::PAPER_MECHANISMS).unwrap();
        let dr_sc = cmp.mechanism("DR-SC").unwrap().rel_light_sleep.mean;
        let da_sc = cmp.mechanism("DA-SC").unwrap().rel_light_sleep.mean;
        let dr_si = cmp.mechanism("DR-SI").unwrap().rel_light_sleep.mean;
        assert!(dr_sc.abs() < 1e-9, "DR-SC {dr_sc}");
        assert!(dr_si > 0.0, "DR-SI {dr_si}");
        assert!(da_sc > dr_si, "DA-SC {da_sc} vs DR-SI {dr_si}");
    }

    #[test]
    fn single_transmission_mechanisms() {
        let cmp = run_comparison(
            &small_config(),
            &[
                MechanismKind::DaSc,
                MechanismKind::DrSi,
                MechanismKind::Unicast,
            ],
        )
        .unwrap();
        assert_eq!(cmp.mechanism("DA-SC").unwrap().transmissions.mean, 1.0);
        assert_eq!(cmp.mechanism("DR-SI").unwrap().transmissions.mean, 1.0);
        assert_eq!(cmp.mechanism("Unicast").unwrap().transmissions.mean, 30.0);
    }

    #[test]
    fn sweep_produces_requested_points() {
        let cfg = ExperimentConfig {
            runs: 2,
            ..small_config()
        };
        let points = sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n_devices, 10);
        assert!(points[1].transmissions.mean >= points[0].transmissions.mean);
    }

    #[test]
    fn empty_device_sweep_is_rejected() {
        // An empty size list used to come back as Ok(vec![]) — a
        // zero-point "sweep" that figure code happily rendered as an
        // empty plot.
        let err = sweep_devices(&small_config(), MechanismKind::DrSc, &[]).unwrap_err();
        assert!(matches!(err, SimError::EmptySweep), "{err}");
    }

    #[test]
    fn comparison_is_reproducible() {
        let a = run_comparison(&small_config(), &[MechanismKind::DrSi]).unwrap();
        let b = run_comparison(&small_config(), &[MechanismKind::DrSi]).unwrap();
        assert_eq!(
            a.mechanism("DR-SI").unwrap().rel_connected.mean,
            b.mechanism("DR-SI").unwrap().rel_connected.mean
        );
    }

    #[test]
    fn comparison_is_thread_count_invariant() {
        // The acceptance bar: every Summary field of every mechanism must
        // be bit-identical between serial and parallel execution.
        let base = ExperimentConfig {
            n_devices: 25,
            runs: 6,
            ..ExperimentConfig::default()
        };
        let serial = run_comparison(&base, &MechanismKind::ALL).unwrap();
        for threads in [2, 3, 8, 0] {
            let parallel = run_comparison(
                &ExperimentConfig {
                    threads,
                    ..base.clone()
                },
                &MechanismKind::ALL,
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let base = ExperimentConfig {
            runs: 4,
            ..small_config()
        };
        let serial = sweep_devices(&base, MechanismKind::DrSc, &[10, 25]).unwrap();
        let parallel = sweep_devices(
            &ExperimentConfig { threads: 8, ..base },
            MechanismKind::DrSc,
            &[10, 25],
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn multi_payload_grid_shares_plans_bit_identically() {
        // The shared-population/shared-plan fast path must be invisible:
        // every payload column of a grid equals a dedicated
        // run_comparison at that payload (which regenerates everything).
        let base = small_config();
        let payloads = [
            SimConfig::default(),
            SimConfig::default().with_payload(nbiot_phy::DataSize::from_mb(1)),
        ];
        let grid = execute_grid(&GridSpec {
            mix: &base.mix,
            devices: &[base.n_devices],
            sims: &payloads,
            kinds: &MechanismKind::ALL,
            runs: base.runs,
            master_seed: base.master_seed,
            grouping: base.grouping,
            power: &base.power,
            baseline: true,
            churn: None,
            regroup: RegroupPolicy::default(),
            threads: 1,
        })
        .unwrap();
        for (p, sim) in payloads.iter().enumerate() {
            let mut cfg = base.clone();
            cfg.sim = *sim;
            let dedicated = run_comparison(&cfg, &MechanismKind::ALL).unwrap();
            assert_eq!(grid[0][p], dedicated, "payload column {p}");
        }
    }

    #[test]
    fn parallel_errors_match_serial_errors() {
        // A TI shorter than the shortest cycle fails in every run; the
        // parallel path must surface the same (first-run) error.
        let mut cfg = small_config();
        cfg.runs = 5;
        cfg.grouping.ti = nbiot_rrc::InactivityTimer::new(nbiot_time::SimDuration::from_ms(1));
        let serial = run_comparison(&cfg, &[MechanismKind::DrSc]).unwrap_err();
        cfg.threads = 4;
        let parallel = run_comparison(&cfg, &[MechanismKind::DrSc]).unwrap_err();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(16, 4), 4);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(3, 0), 1);
    }

    #[test]
    fn scheduler_folds_in_item_order_and_surfaces_first_error() {
        // Pure-function scheduler check independent of the simulator.
        let squares = fan_out_items(10, 3, || (), |(), i| Ok::<usize, SimError>(i * i)).unwrap();
        assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
        // Two failing items: the lowest-numbered one wins for every
        // thread count, exactly as serial execution would surface it.
        for threads in [1, 2, 3, 8] {
            let err = fan_out_items(
                10,
                threads,
                || (),
                |(), i| {
                    if i == 7 || i == 4 {
                        Err(SimError::DegenerateExperiment {
                            n_devices: i,
                            runs: 0,
                        })
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, SimError::DegenerateExperiment { n_devices: 4, .. }),
                "threads={threads}: {err:?}"
            );
        }
    }

    #[test]
    fn display_lists_mechanisms() {
        let cmp = run_comparison(&small_config(), &[MechanismKind::DrSc]).unwrap();
        assert!(cmp.to_string().contains("DR-SC"));
    }
}
