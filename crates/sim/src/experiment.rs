//! The paper's experimental methodology: same populations, mechanisms
//! compared against the per-run unicast baseline, averaged over runs.

use core::fmt;

use nbiot_des::{RunningStats, SeedSequence, Summary};
use nbiot_energy::PowerProfile;
use nbiot_grouping::{GroupingInput, GroupingParams, MechanismKind, Unicast};
use nbiot_traffic::TrafficMix;

use crate::{run_campaign, SimConfig, SimError};

/// Configuration of one experiment (one point of a figure).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Device population mix.
    pub mix: TrafficMix,
    /// Group size (the paper varies 100–1000).
    pub n_devices: usize,
    /// Number of repetitions (the paper uses 100).
    pub runs: u32,
    /// Master seed; every run derives its own independent streams.
    pub master_seed: u64,
    /// Grouping parameters (start, TI, optional transmission override).
    pub grouping: GroupingParams,
    /// PHY/protocol configuration.
    pub sim: SimConfig,
    /// Power profile used for the supplementary energy-in-Joules metric.
    pub power: PowerProfile,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            mix: TrafficMix::ericsson_city(),
            n_devices: 100,
            runs: 10,
            master_seed: 0x4E42_494F_5421, // "NBIOT!"
            grouping: GroupingParams::default(),
            sim: SimConfig::default(),
            power: PowerProfile::default(),
        }
    }
}

/// Aggregated metrics of one mechanism across all runs of an experiment.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MechanismSummary {
    /// Mechanism name.
    pub mechanism: String,
    /// Whether every executed plan was standards-compliant.
    pub standards_compliant: bool,
    /// Relative light-sleep uptime increase vs unicast (Fig. 6(a)).
    pub rel_light_sleep: Summary,
    /// Relative connected-mode uptime increase vs unicast (Fig. 6(b)).
    pub rel_connected: Summary,
    /// Number of payload transmissions (Fig. 7).
    pub transmissions: Summary,
    /// Mean device wait before its transmission, in seconds.
    pub mean_wait_s: Summary,
    /// Mean per-device energy in millijoules (supplementary).
    pub mean_energy_mj: Summary,
    /// Devices finishing random access after their transmission started.
    pub late_joins: Summary,
}

/// The result of comparing several mechanisms under one configuration.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComparisonResult {
    /// Group size.
    pub n_devices: usize,
    /// Number of runs aggregated.
    pub runs: u32,
    /// Per-mechanism summaries, in the order requested.
    pub mechanisms: Vec<MechanismSummary>,
}

impl ComparisonResult {
    /// Looks up a mechanism summary by name (e.g. `"DR-SC"`).
    pub fn mechanism(&self, name: &str) -> Option<&MechanismSummary> {
        self.mechanisms.iter().find(|m| m.mechanism == name)
    }
}

impl fmt::Display for ComparisonResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} devices, {} runs:", self.n_devices, self.runs)?;
        for m in &self.mechanisms {
            writeln!(
                f,
                "  {:<8} light-sleep {:+.3}% connected {:+.3}% tx {:.1}",
                m.mechanism,
                m.rel_light_sleep.mean * 100.0,
                m.rel_connected.mean * 100.0,
                m.transmissions.mean
            )?;
        }
        Ok(())
    }
}

/// Runs the paper's comparison methodology.
///
/// For every run: generate a fresh population, execute the unicast
/// baseline, then every requested mechanism on the *same* population, and
/// accumulate per-run means of the relative metrics.
///
/// # Errors
///
/// Propagates population, grouping and plan-validation failures, and
/// rejects degenerate configurations.
pub fn run_comparison(
    config: &ExperimentConfig,
    kinds: &[MechanismKind],
) -> Result<ComparisonResult, SimError> {
    if config.n_devices == 0 || config.runs == 0 {
        return Err(SimError::DegenerateExperiment {
            n_devices: config.n_devices,
            runs: config.runs,
        });
    }
    let seq = SeedSequence::new(config.master_seed);
    let mut acc: Vec<(MechanismKind, MechStats)> =
        kinds.iter().map(|&k| (k, MechStats::default())).collect();

    for run in 0..config.runs {
        let run_seq = seq.child(run as u64);
        let population = config.mix.generate(config.n_devices, &mut run_seq.rng(0))?;
        let input = GroupingInput::from_population(&population, config.grouping)?;
        let baseline = run_campaign(&Unicast::new(), &input, &config.sim, &mut run_seq.rng(1))?;
        for (i, (kind, stats)) in acc.iter_mut().enumerate() {
            let result = if *kind == MechanismKind::Unicast {
                baseline.clone()
            } else {
                run_campaign(
                    kind.instantiate().as_ref(),
                    &input,
                    &config.sim,
                    &mut run_seq.rng(2 + i as u64),
                )?
            };
            let rel = result.mean_relative_vs(&baseline);
            stats.rel_light_sleep.push(rel.light_sleep);
            stats.rel_connected.push(rel.connected);
            stats.transmissions.push(result.transmission_count as f64);
            stats.mean_wait_s.push(result.mean_wait.as_secs_f64());
            stats
                .mean_energy_mj
                .push(result.mean_energy_mj(&config.power));
            stats.late_joins.push(result.late_joins as f64);
            stats.compliant &= result.standards_compliant;
        }
    }

    Ok(ComparisonResult {
        n_devices: config.n_devices,
        runs: config.runs,
        mechanisms: acc
            .into_iter()
            .map(|(kind, s)| MechanismSummary {
                mechanism: kind.to_string(),
                standards_compliant: s.compliant,
                rel_light_sleep: s.rel_light_sleep.summary(),
                rel_connected: s.rel_connected.summary(),
                transmissions: s.transmissions.summary(),
                mean_wait_s: s.mean_wait_s.summary(),
                mean_energy_mj: s.mean_energy_mj.summary(),
                late_joins: s.late_joins.summary(),
            })
            .collect(),
    })
}

#[derive(Debug, Clone)]
struct MechStats {
    rel_light_sleep: RunningStats,
    rel_connected: RunningStats,
    transmissions: RunningStats,
    mean_wait_s: RunningStats,
    mean_energy_mj: RunningStats,
    late_joins: RunningStats,
    compliant: bool,
}

impl Default for MechStats {
    fn default() -> Self {
        MechStats {
            rel_light_sleep: RunningStats::new(),
            rel_connected: RunningStats::new(),
            transmissions: RunningStats::new(),
            mean_wait_s: RunningStats::new(),
            mean_energy_mj: RunningStats::new(),
            late_joins: RunningStats::new(),
            compliant: true,
        }
    }
}

/// One point of a group-size sweep (Fig. 7).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// Group size.
    pub n_devices: usize,
    /// Transmission-count statistics for the swept mechanism.
    pub transmissions: Summary,
    /// Transmissions as a fraction of the group size.
    pub ratio_to_devices: Summary,
}

/// Sweeps group sizes for one mechanism — the Fig. 7 x-axis.
///
/// # Errors
///
/// Propagates [`run_comparison`] failures.
pub fn sweep_devices(
    base: &ExperimentConfig,
    kind: MechanismKind,
    sizes: &[usize],
) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let mut config = base.clone();
        config.n_devices = n;
        let seq = SeedSequence::new(config.master_seed);
        let mut transmissions = RunningStats::new();
        let mut ratio = RunningStats::new();
        for run in 0..config.runs {
            let run_seq = seq.child(run as u64);
            let population = config.mix.generate(n, &mut run_seq.rng(0))?;
            let input = GroupingInput::from_population(&population, config.grouping)?;
            let result = run_campaign(
                kind.instantiate().as_ref(),
                &input,
                &config.sim,
                &mut run_seq.rng(2),
            )?;
            transmissions.push(result.transmission_count as f64);
            ratio.push(result.transmission_count as f64 / n as f64);
        }
        points.push(SweepPoint {
            n_devices: n,
            transmissions: transmissions.summary(),
            ratio_to_devices: ratio.summary(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            n_devices: 30,
            runs: 3,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut cfg = small_config();
        cfg.runs = 0;
        assert!(matches!(
            run_comparison(&cfg, &[MechanismKind::DrSc]),
            Err(SimError::DegenerateExperiment { .. })
        ));
        let mut cfg2 = small_config();
        cfg2.n_devices = 0;
        assert!(matches!(
            run_comparison(&cfg2, &[MechanismKind::DrSc]),
            Err(SimError::DegenerateExperiment { .. })
        ));
    }

    #[test]
    fn unicast_vs_itself_is_zero() {
        let cmp = run_comparison(&small_config(), &[MechanismKind::Unicast]).unwrap();
        let u = cmp.mechanism("Unicast").unwrap();
        assert!(u.rel_light_sleep.mean.abs() < 1e-12);
        assert!(u.rel_connected.mean.abs() < 1e-12);
    }

    #[test]
    fn paper_mechanism_ordering_holds() {
        // Fig. 6(a): DR-SC adds nothing; DR-SI adds a sliver; DA-SC more.
        let cmp = run_comparison(&small_config(), &MechanismKind::PAPER_MECHANISMS).unwrap();
        let dr_sc = cmp.mechanism("DR-SC").unwrap().rel_light_sleep.mean;
        let da_sc = cmp.mechanism("DA-SC").unwrap().rel_light_sleep.mean;
        let dr_si = cmp.mechanism("DR-SI").unwrap().rel_light_sleep.mean;
        assert!(dr_sc.abs() < 1e-9, "DR-SC {dr_sc}");
        assert!(dr_si > 0.0, "DR-SI {dr_si}");
        assert!(da_sc > dr_si, "DA-SC {da_sc} vs DR-SI {dr_si}");
    }

    #[test]
    fn single_transmission_mechanisms() {
        let cmp = run_comparison(
            &small_config(),
            &[
                MechanismKind::DaSc,
                MechanismKind::DrSi,
                MechanismKind::Unicast,
            ],
        )
        .unwrap();
        assert_eq!(cmp.mechanism("DA-SC").unwrap().transmissions.mean, 1.0);
        assert_eq!(cmp.mechanism("DR-SI").unwrap().transmissions.mean, 1.0);
        assert_eq!(cmp.mechanism("Unicast").unwrap().transmissions.mean, 30.0);
    }

    #[test]
    fn sweep_produces_requested_points() {
        let cfg = ExperimentConfig {
            runs: 2,
            ..small_config()
        };
        let points = sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n_devices, 10);
        assert!(points[1].transmissions.mean >= points[0].transmissions.mean);
    }

    #[test]
    fn comparison_is_reproducible() {
        let a = run_comparison(&small_config(), &[MechanismKind::DrSi]).unwrap();
        let b = run_comparison(&small_config(), &[MechanismKind::DrSi]).unwrap();
        assert_eq!(
            a.mechanism("DR-SI").unwrap().rel_connected.mean,
            b.mechanism("DR-SI").unwrap().rel_connected.mean
        );
    }

    #[test]
    fn display_lists_mechanisms() {
        let cmp = run_comparison(&small_config(), &[MechanismKind::DrSc]).unwrap();
        assert!(cmp.to_string().contains("DR-SC"));
    }
}
