//! Declarative experiment scenarios.
//!
//! A [`Scenario`] is the whole description of an experiment suite — the
//! traffic mix, the device sweep, the payload variants, the mechanism set,
//! the grouping/protocol parameters and the repetition count — as one
//! serializable value. [`run_scenario`] executes it through the generic
//! (point × run) scheduler, so one thread pool spans the entire grid, each
//! run's population is generated exactly once, and every result is
//! bit-identical for any thread count.
//!
//! Built-in scenarios live in the registry ([`Scenario::builtin`]); custom
//! ones round-trip through serde (the `figures` binary loads them from
//! JSON or TOML files).

use nbiot_energy::PowerProfile;
use nbiot_grouping::{GroupingParams, MechanismKind};
use nbiot_phy::DataSize;
use nbiot_rrc::InactivityTimer;
use nbiot_time::SimDuration;
use nbiot_traffic::{ChurnModel, TrafficMix};

use crate::experiment::{execute_grid, GridSpec};
use crate::{ComparisonResult, RegroupPolicy, SimConfig, SimError};

/// A declarative experiment workload: everything needed to reproduce a
/// figure or a sensitivity study, as one serializable value.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scenario {
    /// Scenario name, used for reporting and file naming.
    pub name: String,
    /// One-line description shown by the `figures` driver.
    pub description: String,
    /// Device population mix.
    pub mix: TrafficMix,
    /// Device sweep points (group sizes), one grid row each.
    pub devices: Vec<usize>,
    /// Payload variants, one grid column each; populations and plans are
    /// shared across them within a run.
    pub payloads: Vec<DataSize>,
    /// Mechanism set, in presentation order.
    pub mechanisms: Vec<MechanismKind>,
    /// Repetitions per grid point (the paper uses 100).
    pub runs: u32,
    /// Master seed; every run derives its own independent streams.
    pub master_seed: u64,
    /// Grouping parameters (start, TI, optional transmission override).
    pub grouping: GroupingParams,
    /// PHY/protocol configuration; each payload variant overrides only the
    /// payload size of this base config.
    pub sim: SimConfig,
    /// Power profile for the supplementary energy metric.
    pub power: PowerProfile,
    /// Compare mechanisms against a per-run unicast baseline. Disable for
    /// sweeps that only need absolute counts (saves the baseline's cost).
    pub baseline: bool,
    /// Population churn across campaign epochs (`None` = static
    /// population, the paper's evaluation regime). See
    /// `docs/SCENARIOS.md` for the model.
    pub churn: Option<ChurnModel>,
    /// When to re-plan on the churned population (ignored without churn).
    pub regroup: RegroupPolicy,
    /// Worker threads (`0` = all cores, `1` = serial); results are
    /// bit-identical for every setting.
    pub threads: usize,
}

impl Default for Scenario {
    /// The paper's default point: ericsson-city, 500 devices, 100 kB.
    fn default() -> Self {
        Scenario {
            name: "default".into(),
            description: "paper default point (ericsson-city, 500 devices, 100 kB)".into(),
            mix: TrafficMix::ericsson_city(),
            devices: vec![500],
            payloads: vec![DataSize::from_kb(100)],
            mechanisms: MechanismKind::PAPER_MECHANISMS.to_vec(),
            runs: 100,
            master_seed: 0x4E42_494F_5421, // "NBIOT!"
            grouping: GroupingParams::default(),
            sim: SimConfig::default(),
            power: PowerProfile::default(),
            baseline: true,
            churn: None,
            regroup: RegroupPolicy::Never,
            threads: 0,
        }
    }
}

impl Scenario {
    /// Names of the registered built-in scenarios, resolvable by
    /// [`Scenario::builtin`] (and the `figures` binary's `--scenario`).
    pub const REGISTRY: [&'static str; 14] = [
        "fig6a",
        "fig6b",
        "fig7",
        "paper-suite",
        "clustered",
        "bursty-alarm",
        "large-n-stress",
        "massive-n",
        "weighted-airtime",
        "short-drx",
        "mobility-churn",
        "handover-storm",
        "planning-pareto",
        "churn-repair",
    ];

    /// Resolves a registered built-in scenario by name.
    ///
    /// Returns `None` for unknown names; callers that surface errors to
    /// users should list [`Scenario::REGISTRY`].
    pub fn builtin(name: &str) -> Option<Scenario> {
        let fig7_sizes: Vec<usize> = (1..=10).map(|k| k * 100).collect();
        let s = match name {
            "fig6a" => Scenario {
                name: "fig6a".into(),
                description: "Fig. 6(a): relative light-sleep uptime increase vs unicast".into(),
                ..Scenario::default()
            },
            "fig6b" => Scenario {
                name: "fig6b".into(),
                description:
                    "Fig. 6(b): relative connected-mode uptime increase vs unicast, per payload"
                        .into(),
                payloads: vec![
                    DataSize::from_kb(100),
                    DataSize::from_mb(1),
                    DataSize::from_mb(10),
                ],
                ..Scenario::default()
            },
            "fig7" => Scenario {
                name: "fig7".into(),
                description: "Fig. 7: DR-SC multicast transmissions vs group size".into(),
                devices: fig7_sizes,
                mechanisms: vec![MechanismKind::DrSc],
                baseline: false,
                ..Scenario::default()
            },
            // The whole evaluation section as one grid: Fig. 6(a) is the
            // 100 kB payload column, Fig. 6(b) the payload axis, Fig. 7
            // the 500-device transmission counts.
            "paper-suite" => Scenario {
                name: "paper-suite".into(),
                description: "Fig. 6(a)+6(b) in one grid (shared populations and plans)".into(),
                payloads: vec![
                    DataSize::from_kb(100),
                    DataSize::from_mb(1),
                    DataSize::from_mb(10),
                ],
                ..Scenario::default()
            },
            "clustered" => Scenario {
                name: "clustered".into(),
                description: "clustered heterogeneous device classes (NOMA-style user clustering)"
                    .into(),
                mix: TrafficMix::clustered_heterogeneous(),
                devices: vec![200, 500, 1000],
                runs: 50,
                ..Scenario::default()
            },
            // Correlated alarm burst: short-cycle-dominated population
            // plus synchronized random access (50 contenders per attempt)
            // — the regime grouping-based RACH collision control targets.
            "bursty-alarm" => Scenario {
                name: "bursty-alarm".into(),
                description: "correlated alarm burst with contended random access".into(),
                mix: TrafficMix::bursty_alarm(),
                devices: vec![200, 500, 1000],
                runs: 50,
                sim: SimConfig {
                    ra_contenders: 50,
                    ..SimConfig::default()
                },
                ..Scenario::default()
            },
            // Beyond the paper's 1000-device ceiling: does the grouping
            // advantage survive an order of magnitude more devices?
            "large-n-stress" => Scenario {
                name: "large-n-stress".into(),
                description: "large-N stress: 2k-10k devices, ericsson-city".into(),
                devices: vec![2_000, 5_000, 10_000],
                runs: 5,
                ..Scenario::default()
            },
            // The million-device scale tier: a city's full metering
            // deployment on the eDRX-only massive-metering mix. Two runs,
            // no unicast baseline, summary-level records only — the point
            // is wall-clock and memory behaviour of the SoA population and
            // the parallel set-cover index at 10^5-10^6 devices, not tight
            // confidence intervals.
            "massive-n" => Scenario {
                name: "massive-n".into(),
                description: "massive-N scale tier: 100k-1M devices, eDRX-only metering mix".into(),
                mix: TrafficMix::massive_metering(),
                devices: vec![100_000, 1_000_000],
                mechanisms: vec![
                    MechanismKind::DrSc,
                    MechanismKind::DaSc,
                    MechanismKind::DrSi,
                ],
                runs: 2,
                baseline: false,
                ..Scenario::default()
            },
            // Weighted airtime: a heterogeneous CE0/CE1/CE2 fleet where
            // transmissions are not all equally expensive — a CE2 window
            // costs ~13.6x the subframes of a CE0 window.  Pits the
            // count-greedy DR-SC against the airtime-weighted cover so the
            // `plan_airtime_ms` / `airtime_vs_count_ratio` summaries have a
            // scenario that actually separates the two.
            "weighted-airtime" => Scenario {
                name: "weighted-airtime".into(),
                description: "airtime-weighted cover on a heterogeneous CE0/CE1/CE2 coverage mix"
                    .into(),
                mix: TrafficMix::heterogeneous_coverage(),
                devices: vec![200, 500, 1000],
                mechanisms: vec![MechanismKind::DrSc, MechanismKind::DrScWeighted],
                runs: 50,
                ..Scenario::default()
            },
            "short-drx" => Scenario {
                name: "short-drx".into(),
                description: "LTE-like corner: regular-DRX-only population".into(),
                mix: TrafficMix::short_drx(),
                runs: 50,
                mechanisms: MechanismKind::ALL.to_vec(),
                ..Scenario::default()
            },
            // Mobility churn: a mobile-majority fleet drifts over six
            // epochs (moderate arrival/departure/handover rates) and the
            // mechanisms re-plan only once staleness crosses 15 % — the
            // plans-go-stale-mid-campaign regime no static scenario
            // exercises.
            "mobility-churn" => Scenario {
                name: "mobility-churn".into(),
                description: "evolving mobile fleet with staleness-threshold re-grouping".into(),
                mix: TrafficMix::mobility_churn(),
                devices: vec![200, 500, 1000],
                runs: 50,
                churn: Some(ChurnModel {
                    epochs: 6,
                    departure_rate: 0.05,
                    arrival_rate: 0.05,
                    handover_rate: 0.08,
                }),
                regroup: RegroupPolicy::StalenessThreshold(0.15),
                ..Scenario::default()
            },
            // Handover storm: a vehicular fleet re-registers en masse
            // every epoch (30 % handover rate) and the mechanisms re-plan
            // at every boundary under contended random access — maximum
            // re-grouping pressure.
            "handover-storm" => Scenario {
                name: "handover-storm".into(),
                description: "vehicular fleet re-registering en masse, re-planned every epoch"
                    .into(),
                mix: TrafficMix::handover_storm(),
                devices: vec![200, 500],
                runs: 50,
                churn: Some(ChurnModel {
                    epochs: 4,
                    departure_rate: 0.02,
                    arrival_rate: 0.02,
                    handover_rate: 0.30,
                }),
                regroup: RegroupPolicy::EveryEpoch,
                sim: SimConfig {
                    ra_contenders: 30,
                    ..SimConfig::default()
                },
                ..Scenario::default()
            },
            // Plan quality vs. planning budget: plain greedy against the
            // anytime tabu pass at a budget sweep, no baseline (the Pareto
            // axes are transmissions and improve_budget). Budget 0 is the
            // bit-identity anchor — it must reproduce greedy exactly.
            "planning-pareto" => Scenario {
                name: "planning-pareto".into(),
                description: "cover cost vs anytime tabu budget (Pareto front over budgets)".into(),
                mechanisms: vec![
                    MechanismKind::DrSc,
                    MechanismKind::DrScTabu(0),
                    MechanismKind::DrScTabu(16),
                    MechanismKind::DrScTabu(64),
                    MechanismKind::DrScTabu(256),
                ],
                runs: 25,
                baseline: false,
                ..Scenario::default()
            },
            // LNS repair under churn: same drifting fleet as
            // mobility-churn, but stale plans are patched instead of
            // re-planned. DA-SC exercises the non-repairable fallback
            // (adaptation plans always re-plan fully).
            "churn-repair" => Scenario {
                name: "churn-repair".into(),
                description: "evolving fleet with LNS plan repair instead of full re-planning"
                    .into(),
                mix: TrafficMix::mobility_churn(),
                devices: vec![200, 500],
                mechanisms: vec![
                    MechanismKind::DrSc,
                    MechanismKind::DrScTabu(64),
                    MechanismKind::DaSc,
                ],
                runs: 50,
                churn: Some(ChurnModel {
                    epochs: 6,
                    departure_rate: 0.05,
                    arrival_rate: 0.05,
                    handover_rate: 0.08,
                }),
                regroup: RegroupPolicy::Repair,
                ..Scenario::default()
            },
            _ => return None,
        };
        Some(s)
    }

    /// The inactivity timer in seconds — the caption-derivation helper the
    /// figure driver uses (captions must reflect the actual config).
    pub fn ti_seconds(&self) -> f64 {
        self.grouping.ti.duration().as_secs_f64()
    }

    /// Validates list shapes before execution.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyScenario`] when a sweep axis or the mechanism set
    /// is empty, [`SimError::DegenerateExperiment`] for zero runs or a
    /// zero-device point.
    pub fn validate(&self) -> Result<(), SimError> {
        for (what, empty) in [
            ("devices", self.devices.is_empty()),
            ("payloads", self.payloads.is_empty()),
            ("mechanisms", self.mechanisms.is_empty()),
        ] {
            if empty {
                return Err(SimError::EmptyScenario { what });
            }
        }
        if self.runs == 0 || self.devices.contains(&0) {
            return Err(SimError::DegenerateExperiment {
                n_devices: self.devices.iter().copied().min().unwrap_or(0),
                runs: self.runs,
            });
        }
        if let Some(churn) = &self.churn {
            churn.validate()?;
        }
        // Validated even without churn: an out-of-range threshold must
        // not survive into serialized scenarios/archives just because the
        // policy is currently dormant.
        self.regroup.validate()?;
        Ok(())
    }
}

/// One grid point of a scenario result.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PointResult {
    /// Group size of this point.
    pub n_devices: usize,
    /// Payload size of this point.
    pub payload: DataSize,
    /// The mechanism comparison at this point.
    pub comparison: ComparisonResult,
}

/// The result of executing a whole scenario grid.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScenarioResult {
    /// Scenario name.
    pub scenario: String,
    /// Traffic-mix name (derived from the actual mix, not a caption).
    pub mix: String,
    /// Inactivity timer in seconds (derived from the actual config).
    pub ti_s: f64,
    /// Runs per point.
    pub runs: u32,
    /// Results, device-point-major then payload order.
    pub points: Vec<PointResult>,
}

impl ScenarioResult {
    /// Points at a given payload size, in device order (one "figure line").
    pub fn payload_column(&self, payload: DataSize) -> Vec<&PointResult> {
        self.points
            .iter()
            .filter(|p| p.payload == payload)
            .collect()
    }
}

/// Executes a scenario grid through the shared (point × run) scheduler.
///
/// Within each run the population and grouping input are generated once
/// and shared by every mechanism and payload variant, and each
/// mechanism's plan is computed once and executed per payload — results
/// are bit-identical to regenerating everything per point, verified by
/// `multi_payload_grid_shares_plans_bit_identically`.
///
/// # Errors
///
/// Scenario-shape errors from [`Scenario::validate`], plus population,
/// grouping and plan-validation failures of the lowest-numbered failing
/// work item (matching serial execution).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, SimError> {
    scenario.validate()?;
    let sims = payload_sims(scenario);
    let grid = execute_grid(&grid_spec(scenario, &sims))?;
    Ok(assemble_result(scenario, grid))
}

/// The per-payload-variant simulator configurations of a scenario, one
/// per inner grid column.
pub(crate) fn payload_sims(scenario: &Scenario) -> Vec<SimConfig> {
    scenario
        .payloads
        .iter()
        .map(|&payload| scenario.sim.with_payload(payload))
        .collect()
}

/// The scheduler grid one scenario execution (full or sharded) spans.
pub(crate) fn grid_spec<'a>(scenario: &'a Scenario, sims: &'a [SimConfig]) -> GridSpec<'a> {
    GridSpec {
        mix: &scenario.mix,
        devices: &scenario.devices,
        sims,
        kinds: &scenario.mechanisms,
        runs: scenario.runs,
        master_seed: scenario.master_seed,
        grouping: scenario.grouping,
        power: &scenario.power,
        baseline: scenario.baseline,
        churn: scenario.churn.as_ref(),
        regroup: scenario.regroup,
        threads: scenario.threads,
    }
}

/// Shapes a folded grid into a [`ScenarioResult`] — shared by
/// [`run_scenario`] and archive merging, so both produce byte-identical
/// results from identical records.
pub(crate) fn assemble_result(
    scenario: &Scenario,
    grid: Vec<Vec<ComparisonResult>>,
) -> ScenarioResult {
    let mut points = Vec::with_capacity(scenario.devices.len() * scenario.payloads.len());
    for (row, &n_devices) in grid.into_iter().zip(&scenario.devices) {
        for (comparison, &payload) in row.into_iter().zip(&scenario.payloads) {
            points.push(PointResult {
                n_devices,
                payload,
                comparison,
            });
        }
    }
    ScenarioResult {
        scenario: scenario.name.clone(),
        mix: scenario.mix.name.clone(),
        ti_s: scenario.ti_seconds(),
        runs: scenario.runs,
        points,
    }
}

/// Convenience: a scenario whose `grouping.ti` is replaced — ablation
/// suites sweep the inactivity timer this way.
pub fn with_ti(mut scenario: Scenario, ti: SimDuration) -> Scenario {
    scenario.grouping = GroupingParams {
        ti: InactivityTimer::new(ti),
        ..scenario.grouping
    };
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> Scenario {
        let mut s = Scenario::builtin(name).expect("builtin");
        s.devices = vec![15, 25];
        s.runs = 2;
        s.threads = 1;
        s
    }

    #[test]
    fn registry_resolves_every_name() {
        for name in Scenario::REGISTRY {
            let s = Scenario::builtin(name)
                .unwrap_or_else(|| panic!("registered scenario {name} must resolve"));
            assert_eq!(s.name, name, "registry name must match the scenario name");
            s.validate().unwrap();
        }
        assert!(Scenario::builtin("no-such-scenario").is_none());
    }

    #[test]
    fn grid_produces_point_per_device_payload_pair() {
        let mut s = tiny("fig6b");
        s.mechanisms = vec![MechanismKind::DrSc];
        let result = run_scenario(&s).unwrap();
        assert_eq!(result.points.len(), 2 * 3);
        assert_eq!(result.mix, "ericsson-city");
        assert_eq!(result.ti_s, 10.0);
        // Point order is device-major, payload-minor.
        assert_eq!(result.points[0].n_devices, 15);
        assert_eq!(result.points[2].n_devices, 15);
        assert_eq!(result.points[3].n_devices, 25);
        let col = result.payload_column(DataSize::from_mb(1));
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn scenario_threads_are_bit_identical() {
        let serial = run_scenario(&tiny("fig6b")).unwrap();
        for threads in [3, 8] {
            let mut s = tiny("fig6b");
            s.threads = threads;
            assert_eq!(run_scenario(&s).unwrap(), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut s = tiny("fig6a");
        s.devices.clear();
        assert!(matches!(
            run_scenario(&s),
            Err(SimError::EmptyScenario { what: "devices" })
        ));
        let mut s = tiny("fig6a");
        s.mechanisms.clear();
        assert!(matches!(
            run_scenario(&s),
            Err(SimError::EmptyScenario { what: "mechanisms" })
        ));
        let mut s = tiny("fig6a");
        s.runs = 0;
        assert!(matches!(
            run_scenario(&s),
            Err(SimError::DegenerateExperiment { .. })
        ));
    }

    #[test]
    fn with_ti_overrides_only_the_timer() {
        let s = with_ti(tiny("fig6a"), SimDuration::from_secs(30));
        assert_eq!(s.ti_seconds(), 30.0);
        assert_eq!(s.grouping.start, GroupingParams::default().start);
    }

    #[test]
    fn fig7_scenario_matches_sweep_devices() {
        // The declarative path and the legacy wrapper must agree exactly.
        let mut s = tiny("fig7");
        s.devices = vec![10, 20];
        let scenario_result = run_scenario(&s).unwrap();
        let cfg = crate::ExperimentConfig {
            runs: s.runs,
            master_seed: s.master_seed,
            ..crate::ExperimentConfig::default()
        };
        let sweep = crate::sweep_devices(&cfg, MechanismKind::DrSc, &[10, 20]).unwrap();
        for (point, sp) in scenario_result.points.iter().zip(&sweep) {
            assert_eq!(point.n_devices, sp.n_devices);
            assert_eq!(
                point.comparison.mechanisms[0].transmissions,
                sp.transmissions
            );
            assert_eq!(
                point.comparison.mechanisms[0].transmissions_ratio,
                sp.ratio_to_devices
            );
        }
    }
}
