//! Long-lived, event-driven grouping service for NB-IoT multicast.
//!
//! The batch pipeline (`nbiot-sim`) plans against a population it owns
//! for the length of one experiment. A deployment looks different: the
//! fleet is a *stream* of registrations, departures and handovers, and
//! multicast plans are requested on demand while the fleet keeps
//! drifting. This crate is that deployment shape, kept exactly as
//! deterministic as the batch path:
//!
//! * [`EventLog`] — the replayable input: epoch-stamped [`EventRecord`]s
//!   carrying fleet changes ([`nbiot_traffic::FleetEvent`]), campaign
//!   requests and snapshot marks. Logs round-trip through JSON and can
//!   be synthesized from a [`ChurnModel`](nbiot_traffic::ChurnModel)
//!   ([`EventLog::synthesize`]), so a service run is a pure function of
//!   a file.
//! * [`GroupingService`] — the engine: maintains the fleet incrementally
//!   (bit-identical to a fresh batch
//!   [`Population`](nbiot_traffic::Population) built from the surviving
//!   devices — the replay-equivalence contract locked by
//!   `tests/service_equivalence.rs`), serves
//!   [`MulticastPlan`](nbiot_grouping::MulticastPlan)s on request, and
//!   decides per request whether the cached plan still holds, the LNS
//!   repair pass patches it, or the mechanism re-plans from scratch —
//!   governed by a [`RegroupPolicy`](nbiot_sim::RegroupPolicy). Repairs
//!   reuse one persistent
//!   [`KernelArena`](nbiot_grouping::set_cover::KernelArena) across
//!   requests.
//! * [`ServiceSnapshot`] — versioned, checksummed persistence
//!   ([`SNAPSHOT_SCHEMA_VERSION`]): a restored service continues the
//!   log bit-identically to one that never stopped.
//!
//! The `groupingd` binary (in `nbiot-bench`) drives a service from an
//! event-log file; `docs/SERVICE.md` walks through the architecture.
//!
//! # Example
//!
//! ```
//! use nbiot_service::{EventLog, GroupingService, ServiceConfig};
//! use nbiot_traffic::{ChurnModel, TrafficMix};
//!
//! let model = ChurnModel {
//!     epochs: 3,
//!     departure_rate: 0.1,
//!     arrival_rate: 0.1,
//!     handover_rate: 0.2,
//! };
//! let log = EventLog::synthesize(&TrafficMix::mobility_churn(), 40, &model, "dr-sc", 7)?;
//! let mut service = GroupingService::new(ServiceConfig::default(), &log)?;
//! let summaries = service.replay(&log)?;
//! // One served campaign per epoch: the initial fleet plus three churned ones.
//! assert_eq!(summaries.len(), 4);
//! # Ok::<(), nbiot_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod error;
mod event;
mod snapshot;

pub use engine::{Applied, GroupingService, ServeAction, ServeSummary, ServiceConfig};
pub use error::ServiceError;
pub use event::{EventLog, EventRecord, ServiceEvent};
pub use snapshot::{
    service_fingerprint, PlanRecord, ServiceSnapshot, ServiceState, SNAPSHOT_SCHEMA_VERSION,
};
