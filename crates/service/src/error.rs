//! Service-layer errors.

use core::fmt;

use nbiot_grouping::{GroupingError, PlanViolation};
use nbiot_sim::SimError;
use nbiot_traffic::TrafficError;

/// Errors produced while driving a [`GroupingService`](crate::GroupingService).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// A fleet event could not be applied (unknown or duplicate device).
    Traffic(TrafficError),
    /// Planning or repairing a multicast plan failed.
    Grouping(GroupingError),
    /// A freshly computed plan violated a plan invariant (a mechanism
    /// bug, surfaced rather than served).
    Plan(PlanViolation),
    /// Configuration validation failed (e.g. an out-of-range staleness
    /// threshold).
    Sim(SimError),
    /// A campaign request named a mechanism the registry does not know.
    UnknownMechanism {
        /// The unrecognized mechanism spelling.
        name: String,
    },
    /// An event record is stamped with an epoch earlier than the
    /// service's current epoch — logs must be epoch-monotone.
    EpochRegression {
        /// The regressive record's epoch.
        record: u32,
        /// The service's current epoch.
        current: u32,
    },
    /// A replayed log's traffic-mix header does not match the fleet this
    /// service was built for.
    MixMismatch {
        /// The mix the service tracks.
        expected: String,
        /// The mix the log declares.
        found: String,
    },
    /// An event log failed to parse.
    CorruptLog {
        /// What went wrong.
        detail: String,
    },
    /// A snapshot failed to parse or failed its integrity checks.
    CorruptSnapshot {
        /// What went wrong.
        detail: String,
    },
    /// A snapshot belongs to a different service configuration or fleet
    /// (its fingerprint does not match the expected one).
    ForeignSnapshot {
        /// The fingerprint this service expects.
        expected: u64,
        /// The fingerprint the snapshot carries.
        found: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Traffic(e) => write!(f, "fleet event failed: {e}"),
            ServiceError::Grouping(e) => write!(f, "planning failed: {e}"),
            ServiceError::Plan(v) => write!(f, "served plan violates an invariant: {v}"),
            ServiceError::Sim(e) => write!(f, "service configuration invalid: {e}"),
            ServiceError::UnknownMechanism { name } => {
                write!(f, "unknown mechanism {name:?} in campaign request")
            }
            ServiceError::EpochRegression { record, current } => write!(
                f,
                "event record at epoch {record} behind service epoch {current}: logs must be epoch-monotone"
            ),
            ServiceError::MixMismatch { expected, found } => write!(
                f,
                "event log is for mix {found:?} but the service tracks mix {expected:?}"
            ),
            ServiceError::CorruptLog { detail } => write!(f, "corrupt event log: {detail}"),
            ServiceError::CorruptSnapshot { detail } => write!(f, "corrupt snapshot: {detail}"),
            ServiceError::ForeignSnapshot { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match expected {expected:#018x}: \
                 it was taken under a different configuration or event log"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Traffic(e) => Some(e),
            ServiceError::Grouping(e) => Some(e),
            ServiceError::Plan(v) => Some(v),
            ServiceError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrafficError> for ServiceError {
    fn from(e: TrafficError) -> Self {
        ServiceError::Traffic(e)
    }
}

impl From<GroupingError> for ServiceError {
    fn from(e: GroupingError) -> Self {
        ServiceError::Grouping(e)
    }
}

impl From<PlanViolation> for ServiceError {
    fn from(v: PlanViolation) -> Self {
        ServiceError::Plan(v)
    }
}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> Self {
        ServiceError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServiceError::UnknownMechanism {
            name: "mr-tc".into(),
        };
        assert!(e.to_string().contains("mr-tc"));
        let e = ServiceError::ForeignSnapshot {
            expected: 0xAB,
            found: 0xCD,
        };
        let text = e.to_string();
        assert!(text.contains("0x00000000000000cd"), "{text}");
        assert!(text.contains("0x00000000000000ab"), "{text}");
        let e = ServiceError::EpochRegression {
            record: 1,
            current: 4,
        };
        assert!(e.to_string().contains("epoch 1"));
        assert!(e.to_string().contains("epoch 4"));
    }

    #[test]
    fn sources_chain_to_the_layer_that_failed() {
        use std::error::Error as _;
        let e = ServiceError::from(TrafficError::UnknownDevice {
            device: nbiot_traffic::DeviceId(3),
        });
        assert!(e.source().is_some());
        let e = ServiceError::CorruptSnapshot { detail: "x".into() };
        assert!(e.source().is_none());
    }
}
