//! The long-lived group-state engine.

use nbiot_des::SeedSequence;
use nbiot_grouping::set_cover::KernelArena;
use nbiot_grouping::{repair_plan_with, GroupingInput, MechanismKind, MulticastPlan};
use nbiot_sim::{PlannedFleet, RegroupPolicy};
use nbiot_traffic::Population;

use crate::event::{EventLog, EventRecord, ServiceEvent};
use crate::ServiceError;

/// Static configuration of a service instance. Part of the snapshot
/// fingerprint: a snapshot taken under one configuration cannot be
/// restored under another.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceConfig {
    /// Grouping parameters every served plan is computed under.
    pub params: nbiot_grouping::GroupingParams,
    /// When a campaign request re-plans, repairs, or rides the cached
    /// plan.
    pub policy: RegroupPolicy,
    /// Master seed; each full re-plan draws from its own
    /// [`SeedSequence`] child stream, so served plans are a pure
    /// function of (config, event log).
    pub seed: u64,
    /// Worker threads reserved for future parallel planning. The engine
    /// is presently single-threaded per event and **bit-identical for
    /// every thread count**; the field is normalized to 0 in the
    /// snapshot fingerprint so snapshots stay portable across it.
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            params: nbiot_grouping::GroupingParams::default(),
            policy: RegroupPolicy::Repair,
            seed: 0,
            threads: 1,
        }
    }
}

impl ServiceConfig {
    /// Checks the configuration (currently: the regroup policy's
    /// threshold range).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Sim`] for an invalid policy.
    pub fn validate(&self) -> Result<(), ServiceError> {
        self.policy.validate()?;
        Ok(())
    }
}

/// How a campaign request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ServeAction {
    /// The mechanism planned from scratch on the current fleet.
    Full,
    /// The cached plan was patched by the LNS repair pass.
    Repair,
    /// The cached plan was served as-is.
    Cached,
}

impl ServeAction {
    /// Lower-case wire spelling (transcripts, reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeAction::Full => "full",
            ServeAction::Repair => "repair",
            ServeAction::Cached => "cached",
        }
    }
}

/// What one served campaign request looked like.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeSummary {
    /// 0-based serve index (also the RNG stream of a full re-plan).
    pub serve: u64,
    /// Epoch stamp of the serving record.
    pub epoch: u32,
    /// Canonical mechanism name ([`MechanismKind`] display form).
    pub mechanism: String,
    /// Fleet size at serve time.
    pub devices: usize,
    /// Transmissions in the served plan.
    pub transmissions: usize,
    /// How the request was satisfied.
    pub action: ServeAction,
    /// Fraction of the fleet the *pre-serve* plan could not reach
    /// (1.0 when no usable plan was cached).
    pub stale_fraction: f64,
}

/// Outcome of applying one event record.
#[derive(Debug, Clone, PartialEq)]
pub enum Applied {
    /// A fleet change was folded into the population.
    Fleet,
    /// A campaign request was served.
    Served(ServeSummary),
    /// The log marked a snapshot point; the driver should persist
    /// [`GroupingService::snapshot`] now.
    SnapshotRequested,
}

/// The plan currently on offer, with the fleet identities it was
/// computed against.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PlanState {
    pub(crate) mechanism: String,
    pub(crate) plan: MulticastPlan,
    pub(crate) planned: PlannedFleet,
}

/// The event-driven group-state engine: an incrementally maintained
/// fleet plus the currently cached plan, advanced one
/// [`EventRecord`] at a time.
///
/// Replay equivalence (locked by `tests/service_equivalence.rs`): after
/// any event prefix the fleet is bit-identical to a fresh
/// [`Population`] built from the surviving devices, and every full
/// re-plan equals a from-scratch plan over that population drawn from
/// the serve's dedicated seed stream.
#[derive(Debug)]
pub struct GroupingService {
    pub(crate) config: ServiceConfig,
    pub(crate) fleet: Population,
    pub(crate) epoch: u32,
    pub(crate) next_record: u64,
    pub(crate) serves: u64,
    pub(crate) events_since_plan: u64,
    pub(crate) plan: Option<PlanState>,
    /// Set-cover scratch reused across repair requests.
    pub(crate) arena: KernelArena,
}

impl GroupingService {
    /// Creates an empty service for the fleet described by `log`'s
    /// header (mix name and class table). The event stream itself is
    /// not consumed — feed it through [`GroupingService::apply`] or
    /// [`GroupingService::replay`].
    ///
    /// # Errors
    ///
    /// [`ServiceConfig::validate`] failures.
    pub fn new(config: ServiceConfig, log: &EventLog) -> Result<GroupingService, ServiceError> {
        config.validate()?;
        Ok(GroupingService {
            config,
            fleet: Population::with_capacity(log.mix_name.clone(), log.class_names.clone(), 0),
            epoch: 0,
            next_record: 0,
            serves: 0,
            events_since_plan: 0,
            plan: None,
            arena: KernelArena::new(),
        })
    }

    /// Applies one event record.
    ///
    /// # Errors
    ///
    /// [`ServiceError::EpochRegression`] for an epoch going backwards,
    /// fleet-event failures ([`ServiceError::Traffic`]), unknown
    /// mechanisms, and planning failures. A failed record leaves the
    /// record cursor untouched.
    pub fn apply(&mut self, record: &EventRecord) -> Result<Applied, ServiceError> {
        if record.epoch < self.epoch {
            return Err(ServiceError::EpochRegression {
                record: record.epoch,
                current: self.epoch,
            });
        }
        let applied = match &record.event {
            ServiceEvent::Fleet(event) => {
                event.apply(&mut self.fleet)?;
                self.events_since_plan += 1;
                Applied::Fleet
            }
            ServiceEvent::CampaignRequest { mechanism } => {
                let summary = self.serve(record.epoch, mechanism)?;
                Applied::Served(summary)
            }
            ServiceEvent::Snapshot => Applied::SnapshotRequested,
        };
        self.epoch = record.epoch;
        self.next_record += 1;
        Ok(applied)
    }

    /// Replays every not-yet-consumed record of `log` (from the record
    /// cursor onwards — a freshly restored service continues exactly
    /// where its snapshot left off), returning the serve summaries in
    /// order. Snapshot marks are skipped: persistence is the driver's
    /// job.
    ///
    /// # Errors
    ///
    /// [`ServiceError::MixMismatch`] when the log's header is not the
    /// fleet this service tracks, plus any [`GroupingService::apply`]
    /// failure.
    pub fn replay(&mut self, log: &EventLog) -> Result<Vec<ServeSummary>, ServiceError> {
        if log.mix_name != self.fleet.mix_name() || log.class_names != self.fleet.class_names() {
            return Err(ServiceError::MixMismatch {
                expected: self.fleet.mix_name().to_string(),
                found: log.mix_name.clone(),
            });
        }
        let start = usize::try_from(self.next_record).unwrap_or(usize::MAX);
        let mut summaries = Vec::new();
        for record in log.records.iter().skip(start) {
            if let Applied::Served(summary) = self.apply(record)? {
                summaries.push(summary);
            }
        }
        Ok(summaries)
    }

    /// Serves one campaign request: decide cached / repair / full under
    /// the configured [`RegroupPolicy`], then summarize.
    fn serve(&mut self, epoch: u32, mechanism: &str) -> Result<ServeSummary, ServiceError> {
        let kind =
            MechanismKind::by_name(mechanism).ok_or_else(|| ServiceError::UnknownMechanism {
                name: mechanism.to_string(),
            })?;
        let canonical = kind.to_string();
        let serve = self.serves;
        self.serves += 1;
        // A cached plan is reusable only for the same mechanism.
        let reusable = matches!(&self.plan, Some(state) if state.mechanism == canonical);
        let stale_fraction = match &self.plan {
            Some(state) if reusable => state.planned.stale_fraction(&self.fleet),
            _ => 1.0,
        };
        let action = if !reusable {
            self.replan(kind, serve)?;
            ServeAction::Full
        } else if self.events_since_plan == 0 {
            // Every policy serves an unchanged fleet from cache:
            // re-planning would reproduce the same plan.
            ServeAction::Cached
        } else {
            match self.config.policy {
                RegroupPolicy::Never => ServeAction::Cached,
                RegroupPolicy::EveryEpoch => {
                    self.replan(kind, serve)?;
                    ServeAction::Full
                }
                RegroupPolicy::StalenessThreshold(t) => {
                    if stale_fraction > t {
                        self.replan(kind, serve)?;
                        ServeAction::Full
                    } else {
                        ServeAction::Cached
                    }
                }
                RegroupPolicy::Repair => {
                    let input = GroupingInput::from_population(&self.fleet, self.config.params)?;
                    let state = self.plan.as_ref().expect("reusable implies cached plan");
                    match repair_plan_with(&state.plan, &input, &mut self.arena) {
                        Some(Ok(plan)) => {
                            plan.validate(&input)?;
                            self.install(canonical.clone(), plan);
                            ServeAction::Repair
                        }
                        Some(Err(e)) => return Err(e.into()),
                        // Non-repairable shape: fall back to a full plan.
                        None => {
                            self.replan(kind, serve)?;
                            ServeAction::Full
                        }
                    }
                }
            }
        };
        let state = self.plan.as_ref().expect("serve installs or keeps a plan");
        Ok(ServeSummary {
            serve,
            epoch,
            mechanism: canonical,
            devices: self.fleet.len(),
            transmissions: state.plan.transmissions.len(),
            action,
            stale_fraction,
        })
    }

    /// Full re-plan on the current fleet, drawing from the serve's
    /// dedicated stream (`SeedSequence::new(seed).child(serve).rng(0)`)
    /// — the stream a from-scratch batch plan of the same serve index
    /// would use, which is what makes served plans replay-equivalent.
    fn replan(&mut self, kind: MechanismKind, serve: u64) -> Result<(), ServiceError> {
        let input = GroupingInput::from_population(&self.fleet, self.config.params)?;
        let mut rng = SeedSequence::new(self.config.seed).child(serve).rng(0);
        let plan = kind.instantiate().plan(&input, &mut rng)?;
        plan.validate(&input)?;
        self.install(kind.to_string(), plan);
        Ok(())
    }

    fn install(&mut self, mechanism: String, plan: MulticastPlan) {
        self.plan = Some(PlanState {
            mechanism,
            plan,
            planned: PlannedFleet::snapshot(&self.fleet),
        });
        self.events_since_plan = 0;
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The current fleet.
    pub fn fleet(&self) -> &Population {
        &self.fleet
    }

    /// The current epoch stamp.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of event records consumed so far (the replay cursor).
    pub fn next_record(&self) -> u64 {
        self.next_record
    }

    /// Number of campaign requests served so far.
    pub fn serves(&self) -> u64 {
        self.serves
    }

    /// Fleet events folded since the cached plan was computed.
    pub fn events_since_plan(&self) -> u64 {
        self.events_since_plan
    }

    /// The currently cached plan, when one has been served.
    pub fn plan(&self) -> Option<&MulticastPlan> {
        self.plan.as_ref().map(|state| &state.plan)
    }

    /// Canonical mechanism name of the cached plan.
    pub fn plan_mechanism(&self) -> Option<&str> {
        self.plan.as_ref().map(|state| state.mechanism.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLog;
    use nbiot_traffic::{ChurnModel, DeviceId, FleetEvent, TrafficMix};

    fn model(epochs: u32) -> ChurnModel {
        ChurnModel {
            epochs,
            departure_rate: 0.15,
            arrival_rate: 0.15,
            handover_rate: 0.25,
        }
    }

    fn log(devices: usize, epochs: u32, mechanism: &str, seed: u64) -> EventLog {
        EventLog::synthesize(
            &TrafficMix::mobility_churn(),
            devices,
            &model(epochs),
            mechanism,
            seed,
        )
        .unwrap()
    }

    fn config(policy: RegroupPolicy) -> ServiceConfig {
        ServiceConfig {
            policy,
            seed: 11,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn replayed_fleet_is_bit_identical_to_a_batch_rebuild() {
        let log = log(40, 4, "dr-sc", 2);
        let mut service = GroupingService::new(config(RegroupPolicy::Repair), &log).unwrap();
        let summaries = service.replay(&log).unwrap();
        assert_eq!(summaries.len(), 5);
        // Rebuild the surviving fleet from scratch: identical structure.
        let fresh = Population::new(
            log.mix_name.clone(),
            log.class_names.clone(),
            service.fleet().profiles(),
        );
        assert_eq!(service.fleet(), &fresh);
        assert_eq!(service.next_record(), log.records.len() as u64);
        assert_eq!(service.epoch(), 4);
    }

    #[test]
    fn full_replans_match_from_scratch_plans() {
        let log = log(35, 3, "dr-sc", 7);
        let cfg = config(RegroupPolicy::EveryEpoch);
        let mut service = GroupingService::new(cfg, &log).unwrap();
        let summaries = service.replay(&log).unwrap();
        let last = summaries.last().unwrap();
        assert_eq!(last.action, ServeAction::Full);
        // The final served plan equals a from-scratch plan on the final
        // fleet, drawn from the serve's dedicated stream.
        let input = GroupingInput::from_population(service.fleet(), cfg.params).unwrap();
        let mut rng = SeedSequence::new(cfg.seed).child(last.serve).rng(0);
        let scratch = MechanismKind::DrSc
            .instantiate()
            .plan(&input, &mut rng)
            .unwrap();
        assert_eq!(service.plan().unwrap(), &scratch);
    }

    #[test]
    fn policies_pick_the_expected_actions() {
        for (policy, expected) in [
            (RegroupPolicy::Never, ServeAction::Cached),
            (RegroupPolicy::EveryEpoch, ServeAction::Full),
            (RegroupPolicy::Repair, ServeAction::Repair),
        ] {
            let log = log(40, 3, "dr-sc", 3);
            let mut service = GroupingService::new(config(policy), &log).unwrap();
            let summaries = service.replay(&log).unwrap();
            assert_eq!(
                summaries[0].action,
                ServeAction::Full,
                "first serve always plans: {policy:?}"
            );
            assert!(
                summaries[1..].iter().all(|s| s.action == expected),
                "{policy:?}: {summaries:?}"
            );
            if policy == RegroupPolicy::Never {
                assert!(summaries.last().unwrap().stale_fraction > 0.0);
            }
        }
    }

    #[test]
    fn staleness_threshold_caches_until_drift_crosses_it() {
        let log = log(60, 6, "dr-sc", 13);
        let mut service =
            GroupingService::new(config(RegroupPolicy::StalenessThreshold(0.5)), &log).unwrap();
        let summaries = service.replay(&log).unwrap();
        let fulls = summaries
            .iter()
            .filter(|s| s.action == ServeAction::Full)
            .count();
        assert!(
            fulls > 1 && fulls < summaries.len(),
            "a mid threshold must re-plan sometimes but not always: {summaries:?}"
        );
        // Cached serves stayed within the policy's staleness bound.
        for s in &summaries {
            if s.action == ServeAction::Cached {
                assert!(s.stale_fraction <= 0.5, "{s:?}");
            }
        }
    }

    #[test]
    fn repair_falls_back_to_full_for_non_repairable_shapes() {
        // DA-SC plans are single-transmission adaptation plans: not
        // repairable, so the repair policy must re-plan fully.
        let log = log(30, 2, "da-sc", 5);
        let mut service = GroupingService::new(config(RegroupPolicy::Repair), &log).unwrap();
        let summaries = service.replay(&log).unwrap();
        assert!(summaries.iter().all(|s| s.action == ServeAction::Full));
        assert_eq!(service.plan_mechanism(), Some("DA-SC"));
    }

    #[test]
    fn mechanism_switch_forces_a_full_replan() {
        let log = log(30, 1, "dr-sc", 6);
        let mut service = GroupingService::new(config(RegroupPolicy::Never), &log).unwrap();
        service.replay(&log).unwrap();
        assert_eq!(service.plan_mechanism(), Some("DR-SC"));
        let summary = match service
            .apply(&EventRecord {
                epoch: 1,
                event: ServiceEvent::CampaignRequest {
                    mechanism: "sc-ptm".into(),
                },
            })
            .unwrap()
        {
            Applied::Served(summary) => summary,
            other => panic!("expected a served campaign, got {other:?}"),
        };
        assert_eq!(summary.action, ServeAction::Full);
        assert_eq!(summary.mechanism, "SC-PTM");
        assert!((summary.stale_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_regression_and_mix_mismatch_are_rejected() {
        let log = log(20, 1, "dr-sc", 8);
        let mut service = GroupingService::new(config(RegroupPolicy::Never), &log).unwrap();
        service.replay(&log).unwrap();
        let err = service
            .apply(&EventRecord {
                epoch: 0,
                event: ServiceEvent::Snapshot,
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::EpochRegression { .. }));
        let foreign = EventLog {
            mix_name: "somewhere-else".into(),
            class_names: vec![],
            records: vec![],
        };
        let err = service.replay(&foreign).unwrap_err();
        assert!(matches!(err, ServiceError::MixMismatch { .. }));
    }

    #[test]
    fn failed_fleet_events_do_not_advance_the_cursor() {
        let log = log(20, 0, "dr-sc", 4);
        let mut service = GroupingService::new(config(RegroupPolicy::Never), &log).unwrap();
        service.replay(&log).unwrap();
        let cursor = service.next_record();
        let err = service
            .apply(&EventRecord {
                epoch: 0,
                event: ServiceEvent::Fleet(FleetEvent::Depart(DeviceId(999))),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::Traffic(_)));
        assert_eq!(service.next_record(), cursor);
    }

    #[test]
    fn invalid_policy_is_rejected_at_construction() {
        let log = log(10, 0, "dr-sc", 1);
        let err =
            GroupingService::new(config(RegroupPolicy::StalenessThreshold(7.0)), &log).unwrap_err();
        assert!(matches!(err, ServiceError::Sim(_)));
    }

    #[test]
    fn snapshot_marks_are_engine_noops() {
        let base = log(25, 2, "dr-sc", 10);
        let mut marked = base.clone();
        marked.records.insert(
            10,
            EventRecord {
                epoch: 0,
                event: ServiceEvent::Snapshot,
            },
        );
        let mut a = GroupingService::new(config(RegroupPolicy::Repair), &base).unwrap();
        let mut b = GroupingService::new(config(RegroupPolicy::Repair), &marked).unwrap();
        let sa = a.replay(&base).unwrap();
        let sb = b.replay(&marked).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.fleet(), b.fleet());
        assert_eq!(a.plan(), b.plan());
    }
}
