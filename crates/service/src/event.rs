//! The replayable service input: epoch-stamped event logs.

use nbiot_des::SeedSequence;
use nbiot_grouping::MechanismKind;
use nbiot_traffic::{ChurnModel, FleetEvent, TrafficMix};

use crate::ServiceError;

/// One thing the outside world tells the service.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ServiceEvent {
    /// The fleet changed: a registration, departure or handover.
    Fleet(FleetEvent),
    /// A multicast campaign wants a plan for the current fleet, computed
    /// by the named mechanism (any spelling
    /// [`MechanismKind::by_name`] accepts).
    CampaignRequest {
        /// Requested mechanism name.
        mechanism: String,
    },
    /// A snapshot point: the driver should persist the service state
    /// here ([`GroupingService::snapshot`](crate::GroupingService::snapshot)).
    /// The engine itself treats this as a no-op, so logs with and
    /// without snapshot marks replay identically.
    Snapshot,
}

/// One event with the campaign epoch it happened in.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventRecord {
    /// Epoch stamp; must be monotone non-decreasing across a log.
    pub epoch: u32,
    /// The event itself.
    pub event: ServiceEvent,
}

/// A replayable service run: the fleet's traffic-mix header plus the
/// ordered event stream.
///
/// A log is the *complete* input of a service run — replaying the same
/// log through [`GroupingService`](crate::GroupingService) with the same
/// [`ServiceConfig`](crate::ServiceConfig) reproduces every fleet state
/// and every served plan bit-identically, offline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventLog {
    /// Name of the traffic mix the fleet is drawn from.
    pub mix_name: String,
    /// Class-name table shared by every device of the fleet.
    pub class_names: Vec<String>,
    /// The ordered event stream.
    pub records: Vec<EventRecord>,
}

impl EventLog {
    /// Synthesizes a deterministic log from a churn process: epoch 0
    /// registers `devices` freshly generated devices and requests one
    /// campaign; each of the model's epochs then appends its recorded
    /// fleet events ([`ChurnModel::step_recorded`]) followed by another
    /// campaign request for `mechanism`.
    ///
    /// All randomness branches from `seed` via [`SeedSequence`] (stream 0
    /// for the initial population, child 1 stream `epoch` for each churn
    /// step), so the log is a pure function of its arguments.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownMechanism`] for an unrecognized mechanism
    /// name, and generation/churn failures ([`ServiceError::Traffic`]).
    pub fn synthesize(
        mix: &TrafficMix,
        devices: usize,
        model: &ChurnModel,
        mechanism: &str,
        seed: u64,
    ) -> Result<EventLog, ServiceError> {
        if MechanismKind::by_name(mechanism).is_none() {
            return Err(ServiceError::UnknownMechanism {
                name: mechanism.to_string(),
            });
        }
        let seq = SeedSequence::new(seed);
        let pop = mix.generate(devices, &mut seq.child(0).rng(0))?;
        let mut records: Vec<EventRecord> = pop
            .iter()
            .map(|device| EventRecord {
                epoch: 0,
                event: ServiceEvent::Fleet(FleetEvent::Register(device)),
            })
            .collect();
        records.push(EventRecord {
            epoch: 0,
            event: ServiceEvent::CampaignRequest {
                mechanism: mechanism.to_string(),
            },
        });
        let mut current = pop.clone();
        let mut next_id = devices as u32;
        for epoch in 1..=model.epochs {
            let mut rng = seq.child(1).rng(u64::from(epoch));
            let (evolved, _, log) =
                model.step_recorded(mix, &current, devices, &mut next_id, &mut rng)?;
            records.extend(log.into_iter().map(|event| EventRecord {
                epoch,
                event: ServiceEvent::Fleet(event),
            }));
            records.push(EventRecord {
                epoch,
                event: ServiceEvent::CampaignRequest {
                    mechanism: mechanism.to_string(),
                },
            });
            current = evolved;
        }
        Ok(EventLog {
            mix_name: pop.mix_name().to_string(),
            class_names: pop.class_names().to_vec(),
            records,
        })
    }

    /// Renders the log as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("event logs always serialize")
    }

    /// Parses a log from JSON.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CorruptLog`] describing the first parse failure
    /// (truncated text, missing fields, shape mismatches).
    pub fn from_json(text: &str) -> Result<EventLog, ServiceError> {
        serde_json::from_str(text).map_err(|e| ServiceError::CorruptLog {
            detail: e.to_string(),
        })
    }

    /// Number of campaign requests in the log.
    pub fn campaign_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.event, ServiceEvent::CampaignRequest { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChurnModel {
        ChurnModel {
            epochs: 3,
            departure_rate: 0.15,
            arrival_rate: 0.15,
            handover_rate: 0.25,
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let mix = TrafficMix::mobility_churn();
        let a = EventLog::synthesize(&mix, 30, &model(), "dr-sc", 5).unwrap();
        let b = EventLog::synthesize(&mix, 30, &model(), "dr-sc", 5).unwrap();
        assert_eq!(a, b);
        let c = EventLog::synthesize(&mix, 30, &model(), "dr-sc", 6).unwrap();
        assert_ne!(a, c, "a different seed must synthesize a different log");
    }

    #[test]
    fn synthesis_shape_matches_the_churn_process() {
        let mix = TrafficMix::mobility_churn();
        let log = EventLog::synthesize(&mix, 25, &model(), "dr-sc", 9).unwrap();
        assert_eq!(log.mix_name, "mobility-churn");
        assert!(!log.class_names.is_empty());
        // One campaign per epoch including epoch 0.
        assert_eq!(log.campaign_count(), 4);
        // The first 25 records register the initial fleet at epoch 0.
        assert!(log.records[..25].iter().all(
            |r| r.epoch == 0 && matches!(r.event, ServiceEvent::Fleet(FleetEvent::Register(_)))
        ));
        // Epoch stamps are monotone.
        assert!(log.records.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert_eq!(log.records.last().unwrap().epoch, 3);
    }

    #[test]
    fn unknown_mechanism_is_rejected_up_front() {
        let mix = TrafficMix::mobility_churn();
        let err = EventLog::synthesize(&mix, 10, &model(), "mr-tc", 1).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownMechanism { name } if name == "mr-tc"));
    }

    #[test]
    fn logs_round_trip_through_json() {
        let mix = TrafficMix::handover_storm();
        let log = EventLog::synthesize(&mix, 20, &model(), "dr-sc-tabu(16)", 3).unwrap();
        let text = log.to_json_pretty();
        let back = EventLog::from_json(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn truncated_json_reports_a_corrupt_log() {
        let mix = TrafficMix::mobility_churn();
        let log = EventLog::synthesize(&mix, 10, &model(), "dr-sc", 2).unwrap();
        let text = log.to_json_pretty();
        let err = EventLog::from_json(&text[..text.len() / 2]).unwrap_err();
        assert!(matches!(err, ServiceError::CorruptLog { .. }), "{err}");
    }
}
